//! Process-per-rank execution (DESIGN.md §13): the paper's
//! BSMLlib-over-MPI shape, where each rank is one OS process that can
//! genuinely die.
//!
//! Topology is a star: the parent binds a Unix-domain socket, spawns
//! `p` copies of the `bsml-rank` binary, handshakes each connection
//! (magic + protocol version + program fingerprint + rank id + `p`,
//! under [`HANDSHAKE_TIMEOUT_ENV`]), and then routes every data-plane
//! frame and every synchronization message over the per-child control
//! streams ([`crate::wire::CtlMsg`]). Rank death is detected as
//! socket EOF and confirmed with `waitpid` ([`std::process::Child`]),
//! then mapped to the failed (rank, superstep) coordinate as
//! [`EvalError::TransportFailure`] — which is exactly the error class
//! the [`crate::Supervisor`] already retries with
//! checkpoint resume, so respawn-and-resume needs no new supervisor
//! machinery: the whole fleet is respawned and resumed from the
//! newest committed generation, demoting to a full restart on
//! [`EvalError::CheckpointDiverged`] like the in-process ladder.

use std::collections::VecDeque;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bsml_ast::Expr;
use bsml_eval::{EvalError, PortableValue};
use bsml_obs::{FlightRecorder, TimedFlightEvent};

use crate::checkpoint::{
    program_fingerprint, CheckpointError, CheckpointStore, RankFrame, ResumePoint,
};
use crate::distributed::{
    assemble, flush_counters, run_remote_rank, DistMachine, DistOutcome, DEFAULT_FLIGHT_CAPACITY,
};
use crate::faults::FaultPlan;
use crate::postmortem::{error_coordinate, FlightLog, PostmortemBundle, RankFlightLog};
use crate::supervisor::POSTMORTEM_DIR_ENV;
use crate::transport::{NetTuning, SocketTransport, Transport};
use crate::wire::{read_ctl, write_ctl, CtlLedger, CtlMsg, CtlStats, CTL_MAGIC, PROTOCOL_VERSION};

/// The environment variable overriding the connect/handshake deadline
/// (milliseconds). The companion of
/// [`crate::distributed::BARRIER_TIMEOUT_ENV`]: that knob bounds how
/// long a *running* rank waits at a barrier, this one bounds how long
/// the parent waits for a spawned rank to connect and identify itself.
/// Unset or unparsable values fall back to
/// [`DEFAULT_HANDSHAKE_TIMEOUT`]; a never-connecting rank therefore
/// always fails with [`EvalError::TransportFailure`], never a hang.
pub const HANDSHAKE_TIMEOUT_ENV: &str = "BSML_HANDSHAKE_TIMEOUT_MS";

/// Handshake deadline when [`HANDSHAKE_TIMEOUT_ENV`] is unset:
/// generous against a loaded CI machine, far below any test timeout.
pub const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// The handshake deadline: the [`HANDSHAKE_TIMEOUT_ENV`] override when
/// set and parsable, else [`DEFAULT_HANDSHAKE_TIMEOUT`] (malformed
/// values are counted under `config.bad_env_values`).
fn handshake_timeout_from_env() -> Duration {
    bsml_obs::env::duration_ms_knob(
        HANDSHAKE_TIMEOUT_ENV,
        DEFAULT_HANDSHAKE_TIMEOUT,
        &bsml_obs::Telemetry::disabled(),
    )
}

/// Overrides where the parent looks for the rank-runner binary when
/// [`ProcessConfig::rank_binary`] is unset (the last resort is a
/// `bsml-rank` sibling of the current executable).
pub const RANK_BIN_ENV: &str = "BSML_RANK_BIN";

/// Child environment: path of the parent's coordination socket.
pub const RANK_SOCKET_ENV: &str = "BSML_RANK_SOCKET";
/// Child environment: this process's rank id.
pub const RANK_ID_ENV: &str = "BSML_RANK_ID";
/// Child environment: the machine width `p`.
pub const RANK_P_ENV: &str = "BSML_RANK_P";
/// Child environment: the [`program_fingerprint`] the child must echo
/// in its `Hello` and re-verify against the welcomed program text.
pub const RANK_FINGERPRINT_ENV: &str = "BSML_RANK_FINGERPRINT";

/// Deterministically SIGKILL one rank process — the chaos grid's
/// process-mode fault. `superstep = s` kills the rank as it *enters*
/// superstep `s` (it is withheld the barrier release that would let it
/// proceed past superstep `s - 1`; `s = 0` kills right after the
/// handshake), which mirrors the in-process crash fault's coordinate:
/// the newest committed checkpoint generation is `⌊s/k⌋·k`, so a
/// supervised resume replays exactly `s mod k` supersteps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// The rank to kill.
    pub rank: usize,
    /// The superstep whose entry the kill lands on.
    pub superstep: u64,
    /// The attempt the kill is armed for, 0-based like
    /// [`crate::faults::Fault::attempt`] (`0` = the first attempt;
    /// retries run clean unless armed separately).
    pub attempt: u32,
}

/// Configuration of [`crate::Execution::Processes`].
#[derive(Clone, Debug, Default)]
pub struct ProcessConfig {
    /// Where the coordination socket lives. `None` creates (and
    /// removes) a fresh directory under the system temp dir — socket
    /// paths have a ~100-byte limit, so deep workspaces should leave
    /// this unset.
    pub socket_dir: Option<PathBuf>,
    /// The rank-runner binary. `None` falls back to [`RANK_BIN_ENV`],
    /// then to a `bsml-rank` sibling of the current executable.
    pub rank_binary: Option<PathBuf>,
    /// Connect/handshake deadline. `None` reads
    /// [`HANDSHAKE_TIMEOUT_ENV`] (default
    /// [`DEFAULT_HANDSHAKE_TIMEOUT`]).
    pub handshake_timeout: Option<Duration>,
    /// Ranks to SIGKILL at specific (superstep, attempt) coordinates.
    pub kills: Vec<KillSpec>,
    /// Where rank processes write their `.bsmlpm` flight-recorder
    /// bundles (exported to children as `BSML_POSTMORTEM_DIR`). `None`
    /// lets children inherit the parent's environment.
    pub postmortem_dir: Option<PathBuf>,
}

/// Locks a mutex, recovering the guard if a holder panicked (all
/// protected data here are plain counters and queues).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Child side: postmortem accumulator, control hub, relay store
// ---------------------------------------------------------------------------

/// Accumulated flight events of a rank process. The ring's `drain` is
/// destructive, so periodic disk flushes (one per barrier release)
/// move events into this bounded accumulator — at SIGKILL time the
/// last flushed bundle survives on disk, which is what makes process
/// death postmortem-analyzable.
#[derive(Debug, Default)]
struct Accum {
    events: Vec<TimedFlightEvent>,
    /// Events the accumulator itself evicted to stay bounded (on top
    /// of what the ring dropped).
    evicted: u64,
}

/// A rank process's own postmortem writer: single-rank
/// [`PostmortemBundle`]s written tmp-then-rename (a kill mid-write
/// leaves the previous complete bundle, never a torn one).
#[derive(Debug)]
pub(crate) struct ChildPostmortem {
    path: PathBuf,
    p: usize,
    attempt: u32,
    rank: usize,
    recorder: Arc<FlightRecorder>,
    accum: Mutex<Accum>,
    capacity: usize,
}

impl ChildPostmortem {
    /// Creates the writer (and the directory). Returns `None` when the
    /// directory cannot be created — postmortems are best-effort and
    /// never fail a run.
    fn new(
        dir: &Path,
        rank: usize,
        p: usize,
        attempt: u32,
        fingerprint: u64,
        recorder: Arc<FlightRecorder>,
        capacity: usize,
    ) -> Option<ChildPostmortem> {
        std::fs::create_dir_all(dir).ok()?;
        let path = dir.join(format!(
            "pm-rank{rank}-{fingerprint:016x}-p{p}-attempt{attempt}.bsmlpm"
        ));
        Some(ChildPostmortem {
            path,
            p,
            attempt,
            rank,
            recorder,
            accum: Mutex::new(Accum::default()),
            capacity,
        })
    }

    /// Moves everything currently in the ring into the accumulator and
    /// returns (total dropped, accumulated events).
    fn snapshot(&self) -> (u64, Vec<TimedFlightEvent>) {
        let mut accum = lock(&self.accum);
        accum.events.extend(self.recorder.drain());
        if accum.events.len() > self.capacity {
            let overflow = accum.events.len() - self.capacity;
            accum.events.drain(..overflow);
            accum.evicted += overflow as u64;
        }
        (
            self.recorder.dropped() + accum.evicted,
            accum.events.clone(),
        )
    }

    /// Writes the current accumulated history as a one-rank bundle.
    /// Best-effort: I/O failures are swallowed (a rank must never die
    /// of its own black box).
    fn flush(&self, error: &str, error_rank: Option<u64>, error_superstep: Option<u64>) {
        let (dropped, events) = self.snapshot();
        let bundle = PostmortemBundle::new(
            self.p,
            self.attempt,
            error.to_string(),
            error_rank,
            error_superstep,
            FlightLog {
                ranks: vec![RankFlightLog {
                    rank: self.rank,
                    dropped,
                    events,
                }],
            },
        );
        let tmp = self.path.with_extension("tmp");
        if std::fs::write(&tmp, bundle.encode()).is_ok() {
            let _ = std::fs::rename(&tmp, &self.path);
        }
    }
}

/// State a barrier wait blocks on: releases observed so far and the
/// poison flag.
#[derive(Debug, Default)]
struct BarrierProgress {
    releases: u64,
    poisoned: bool,
}

/// A rank process's end of the parent's control stream: the writer
/// half plus everything the reader thread routes off the stream
/// (delivered frames, exchange totals, barrier releases, poison).
/// This is what [`crate::distributed::SyncBackend::Remote`] and
/// [`SocketTransport`] talk to.
#[derive(Debug)]
pub(crate) struct RemoteHub {
    writer: Mutex<UnixStream>,
    /// Data frames the parent routed to this rank, in arrival order.
    inbound: Mutex<VecDeque<Vec<u8>>>,
    /// Machine-wide count of locally-completed exchanges (monotonic:
    /// updated with `fetch_max`, because parent reader threads may
    /// interleave their `ExchangeTotal` broadcasts).
    exchange_total: AtomicU64,
    barrier: Mutex<BarrierProgress>,
    barrier_cv: Condvar,
    /// The frame bytes [`RelayStore`] staged since the last barrier,
    /// shipped with the next `BarrierEnter`.
    staged: Mutex<Option<Vec<u8>>>,
    /// Flushed after every barrier release so a later SIGKILL still
    /// leaves an on-disk bundle.
    postmortem: Option<Arc<ChildPostmortem>>,
}

impl RemoteHub {
    fn new(writer: UnixStream, postmortem: Option<Arc<ChildPostmortem>>) -> Arc<RemoteHub> {
        Arc::new(RemoteHub {
            writer: Mutex::new(writer),
            inbound: Mutex::new(VecDeque::new()),
            exchange_total: AtomicU64::new(0),
            barrier: Mutex::new(BarrierProgress::default()),
            barrier_cv: Condvar::new(),
            staged: Mutex::new(None),
            postmortem,
        })
    }

    fn send(&self, msg: &CtlMsg) -> io::Result<()> {
        write_ctl(&mut *lock(&self.writer), msg)
    }

    /// Routes one data-plane frame toward `dst` through the parent. A
    /// dead stream (`EPIPE`, a closed parent) poisons the run locally;
    /// the frame is reported "accepted" because the run is about to
    /// unwind through the poison path anyway — never a panic.
    pub(crate) fn send_data(&self, dst: usize, bytes: &[u8]) {
        if self
            .send(&CtlMsg::Data {
                dst,
                frame: bytes.to_vec(),
            })
            .is_err()
        {
            self.poison_local();
        }
    }

    /// Pops the next parent-routed frame, if any.
    pub(crate) fn recv_data(&self) -> Option<Vec<u8>> {
        lock(&self.inbound).pop_front()
    }

    fn poison_local(&self) {
        lock(&self.barrier).poisoned = true;
        self.barrier_cv.notify_all();
    }

    /// Declares the run dead locally *and* tells the parent (which
    /// broadcasts to the peers).
    pub(crate) fn poison(&self) {
        self.poison_local();
        let _ = self.send(&CtlMsg::Poison);
    }

    /// Whether anyone — a peer, the parent, or a local stream failure
    /// — declared the run dead.
    pub(crate) fn is_poisoned(&self) -> bool {
        lock(&self.barrier).poisoned
    }

    /// Reports one locally-completed exchange to the parent.
    pub(crate) fn declare_exchange_done(&self) {
        if self.send(&CtlMsg::ExchangeDone).is_err() {
            self.poison_local();
        }
    }

    /// The parent's latest machine-wide exchange count.
    pub(crate) fn exchange_total(&self) -> u64 {
        self.exchange_total.load(Ordering::Acquire)
    }

    /// Stashes staged checkpoint-frame bytes for the next
    /// `BarrierEnter` (called by [`RelayStore::stage`]).
    fn stage(&self, bytes: Vec<u8>) {
        *lock(&self.staged) = Some(bytes);
    }

    /// The remote superstep exit barrier: announce arrival (shipping
    /// any staged frame) and wait for the parent's release.
    ///
    /// # Errors
    ///
    /// [`EvalError::PeerFailure`] when the run is poisoned (before or
    /// during the wait) or the stream dies;
    /// [`EvalError::BarrierTimeout`] when `timeout` elapses first —
    /// which also poisons the run, so peers unwind too.
    pub(crate) fn barrier_enter(
        &self,
        superstep: u64,
        timeout: Option<Duration>,
    ) -> Result<(), EvalError> {
        let staged = lock(&self.staged).take();
        let target = {
            let b = lock(&self.barrier);
            if b.poisoned {
                return Err(EvalError::PeerFailure);
            }
            b.releases + 1
        };
        // Flush *before* announcing arrival: the caller has already
        // recorded this round's `BarrierEnter` in the ring, and a
        // `KillSpec` SIGKILL can land any time after the parent sees
        // the announcement — flushing first makes the bundle durable
        // (events up to and including the fatal barrier entry) before
        // the parent can possibly react.
        if let Some(pm) = &self.postmortem {
            pm.flush("", None, None);
        }
        if self
            .send(&CtlMsg::BarrierEnter { superstep, staged })
            .is_err()
        {
            self.poison_local();
            return Err(EvalError::PeerFailure);
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut b = lock(&self.barrier);
        loop {
            if b.poisoned {
                return Err(EvalError::PeerFailure);
            }
            if b.releases >= target {
                break;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        b.poisoned = true;
                        self.barrier_cv.notify_all();
                        drop(b);
                        let _ = self.send(&CtlMsg::Poison);
                        // The caller's `timed_barrier` retags the
                        // superstep; `waiting` is 1 because a rank
                        // process only knows about itself.
                        return Err(EvalError::BarrierTimeout {
                            superstep,
                            waiting: 1,
                        });
                    }
                    b = self
                        .barrier_cv
                        .wait_timeout(b, d - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                None => {
                    b = self
                        .barrier_cv
                        .wait(b)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        drop(b);
        // A completed superstep is a durability point: flush the ring
        // so a SIGKILL anywhere in the *next* superstep still leaves
        // an analyzable bundle on disk.
        if let Some(pm) = &self.postmortem {
            pm.flush("", None, None);
        }
        Ok(())
    }

    /// Routes one parent→child message into the hub's state (the
    /// reader thread's dispatch).
    fn absorb(&self, msg: CtlMsg) {
        match msg {
            CtlMsg::Deliver { frame } => lock(&self.inbound).push_back(frame),
            CtlMsg::ExchangeTotal { total } => {
                self.exchange_total.fetch_max(total, Ordering::AcqRel);
            }
            CtlMsg::BarrierRelease { .. } => {
                lock(&self.barrier).releases += 1;
                self.barrier_cv.notify_all();
            }
            CtlMsg::Poison => self.poison_local(),
            // Child→parent shapes on a parent→child stream: a protocol
            // bug upstream; ignoring them is safe (the run's health is
            // carried by the messages above).
            _ => {}
        }
    }
}

/// The reader half of a rank process: routes every parent message into
/// the hub until the stream dies, then poisons the run (a vanished
/// parent must not leave the rank waiting forever).
fn run_child_reader(hub: &RemoteHub, mut stream: UnixStream) {
    loop {
        match read_ctl(&mut stream) {
            Ok(msg) => hub.absorb(msg),
            Err(_) => {
                hub.poison_local();
                return;
            }
        }
    }
}

/// The child-side [`CheckpointStore`]: staging hands the encoded frame
/// to the hub (shipped with the next `BarrierEnter`); committing,
/// loading and listing are the *parent's* job, so they are inert here.
#[derive(Debug)]
struct RelayStore {
    hub: Arc<RemoteHub>,
}

impl CheckpointStore for RelayStore {
    fn stage(&self, frame: &RankFrame) -> Result<u64, CheckpointError> {
        let bytes = frame.encode();
        let len = bytes.len() as u64;
        self.hub.stage(bytes);
        Ok(len)
    }

    fn commit(&self, _generation: u64, _p: usize) -> Result<u64, CheckpointError> {
        // Unreachable in practice: the remote sync backend never takes
        // the local commit path. Harmless if reached.
        Ok(0)
    }

    fn generations(&self) -> Vec<u64> {
        Vec::new()
    }

    fn load(
        &self,
        generation: u64,
        _p: usize,
        _fingerprint: u64,
    ) -> Result<Vec<RankFrame>, CheckpointError> {
        Err(CheckpointError::NotCommitted { generation })
    }

    fn clear(&self) {}
}

// ---------------------------------------------------------------------------
// Child side: the rank process entry point
// ---------------------------------------------------------------------------

fn env_string(name: &str) -> Result<String, String> {
    std::env::var(name).map_err(|_| format!("{name} is not set — am I running under the launcher?"))
}

fn env_u64(name: &str) -> Result<u64, String> {
    env_string(name)?
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("{name} does not parse: {e}"))
}

/// The `bsml-rank` binary's whole life: connect, handshake, run one
/// rank, report. Returns the process exit code (0 = rank finished, 1 =
/// rank failed and reported `Fatal`, 2 = could not even start).
/// Factored out of the binary so the protocol is testable in-crate.
#[must_use]
pub fn rank_main() -> i32 {
    match rank_process() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bsml-rank: {msg}");
            2
        }
    }
}

fn rank_process() -> Result<i32, String> {
    let socket = env_string(RANK_SOCKET_ENV)?;
    let rank = env_u64(RANK_ID_ENV)? as usize;
    let p = env_u64(RANK_P_ENV)? as usize;
    let fingerprint = env_u64(RANK_FINGERPRINT_ENV)?;
    let mut stream =
        UnixStream::connect(&socket).map_err(|e| format!("connect to {socket}: {e}"))?;
    // The handshake deadline guards the child too: a parent that
    // accepts but never welcomes must not hang the process.
    stream
        .set_read_timeout(Some(handshake_timeout_from_env()))
        .map_err(|e| format!("socket timeout: {e}"))?;
    write_ctl(&mut stream, &CtlMsg::hello(fingerprint, rank, p))
        .map_err(|e| format!("send hello: {e}"))?;
    let CtlMsg::Welcome {
        program,
        fuel,
        barrier_timeout_ms,
        mailbox_capacity,
        retransmit_after,
        retransmit_budget,
        poll_sleep_us,
        checkpoint_interval,
        flight_capacity,
        attempt,
        faults,
        resume_frame,
    } = read_ctl(&mut stream).map_err(|e| format!("read welcome: {e}"))?
    else {
        return Err("parent rejected the handshake or sent an unexpected message".to_string());
    };
    stream
        .set_read_timeout(None)
        .map_err(|e| format!("socket timeout: {e}"))?;

    let parsed = bsml_syntax::parse(&program).map_err(|e| format!("program re-parse: {e}"))?;
    let reparsed = program_fingerprint(&parsed, p);
    if reparsed != fingerprint {
        return Err(format!(
            "program fingerprint mismatch: spawned for {fingerprint:#018x}, \
             the welcomed program hashes to {reparsed:#018x}"
        ));
    }

    // Flight recording: the welcomed capacity, or — like the
    // supervisor — implied at the default capacity by a postmortem
    // directory in the environment.
    let postmortem_dir = bsml_obs::env::path_knob(POSTMORTEM_DIR_ENV);
    let capacity = if flight_capacity > 0 {
        flight_capacity as usize
    } else if postmortem_dir.is_some() {
        DEFAULT_FLIGHT_CAPACITY
    } else {
        0
    };
    let recorder = (capacity > 0).then(|| Arc::new(FlightRecorder::new(capacity)));
    let postmortem = match (&postmortem_dir, &recorder) {
        (Some(dir), Some(rec)) => ChildPostmortem::new(
            dir,
            rank,
            p,
            attempt,
            fingerprint,
            Arc::clone(rec),
            capacity,
        )
        .map(Arc::new),
        _ => None,
    };
    // An (empty) bundle exists before superstep 0 runs: even a rank
    // SIGKILLed immediately leaves an analyzable trace.
    if let Some(pm) = &postmortem {
        pm.flush("", None, None);
    }

    let hub = RemoteHub::new(
        stream
            .try_clone()
            .map_err(|e| format!("socket clone: {e}"))?,
        postmortem.clone(),
    );
    let reader_hub = Arc::clone(&hub);
    std::thread::spawn(move || run_child_reader(&reader_hub, stream));

    let transport: Arc<dyn Transport> = Arc::new(SocketTransport::new(Arc::clone(&hub)));
    let tuning = NetTuning {
        mailbox_capacity: mailbox_capacity as usize,
        retransmit_after: u32::try_from(retransmit_after).unwrap_or(u32::MAX),
        retransmit_budget: u32::try_from(retransmit_budget).unwrap_or(u32::MAX),
        poll_sleep: Duration::from_micros(poll_sleep_us),
    };
    let barrier_timeout =
        (barrier_timeout_ms > 0).then(|| Duration::from_millis(barrier_timeout_ms));
    let plan = (!faults.is_empty()).then(|| Arc::new(FaultPlan::from_faults(faults)));
    let checkpoint = (checkpoint_interval > 0).then(|| {
        (
            checkpoint_interval,
            Arc::new(RelayStore {
                hub: Arc::clone(&hub),
            }) as Arc<dyn CheckpointStore>,
            fingerprint,
        )
    });
    let replay = match resume_frame {
        Some(bytes) => Some(RankFrame::decode(&bytes).map_err(|e| format!("resume frame: {e}"))?),
        None => None,
    };

    let run_hub = Arc::clone(&hub);
    let run_recorder = recorder.clone();
    // The unwind guard mirrors `run_rank`: a panic (injected or real)
    // must still poison the peers and report `Fatal`, not kill the
    // process silently.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_remote_rank(
            rank,
            p,
            run_hub,
            transport,
            &parsed,
            fuel,
            tuning,
            barrier_timeout,
            plan,
            attempt,
            checkpoint,
            run_recorder,
            replay,
        )
    }));
    let (result, ledger) = match caught {
        Ok(pair) => pair,
        Err(_) => {
            hub.poison();
            (Err(EvalError::PeerFailure), CtlLedger::default())
        }
    };

    // Final black box + report. Flush before reporting so the on-disk
    // bundle exists even if the parent is already gone.
    let (flight_dropped, flight) = match (&postmortem, &recorder) {
        (Some(pm), _) => {
            match &result {
                Ok(_) => pm.flush("", None, None),
                Err(err) => {
                    let (error_rank, error_superstep) = error_coordinate(err);
                    pm.flush(&err.to_string(), error_rank, error_superstep);
                }
            }
            pm.snapshot()
        }
        (None, Some(rec)) => (rec.dropped(), rec.drain()),
        (None, None) => (0, Vec::new()),
    };
    match result {
        Ok((value, stats, work)) => {
            let _ = hub.send(&CtlMsg::Done {
                value,
                stats,
                work,
                ledger,
                flight_dropped,
                flight,
            });
            Ok(0)
        }
        Err(error) => {
            let _ = hub.send(&CtlMsg::Fatal {
                error,
                ledger,
                flight_dropped,
                flight,
            });
            Ok(1)
        }
    }
}

// ---------------------------------------------------------------------------
// Parent side: launcher, router, crash detection
// ---------------------------------------------------------------------------

/// Distinguishes concurrently-created socket directories of one parent
/// process (`std::process::id` distinguishes parents).
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

fn launch_failure(rank: usize, detail: String) -> EvalError {
    EvalError::TransportFailure {
        rank,
        superstep: 0,
        detail,
    }
}

/// Validates a claimed `Hello` against what the parent expects from
/// the fleet it spawned (`taken[r]` marks ranks that already
/// connected). Returns the authenticated rank id.
///
/// # Errors
///
/// A human-readable refusal (sent back as [`CtlMsg::Reject`]): wrong
/// magic, version skew, fingerprint mismatch, wrong `p`, out-of-range
/// or duplicate rank — and a non-`Hello` first message.
pub fn validate_hello(
    msg: &CtlMsg,
    fingerprint: u64,
    p: usize,
    taken: &[bool],
) -> Result<usize, String> {
    let CtlMsg::Hello {
        magic,
        version,
        fingerprint: theirs,
        rank,
        p: their_p,
    } = msg
    else {
        return Err("first message is not a Hello".to_string());
    };
    if *magic != CTL_MAGIC {
        return Err(format!(
            "not a BSML rank: magic {magic:#018x}, expected {CTL_MAGIC:#018x}"
        ));
    }
    if *version != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version skew: rank speaks v{version}, parent speaks v{PROTOCOL_VERSION}"
        ));
    }
    if *theirs != fingerprint {
        return Err(format!(
            "program fingerprint mismatch: rank was spawned for {theirs:#018x}, \
             parent is running {fingerprint:#018x}"
        ));
    }
    if *their_p != p {
        return Err(format!(
            "machine width mismatch: rank believes p = {their_p}, parent has p = {p}"
        ));
    }
    if *rank >= p {
        return Err(format!("rank {rank} out of range for p = {p}"));
    }
    if taken[*rank] {
        return Err(format!("duplicate connection for rank {rank}"));
    }
    Ok(*rank)
}

/// Locates the rank-runner binary: explicit config, then
/// [`RANK_BIN_ENV`], then a `bsml-rank` sibling of the current
/// executable (covering both `target/<profile>/` and
/// `target/<profile>/deps/` callers).
fn discover_rank_binary(cfg: &ProcessConfig) -> Result<PathBuf, EvalError> {
    if let Some(bin) = &cfg.rank_binary {
        return Ok(bin.clone());
    }
    if let Some(bin) = std::env::var_os(RANK_BIN_ENV) {
        return Ok(PathBuf::from(bin));
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut candidates = Vec::new();
        if let Some(dir) = exe.parent() {
            candidates.push(dir.join("bsml-rank"));
            if let Some(up) = dir.parent() {
                candidates.push(up.join("bsml-rank"));
            }
        }
        for candidate in candidates {
            if candidate.is_file() {
                return Ok(candidate);
            }
        }
    }
    Err(launch_failure(
        0,
        format!(
            "cannot locate the bsml-rank binary: set ProcessConfig::rank_binary or {RANK_BIN_ENV}"
        ),
    ))
}

/// One spawned-and-welcomed fleet, ready to route.
struct Launch {
    dir: PathBuf,
    created_dir: bool,
    socket: PathBuf,
    /// Reader halves, by rank.
    streams: Vec<UnixStream>,
    /// Writer halves, by rank.
    writers: Vec<Mutex<UnixStream>>,
    children: Vec<Mutex<Child>>,
}

fn abort_children(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

fn cleanup_socket(dir: &Path, socket: &Path, created_dir: bool) {
    let _ = std::fs::remove_file(socket);
    if created_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Binds, spawns `p` rank processes, handshakes every connection under
/// the deadline, and welcomes the fleet. Any failure kills and reaps
/// everything spawned so far and comes back as
/// [`EvalError::TransportFailure`] — a never-connecting rank included.
fn launch_ranks(
    machine: &DistMachine,
    cfg: &ProcessConfig,
    e: &Expr,
    attempt: u32,
    fingerprint: u64,
    resume: Option<&ResumePoint>,
) -> Result<Launch, EvalError> {
    let p = machine.p;
    let handshake = cfg
        .handshake_timeout
        .unwrap_or_else(handshake_timeout_from_env);
    let (dir, created_dir) = match &cfg.socket_dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!(
                "bsml-ranks-{}-{}",
                std::process::id(),
                SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
            true,
        ),
    };
    std::fs::create_dir_all(&dir)
        .map_err(|err| launch_failure(0, format!("socket dir {}: {err}", dir.display())))?;
    let socket = dir.join("coord.sock");
    let _ = std::fs::remove_file(&socket);
    let fail = |rank: usize, detail: String| {
        cleanup_socket(&dir, &socket, created_dir);
        launch_failure(rank, detail)
    };
    let listener = match UnixListener::bind(&socket) {
        Ok(l) => l,
        Err(err) => return Err(fail(0, format!("bind {}: {err}", socket.display()))),
    };
    if let Err(err) = listener.set_nonblocking(true) {
        return Err(fail(0, format!("listener mode: {err}")));
    }
    let binary = discover_rank_binary(cfg)?;

    let mut children: Vec<Child> = Vec::with_capacity(p);
    for rank in 0..p {
        let mut cmd = Command::new(&binary);
        cmd.env(RANK_SOCKET_ENV, &socket)
            .env(RANK_ID_ENV, rank.to_string())
            .env(RANK_P_ENV, p.to_string())
            .env(RANK_FINGERPRINT_ENV, fingerprint.to_string())
            .stdin(Stdio::null());
        if let Some(pm) = &cfg.postmortem_dir {
            cmd.env(POSTMORTEM_DIR_ENV, pm);
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(err) => {
                abort_children(&mut children);
                return Err(fail(
                    rank,
                    format!("spawn rank {rank} ({}): {err}", binary.display()),
                ));
            }
        }
    }

    // Accept + handshake under one deadline for the whole fleet.
    let deadline = Instant::now() + handshake;
    let mut slots: Vec<Option<(UnixStream, UnixStream)>> = (0..p).map(|_| None).collect();
    let mut connected = 0;
    while connected < p {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let taken: Vec<bool> = slots.iter().map(Option::is_some).collect();
                let step = (|| -> Result<usize, String> {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| format!("stream mode: {e}"))?;
                    let remaining = deadline
                        .saturating_duration_since(Instant::now())
                        .max(Duration::from_millis(1));
                    stream
                        .set_read_timeout(Some(remaining))
                        .map_err(|e| format!("stream timeout: {e}"))?;
                    let hello = read_ctl(&mut stream).map_err(|e| format!("read hello: {e}"))?;
                    validate_hello(&hello, fingerprint, p, &taken)
                })();
                match step {
                    Ok(rank) => {
                        if let Err(err) = stream.set_read_timeout(None) {
                            abort_children(&mut children);
                            return Err(fail(rank, format!("stream timeout: {err}")));
                        }
                        let writer = match stream.try_clone() {
                            Ok(w) => w,
                            Err(err) => {
                                abort_children(&mut children);
                                return Err(fail(rank, format!("stream clone: {err}")));
                            }
                        };
                        slots[rank] = Some((stream, writer));
                        connected += 1;
                    }
                    Err(reason) => {
                        let _ = write_ctl(
                            &mut stream,
                            &CtlMsg::Reject {
                                reason: reason.clone(),
                            },
                        );
                        abort_children(&mut children);
                        return Err(fail(0, format!("handshake rejected: {reason}")));
                    }
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing = slots.iter().position(Option::is_none).unwrap_or(0);
                    abort_children(&mut children);
                    return Err(fail(
                        missing,
                        format!(
                            "handshake timeout: {connected}/{p} rank(s) connected within \
                             {handshake:?} (rank {missing} never arrived)"
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(err) => {
                abort_children(&mut children);
                return Err(fail(0, format!("accept: {err}")));
            }
        }
    }

    // Welcome the fleet: program + full execution configuration.
    let program = e.to_string();
    for (rank, slot) in slots.iter_mut().enumerate() {
        let (_, writer) = slot.as_mut().expect("all connected");
        let welcome = CtlMsg::Welcome {
            program: program.clone(),
            fuel: machine.fuel,
            barrier_timeout_ms: machine
                .barrier_timeout
                .map_or(0, |t| u64::try_from(t.as_millis()).unwrap_or(u64::MAX)),
            mailbox_capacity: machine.tuning.mailbox_capacity as u64,
            retransmit_after: u64::from(machine.tuning.retransmit_after),
            retransmit_budget: u64::from(machine.tuning.retransmit_budget),
            poll_sleep_us: u64::try_from(machine.tuning.poll_sleep.as_micros()).unwrap_or(u64::MAX),
            checkpoint_interval: machine
                .checkpoints
                .as_ref()
                .map_or(0, |(policy, _)| policy.interval()),
            flight_capacity: machine.flight.unwrap_or(0) as u64,
            attempt,
            faults: machine
                .faults
                .as_ref()
                .map_or_else(Vec::new, |plan| plan.faults().to_vec()),
            resume_frame: resume.map(|rp| rp.frames[rank].encode()),
        };
        if let Err(err) = write_ctl(writer, &welcome) {
            abort_children(&mut children);
            return Err(fail(rank, format!("welcome rank {rank}: {err}")));
        }
    }

    let mut streams = Vec::with_capacity(p);
    let mut writers = Vec::with_capacity(p);
    for slot in slots {
        let (reader, writer) = slot.expect("all connected");
        streams.push(reader);
        writers.push(Mutex::new(writer));
    }
    Ok(Launch {
        dir,
        created_dir,
        socket,
        streams,
        writers,
        children: children.into_iter().map(Mutex::new).collect(),
    })
}

/// What one rank shipped home in its `Done` or `Fatal`.
struct RankReport {
    result: Result<(PortableValue, CtlStats, u64), EvalError>,
    ledger: CtlLedger,
    flight_dropped: u64,
    flight: Vec<TimedFlightEvent>,
}

/// The barrier round currently filling (BSP lockstep guarantees all
/// `p` arrivals of round `t` precede any arrival of round `t + 1`).
struct Round {
    arrived: Vec<bool>,
    count: usize,
    /// The generation the arrivals of this round staged, if any.
    staged_generation: Option<u64>,
}

/// Parent-side shared state: reader threads (one per rank) route
/// frames and synchronization through it.
struct ParentState {
    p: usize,
    attempt: u32,
    writers: Vec<Mutex<UnixStream>>,
    children: Vec<Mutex<Child>>,
    /// Supersteps each rank has completed (its death coordinate).
    completed: Vec<AtomicU64>,
    round: Mutex<Round>,
    exchange_total: AtomicU64,
    reports: Mutex<Vec<Option<RankReport>>>,
    /// Death notes for ranks whose stream died before any report.
    deaths: Mutex<Vec<Option<String>>>,
    store: Option<Arc<dyn CheckpointStore>>,
    ckpt_written: AtomicU64,
    ckpt_bytes: AtomicU64,
    kills: Vec<KillSpec>,
}

impl ParentState {
    fn send_to(&self, rank: usize, msg: &CtlMsg) {
        // A dead child's stream errors here (`EPIPE`); that is fine —
        // the death is detected and reported by its reader thread.
        let _ = write_ctl(&mut *lock(&self.writers[rank]), msg);
    }

    fn broadcast(&self, msg: &CtlMsg) {
        for rank in 0..self.p {
            self.send_to(rank, msg);
        }
    }

    /// SIGKILLs one rank process (the chaos grid's real crash).
    fn kill(&self, rank: usize) {
        let _ = lock(&self.children[rank]).kill();
    }

    fn killed_at(&self, rank: usize, superstep: u64) -> bool {
        self.kills
            .iter()
            .any(|k| k.rank == rank && k.superstep == superstep && k.attempt == self.attempt)
    }

    /// One rank arrived at the exit barrier of `superstep`. The last
    /// arrival commits any staged generation (the consistent cut:
    /// every rank has arrived, none has been released) and broadcasts
    /// the release — SIGKILLing instead any rank whose kill spec names
    /// the superstep being entered.
    fn handle_barrier(&self, rank: usize, superstep: u64, staged: Option<Vec<u8>>) {
        self.completed[rank].fetch_max(superstep + 1, Ordering::Relaxed);
        let staged_generation = staged.and_then(|bytes| {
            let store = self.store.as_ref()?;
            let frame = RankFrame::decode(&bytes).ok()?;
            let generation = frame.superstep;
            // Staging is best-effort, exactly like in-process.
            store.stage(&frame).ok()?;
            Some(generation)
        });
        let complete = {
            let mut round = lock(&self.round);
            if let Some(generation) = staged_generation {
                round.staged_generation = Some(generation);
            }
            if !round.arrived[rank] {
                round.arrived[rank] = true;
                round.count += 1;
            }
            if round.count == self.p {
                let generation = round.staged_generation.take();
                round.arrived.iter_mut().for_each(|a| *a = false);
                round.count = 0;
                Some(generation)
            } else {
                None
            }
        };
        if let Some(generation) = complete {
            if let (Some(generation), Some(store)) = (generation, &self.store) {
                if let Ok(bytes) = store.commit(generation, self.p) {
                    self.ckpt_written.fetch_add(1, Ordering::Relaxed);
                    self.ckpt_bytes.fetch_add(bytes, Ordering::Relaxed);
                }
            }
            for r in 0..self.p {
                if self.killed_at(r, superstep + 1) {
                    self.kill(r);
                } else {
                    self.send_to(r, &CtlMsg::BarrierRelease { superstep });
                }
            }
        }
    }
}

/// One rank's reader loop: routes its child→parent stream until EOF.
/// EOF without a prior `Done`/`Fatal` is a rank death: noted with the
/// reaped exit status and broadcast as poison so the peers unwind.
fn parent_reader(state: &ParentState, rank: usize, mut stream: UnixStream) {
    loop {
        match read_ctl(&mut stream) {
            Ok(CtlMsg::Data { dst, frame }) => {
                if dst < state.p {
                    state.send_to(dst, &CtlMsg::Deliver { frame });
                }
            }
            Ok(CtlMsg::ExchangeDone) => {
                let total = state.exchange_total.fetch_add(1, Ordering::AcqRel) + 1;
                state.broadcast(&CtlMsg::ExchangeTotal { total });
            }
            Ok(CtlMsg::BarrierEnter { superstep, staged }) => {
                state.handle_barrier(rank, superstep, staged);
            }
            Ok(CtlMsg::Poison) => state.broadcast(&CtlMsg::Poison),
            Ok(CtlMsg::Fatal {
                error,
                ledger,
                flight_dropped,
                flight,
            }) => {
                lock(&state.reports)[rank] = Some(RankReport {
                    result: Err(error),
                    ledger,
                    flight_dropped,
                    flight,
                });
                state.broadcast(&CtlMsg::Poison);
            }
            Ok(CtlMsg::Done {
                value,
                stats,
                work,
                ledger,
                flight_dropped,
                flight,
            }) => {
                state.completed[rank].fetch_max(stats.supersteps, Ordering::Relaxed);
                lock(&state.reports)[rank] = Some(RankReport {
                    result: Ok((value, stats, work)),
                    ledger,
                    flight_dropped,
                    flight,
                });
            }
            // Parent→child shapes echoed back: protocol bug upstream;
            // ignore.
            Ok(_) => {}
            Err(err) => {
                let reported = lock(&state.reports)[rank].is_some();
                if !reported {
                    // Rank death. Reap for the status (waitpid): the
                    // child closed its socket only by exiting.
                    let status = lock(&state.children[rank])
                        .wait()
                        .map_or_else(|e| format!("unreapable: {e}"), |s| s.to_string());
                    lock(&state.deaths)[rank] =
                        Some(format!("rank process died ({status}; stream: {err})"));
                    state.broadcast(&CtlMsg::Poison);
                }
                return;
            }
        }
    }
}

fn add_ledger(sum: &mut CtlLedger, one: &CtlLedger) {
    sum.faults_injected += one.faults_injected;
    sum.barrier_timeouts += one.barrier_timeouts;
    sum.frames_sent += one.frames_sent;
    sum.retransmits += one.retransmits;
    sum.dups_dropped += one.dups_dropped;
    sum.corrupt_frames += one.corrupt_frames;
    sum.backpressure_waits += one.backpressure_waits;
    sum.frames_lost += one.frames_lost;
}

/// Runs one attempt with every rank in its own OS process — the
/// [`crate::Execution::Processes`] body of
/// `DistMachine::run_attempt_with_resume`, with the same contract:
/// the result, the furthest completed superstep, and the flight log.
pub(crate) fn run_process_attempt(
    machine: &DistMachine,
    cfg: &ProcessConfig,
    e: &Expr,
    attempt: u32,
    resume: Option<ResumePoint>,
) -> (Result<DistOutcome, EvalError>, u64, Option<FlightLog>) {
    let p = machine.p;
    let fingerprint = program_fingerprint(e, p);
    let resumed_from = resume.as_ref().map(|rp| rp.superstep);
    let baseline = resumed_from.unwrap_or(0);
    let launch = match launch_ranks(machine, cfg, e, attempt, fingerprint, resume.as_ref()) {
        Ok(l) => l,
        Err(err) => return (Err(err), baseline, None),
    };
    let state = ParentState {
        p,
        attempt,
        writers: launch.writers,
        children: launch.children,
        completed: (0..p).map(|_| AtomicU64::new(baseline)).collect(),
        round: Mutex::new(Round {
            arrived: vec![false; p],
            count: 0,
            staged_generation: None,
        }),
        exchange_total: AtomicU64::new(0),
        reports: Mutex::new((0..p).map(|_| None).collect()),
        deaths: Mutex::new(vec![None; p]),
        store: machine
            .checkpoints
            .as_ref()
            .map(|(_, store)| Arc::clone(store)),
        ckpt_written: AtomicU64::new(0),
        ckpt_bytes: AtomicU64::new(0),
        kills: cfg.kills.clone(),
    };

    // Superstep-0 kills: the rank never gets to run a superstep.
    for spec in &cfg.kills {
        if spec.attempt == attempt && spec.superstep == 0 && spec.rank < p {
            state.kill(spec.rank);
        }
    }

    // Route until every stream reaches EOF (clean completion or
    // death). Children bound their own waits with the shipped barrier
    // watchdog, and any death poisons the fleet, so the readers always
    // come home.
    std::thread::scope(|scope| {
        for (rank, stream) in launch.streams.into_iter().enumerate() {
            let state = &state;
            scope.spawn(move || parent_reader(state, rank, stream));
        }
    });

    // Reap whatever the death path has not already reaped (waitpid;
    // kills leave zombies until here).
    for child in &state.children {
        let _ = lock(child).wait();
    }
    cleanup_socket(&launch.dir, &launch.socket, launch.created_dir);

    let furthest = state
        .completed
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .max()
        .unwrap_or(baseline);
    let reports = state
        .reports
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let deaths = state
        .deaths
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);

    // Account exactly like the in-process backend: the shipped
    // per-rank ledgers, plus the parent's own checkpoint commits.
    let mut ledger_sum = CtlLedger::default();
    for report in reports.iter().flatten() {
        add_ledger(&mut ledger_sum, &report.ledger);
    }
    flush_counters(
        &machine.telemetry,
        &ledger_sum,
        state.ckpt_written.load(Ordering::Relaxed),
        state.ckpt_bytes.load(Ordering::Relaxed),
        0,
    );
    let flight_log = machine.flight.map(|_| FlightLog {
        ranks: reports
            .iter()
            .enumerate()
            .map(|(rank, report)| match report {
                Some(r) => RankFlightLog {
                    rank,
                    dropped: r.flight_dropped,
                    events: r.flight.clone(),
                },
                // A dead rank ships nothing; its on-disk bundle (the
                // child's own periodic flush) is the surviving trace.
                None => RankFlightLog {
                    rank,
                    dropped: 0,
                    events: Vec::new(),
                },
            })
            .collect(),
    });

    // Death first: EOF-without-report maps to the failed
    // (rank, superstep) coordinate.
    if let Some((rank, detail)) = deaths
        .iter()
        .enumerate()
        .find_map(|(r, d)| d.as_ref().map(|d| (r, d.clone())))
    {
        let superstep = state.completed[rank].load(Ordering::Relaxed);
        return (
            Err(EvalError::TransportFailure {
                rank,
                superstep,
                detail,
            }),
            furthest,
            flight_log,
        );
    }

    // Then mirror `run_threads`: prefer a real error over the
    // `PeerFailure` echoes of poisoned bystanders.
    let results: Vec<Result<(PortableValue, CtlStats, u64), EvalError>> = reports
        .into_iter()
        .map(|r| r.map_or(Err(EvalError::PeerFailure), |report| report.result))
        .collect();
    if results.iter().any(Result::is_err) {
        let mut first_peer_failure = None;
        for r in &results {
            match r {
                Err(EvalError::PeerFailure) => {
                    first_peer_failure = Some(EvalError::PeerFailure);
                }
                Err(real) => return (Err(real.clone()), furthest, flight_log),
                Ok(_) => {}
            }
        }
        return (
            Err(first_peer_failure.expect("some error exists")),
            furthest,
            flight_log,
        );
    }
    let oks: Vec<(PortableValue, CtlStats, u64)> =
        results.into_iter().map(|r| r.expect("checked")).collect();
    let supersteps = oks[0].1.supersteps;
    assert!(
        oks.iter().all(|(_, s, _)| s.supersteps == supersteps),
        "ranks disagree on superstep count — SPMD replication broken"
    );
    let total_words_sent = oks.iter().map(|(_, s, _)| s.sent_words).sum();
    let work = oks.iter().map(|(_, _, w)| *w).collect();
    if machine.telemetry.is_enabled() {
        let s = oks[0].1;
        machine
            .telemetry
            .counter_add("bsp.supersteps", s.supersteps);
        machine.telemetry.counter_add("bsp.puts", s.puts);
        machine.telemetry.counter_add("bsp.ifats", s.ifats);
        machine
            .telemetry
            .counter_add("bsp.words_sent", total_words_sent);
    }
    let value = match assemble(oks.iter().map(|(v, _, _)| v)) {
        Ok(v) => v,
        Err(err) => return (Err(err), furthest, flight_log),
    };
    (
        Ok(DistOutcome {
            value,
            supersteps,
            total_words_sent,
            work,
            resumed_from,
        }),
        furthest,
        flight_log,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::SyncOutcome;

    #[test]
    fn handshake_timeout_env_knob() {
        std::env::set_var(HANDSHAKE_TIMEOUT_ENV, "45000");
        assert_eq!(handshake_timeout_from_env(), Duration::from_millis(45000));
        std::env::set_var(HANDSHAKE_TIMEOUT_ENV, " 250 ");
        assert_eq!(handshake_timeout_from_env(), Duration::from_millis(250));
        std::env::set_var(HANDSHAKE_TIMEOUT_ENV, "soon");
        assert_eq!(handshake_timeout_from_env(), DEFAULT_HANDSHAKE_TIMEOUT);
        std::env::remove_var(HANDSHAKE_TIMEOUT_ENV);
        assert_eq!(handshake_timeout_from_env(), DEFAULT_HANDSHAKE_TIMEOUT);
    }

    #[test]
    fn hello_validation_accepts_the_genuine_article() {
        let taken = vec![false, false, false];
        let hello = CtlMsg::hello(0xF00D, 2, 3);
        assert_eq!(validate_hello(&hello, 0xF00D, 3, &taken), Ok(2));
    }

    #[test]
    fn hello_validation_rejects_every_mismatch() {
        let taken = vec![true, false];
        let cases: Vec<(CtlMsg, &str)> = vec![
            (
                CtlMsg::Hello {
                    magic: 0,
                    version: PROTOCOL_VERSION,
                    fingerprint: 7,
                    rank: 1,
                    p: 2,
                },
                "magic",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION + 1,
                    fingerprint: 7,
                    rank: 1,
                    p: 2,
                },
                "version skew",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION,
                    fingerprint: 8,
                    rank: 1,
                    p: 2,
                },
                "fingerprint mismatch",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION,
                    fingerprint: 7,
                    rank: 1,
                    p: 4,
                },
                "width mismatch",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION,
                    fingerprint: 7,
                    rank: 5,
                    p: 2,
                },
                "out of range",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION,
                    fingerprint: 7,
                    rank: 0,
                    p: 2,
                },
                "duplicate",
            ),
            (CtlMsg::Poison, "not a Hello"),
        ];
        for (msg, needle) in cases {
            let err = validate_hello(&msg, 7, 2, &taken).expect_err("must reject");
            assert!(
                err.contains(needle),
                "refusal {err:?} does not mention {needle:?}"
            );
        }
    }

    /// A hub over a socketpair: staged frames ride the next
    /// `BarrierEnter`, and the release lets the barrier through.
    #[test]
    fn relay_store_ships_staged_frames_with_barrier_enter() {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let hub = RemoteHub::new(ours.try_clone().expect("clone"), None);
        let reader_hub = Arc::clone(&hub);
        std::thread::spawn(move || run_child_reader(&reader_hub, ours));

        let frame = RankFrame {
            fingerprint: 99,
            rank: 0,
            superstep: 4,
            fuel_left: 1000,
            sent_words: 3,
            received_words: 3,
            puts: 4,
            ifats: 0,
            outcomes: vec![SyncOutcome::IfAt { chosen: true }],
        };
        let store = RelayStore {
            hub: Arc::clone(&hub),
        };
        assert!(store.stage(&frame).expect("stage") > 0);

        // The "parent": expect BarrierEnter carrying the frame, then
        // release.
        let expected = frame.clone();
        let mut parent_end = theirs;
        let parent = std::thread::spawn(move || {
            let msg = read_ctl(&mut parent_end).expect("barrier enter");
            let CtlMsg::BarrierEnter { superstep, staged } = msg else {
                panic!("expected BarrierEnter, got {msg:?}");
            };
            assert_eq!(superstep, 3);
            let bytes = staged.expect("staged frame rides along");
            assert_eq!(RankFrame::decode(&bytes).expect("decodes"), expected);
            write_ctl(&mut parent_end, &CtlMsg::BarrierRelease { superstep }).expect("release");
            parent_end
        });
        hub.barrier_enter(3, Some(Duration::from_secs(5)))
            .expect("released");
        let _keep_alive = parent.join().expect("parent thread");
        // The stash is consumed: the next barrier ships nothing.
        assert!(lock(&hub.staged).is_none());
    }

    #[test]
    fn poisoned_hub_refuses_barrier_entry() {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let hub = RemoteHub::new(ours, None);
        // Parent poison arrives (routed by the reader in production;
        // absorbed directly here).
        hub.absorb(CtlMsg::Poison);
        assert!(hub.is_poisoned());
        assert_eq!(
            hub.barrier_enter(0, Some(Duration::from_secs(5))),
            Err(EvalError::PeerFailure)
        );
        drop(theirs);
    }

    #[test]
    fn unreleased_barrier_times_out_instead_of_hanging() {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let hub = RemoteHub::new(ours, None);
        let result = hub.barrier_enter(2, Some(Duration::from_millis(30)));
        assert_eq!(
            result,
            Err(EvalError::BarrierTimeout {
                superstep: 2,
                waiting: 1
            })
        );
        // The timeout poisoned the run — later waits fail fast.
        assert!(hub.is_poisoned());
        drop(theirs);
    }

    #[test]
    fn exchange_totals_are_monotonic_under_reordered_broadcasts() {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let hub = RemoteHub::new(ours, None);
        hub.absorb(CtlMsg::ExchangeTotal { total: 3 });
        hub.absorb(CtlMsg::ExchangeTotal { total: 2 });
        assert_eq!(hub.exchange_total(), 3);
        drop(theirs);
    }
}
