//! Session hosts: one dedicated thread per tenant session.
//!
//! `Session` (and the `Value`s inside it) is `Rc`-based and cannot
//! cross threads, so the server never moves it: each tenant's session
//! is born, lives, and dies on its own host thread. Only `String`s
//! (phrase sources, rendered results) and the shared
//! [`FuelCell`] handle cross the boundary. Workers *drive* hosts by
//! granting fuel through the cell; they never touch the session.
//!
//! A host runs one request at a time, **transactionally**: it
//! snapshots the session before `load`, and restores that snapshot on
//! *any* failure — static error, dynamic failure, cancellation, or a
//! panic caught at the host's `catch_unwind` boundary. Only a fully
//! successful request commits, which is what makes the server's
//! replay transcripts deterministic: a transcript is exactly the
//! sources that committed, and replaying them from scratch rebuilds
//! the same session state.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use bsml_core::{BsmlError, Session, SessionEvent, SessionSnapshot};
use bsml_eval::{EvalError, FuelCell};
use bsml_obs::Telemetry;

use crate::config::ServerConfig;
use crate::wal::TenantWal;

/// Durability context handed to a host at spawn: the armed per-tenant
/// WAL handle, and (after a recovery) the serialized base state to
/// restore before replaying the transcript.
pub(crate) struct DurableCtx {
    pub(crate) wal: TenantWal,
    pub(crate) base: Option<Vec<u8>>,
}

/// What a host reports back for one request.
#[derive(Clone, Debug)]
pub(crate) enum HostOutcome {
    /// Every phrase succeeded; the request committed.
    Done { rendered: Vec<String> },
    /// Parse or type error; rolled back (nothing had run).
    Static { error: String },
    /// A phrase failed dynamically; rolled back. `cancelled` is true
    /// when the failure was [`EvalError::Cancelled`] — the scheduler
    /// pulled the plug (deadline or budget), not the program.
    Failed { error: String, cancelled: bool },
    /// The evaluation panicked; the panic was contained and the
    /// session restored.
    Panicked,
    /// The phrase succeeded but its WAL append failed; the session
    /// was rolled back so nothing is reported durable that is not.
    DurabilityLost { error: String },
}

pub(crate) enum HostCmd {
    /// Run one request's source. The host replies exactly once on
    /// `reply` and then calls [`FuelCell::finish`].
    Run {
        source: String,
        reply: mpsc::Sender<HostOutcome>,
    },
    /// Exit the host loop.
    Shutdown,
}

/// A handle to a live host thread.
pub(crate) struct HostHandle {
    pub(crate) cmd_tx: mpsc::Sender<HostCmd>,
    pub(crate) cell: Arc<FuelCell>,
    join: Option<JoinHandle<()>>,
}

impl HostHandle {
    /// Spawns a host for `tenant`, replaying `transcript` (the
    /// tenant's committed sources) to rebuild prior session state.
    /// The replay runs under plain generous fuel — every transcript
    /// entry already completed within budget once, so replay cannot
    /// hang on fuel.
    pub(crate) fn spawn(
        tenant: &str,
        config: &ServerConfig,
        telemetry: &Telemetry,
        transcript: Vec<String>,
        durable: Option<DurableCtx>,
    ) -> HostHandle {
        let (cmd_tx, cmd_rx) = mpsc::channel::<HostCmd>();
        let cell = FuelCell::new();
        let thread_cell = Arc::clone(&cell);
        let params = config.params;
        let telemetry = telemetry.clone();
        let name = format!("bsml-host-{tenant}");
        let join = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                host_main(
                    params,
                    telemetry,
                    transcript,
                    durable,
                    &thread_cell,
                    &cmd_rx,
                );
            })
            .expect("spawn session host thread");
        HostHandle {
            cmd_tx,
            cell,
            join: Some(join),
        }
    }

    /// Asks the host to exit and joins it. Never called on abandoned
    /// hosts (those are detached by dropping the handle).
    pub(crate) fn shutdown(mut self) {
        let _ = self.cmd_tx.send(HostCmd::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Detaches the thread (used by watchdog abandon: the host is
    /// stuck and will never join).
    pub(crate) fn abandon(mut self) {
        self.join.take();
    }
}

fn host_main(
    params: bsml_bsp::BspParams,
    telemetry: Telemetry,
    transcript: Vec<String>,
    durable: Option<DurableCtx>,
    cell: &Arc<FuelCell>,
    cmd_rx: &mpsc::Receiver<HostCmd>,
) {
    // Rebuild committed state first, on plain fuel (no cell): restore
    // the recovered snapshot base (if any), then replay the
    // transcript — every entry is a request that already succeeded,
    // so this terminates without scheduler involvement.
    let mut session = Session::with_telemetry(params, telemetry.clone());
    let mut wal = None;
    if let Some(ctx) = durable {
        if let Some(snap) = ctx
            .base
            .as_deref()
            .and_then(|bytes| SessionSnapshot::from_bytes(bytes).ok())
        {
            session.restore(&snap);
        }
        wal = Some(ctx.wal);
    }
    for source in &transcript {
        let _ = session.load(source);
    }
    // From here on, every evaluation draws fuel through the cell.
    let mut session = session.with_fuel_cell(Arc::clone(cell));

    let mut graceful = false;
    while let Ok(cmd) = cmd_rx.recv() {
        let HostCmd::Run { source, reply } = cmd else {
            graceful = true;
            break;
        };
        let outcome = run_one(&mut session, &source, wal.as_mut());
        let committed = matches!(outcome, HostOutcome::Done { .. });
        let delivered = reply.send(outcome).is_ok();
        cell.finish();
        // Compact after replying, off the request's latency path. A
        // failed reply means the server abandoned us mid-request:
        // never write a *new generation* from a zombie host — the
        // server may have re-armed the tenant into one already.
        if committed && delivered {
            if let Some(w) = wal.as_mut().filter(|w| w.should_snapshot()) {
                let _ = w.install_snapshot(&session.snapshot().to_bytes());
            }
        }
        if !delivered {
            return;
        }
    }
    // Graceful drain: leave a fresh snapshot behind so the next
    // recovery replays zero phrases for this tenant.
    if graceful {
        if let Some(w) = wal.as_mut().filter(|w| w.unsnapshotted() > 0) {
            let _ = w.install_snapshot(&session.snapshot().to_bytes());
        }
    }
}

/// Runs one request transactionally against the session. A committed
/// request is appended (and fsynced) to the WAL *before* it is
/// reported done; if the append fails the session rolls back and the
/// request reports [`HostOutcome::DurabilityLost`] instead.
fn run_one(session: &mut Session, source: &str, wal: Option<&mut TenantWal>) -> HostOutcome {
    let before = session.snapshot();
    let result = catch_unwind(AssertUnwindSafe(|| session.load(source)));
    match result {
        Err(_panic) => {
            session.restore(&before);
            HostOutcome::Panicked
        }
        Ok(Err(err)) => {
            // Static errors are all-or-nothing in `Session::load`,
            // but restore anyway: the transactional contract is
            // "failure ⇒ bit-identical to never having loaded".
            let error = render_error(&err, source);
            session.restore(&before);
            HostOutcome::Static { error }
        }
        Ok(Ok(events)) => {
            if let Some(failure) = events.iter().find_map(|e| e.error()) {
                let cancelled = *failure == EvalError::Cancelled;
                let error = failure.to_string();
                session.restore(&before);
                HostOutcome::Failed { error, cancelled }
            } else {
                if let Some(w) = wal {
                    if let Err(e) = w.append_commit(source) {
                        session.restore(&before);
                        return HostOutcome::DurabilityLost {
                            error: e.to_string(),
                        };
                    }
                }
                let rendered = events.iter().map(render_event).collect();
                HostOutcome::Done { rendered }
            }
        }
    }
}

fn render_error(err: &BsmlError, source: &str) -> String {
    match err {
        BsmlError::Parse(_) | BsmlError::Type(_) => err.render(source),
        BsmlError::Eval(e) => e.to_string(),
    }
}

fn render_event(event: &SessionEvent) -> String {
    let name = event
        .name()
        .map_or_else(|| "-".to_string(), ToString::to_string);
    match event.value() {
        Some(v) => format!("{name} : {} = {v}", event.scheme()),
        None => format!("{name} : {} (failed)", event.scheme()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_bsp::BspParams;

    fn session() -> Session {
        Session::new(BspParams::new(2, 1, 10))
    }

    #[test]
    fn run_one_commits_success() {
        let mut s = session();
        let out = run_one(&mut s, "let x = 40 + 2", None);
        match out {
            HostOutcome::Done { rendered } => {
                assert_eq!(rendered, vec!["x : int = 42"]);
            }
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(s.snapshot().len(), 1);
    }

    #[test]
    fn run_one_rolls_back_dynamic_failures_entirely() {
        let mut s = session();
        let _ = run_one(&mut s, "let base = 10", None);
        // Second phrase fails: the WHOLE request (incl. `good`) rolls
        // back, unlike a bare Session::load which would keep `good`.
        let out = run_one(&mut s, "let good = 1\nlet bad = base / 0", None);
        assert!(matches!(
            out,
            HostOutcome::Failed {
                cancelled: false,
                ..
            }
        ));
        assert_eq!(s.snapshot().len(), 1, "only `base` survives");
        assert!(s.scheme_of("good").is_none());
    }

    #[test]
    fn run_one_reports_static_errors() {
        let mut s = session();
        let out = run_one(&mut s, "let x = mkpar (fun i -> mkpar (fun j -> j))", None);
        assert!(matches!(out, HostOutcome::Static { .. }));
        assert_eq!(s.snapshot().len(), 0);
    }

    #[test]
    fn host_thread_round_trip() {
        let config = ServerConfig::new(BspParams::new(2, 1, 10));
        let telemetry = Telemetry::disabled();
        let host = HostHandle::spawn("t0", &config, &telemetry, vec![], None);
        let (reply_tx, reply_rx) = mpsc::channel();
        host.cell.reset();
        host.cmd_tx
            .send(HostCmd::Run {
                source: "let x = 1 + 1".to_string(),
                reply: reply_tx,
            })
            .unwrap();
        // Drive it: grant generously until finished.
        loop {
            host.cell.grant(100_000);
            if host.cell.wait_quiescent(std::time::Duration::from_secs(10))
                == bsml_eval::Quiescence::Finished
            {
                break;
            }
        }
        let out = reply_rx.recv().unwrap();
        assert!(matches!(out, HostOutcome::Done { .. }));
        assert!(host.cell.drawn() > 0);
        host.shutdown();
    }

    #[test]
    fn host_replays_transcript_on_spawn() {
        let config = ServerConfig::new(BspParams::new(2, 1, 10));
        let telemetry = Telemetry::disabled();
        let host = HostHandle::spawn(
            "t1",
            &config,
            &telemetry,
            vec!["let a = 20".to_string(), "let b = a + 22".to_string()],
            None,
        );
        let (reply_tx, reply_rx) = mpsc::channel();
        host.cell.reset();
        host.cmd_tx
            .send(HostCmd::Run {
                source: "b".to_string(),
                reply: reply_tx,
            })
            .unwrap();
        loop {
            host.cell.grant(100_000);
            if host.cell.wait_quiescent(std::time::Duration::from_secs(10))
                == bsml_eval::Quiescence::Finished
            {
                break;
            }
        }
        match reply_rx.recv().unwrap() {
            HostOutcome::Done { rendered } => assert_eq!(rendered, vec!["- : int = 42"]),
            other => panic!("expected Done, got {other:?}"),
        }
        host.shutdown();
    }

    #[test]
    fn run_one_appends_committed_phrases_to_the_wal() {
        use crate::wal::DurableLog;
        use bsml_bsp::Disk;
        use bsml_obs::Telemetry;

        let dir = std::env::temp_dir().join(format!("bsml-host-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = DurableLog::open(&dir, Arc::new(Disk::new()), 8, Telemetry::disabled()).unwrap();
        let mut wal = log.tenant("t2", None).unwrap();
        let mut s = session();
        assert!(matches!(
            run_one(&mut s, "let x = 1", Some(&mut wal)),
            HostOutcome::Done { .. }
        ));
        // Failures never reach the log.
        let _ = run_one(&mut s, "1 / 0", Some(&mut wal));
        let recovered = log.recover(&|_| true);
        assert_eq!(recovered[0].commits, vec!["let x = 1"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_append_failure_rolls_the_session_back() {
        use crate::wal::DurableLog;
        use bsml_bsp::{Disk, StorageFault, StorageFaultKind, StorageOp, StoragePlan};
        use bsml_obs::Telemetry;

        let dir = std::env::temp_dir().join(format!("bsml-host-lost-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = Arc::new(Disk::with_plan(StoragePlan::new().fault(StorageFault {
            op: StorageOp::Append,
            nth: 1, // header succeeds, first commit fails
            kind: StorageFaultKind::Enospc,
        })));
        let log = DurableLog::open(&dir, disk, 8, Telemetry::disabled()).unwrap();
        let mut wal = log.tenant("t3", None).unwrap();
        let mut s = session();
        let out = run_one(&mut s, "let x = 1", Some(&mut wal));
        assert!(matches!(out, HostOutcome::DurabilityLost { .. }));
        // The session is bit-identical to never having run the
        // phrase: a success the log did not capture must not exist.
        assert_eq!(s.snapshot().len(), 0);
        // Once the disk recovers, the same phrase goes through.
        let out = run_one(&mut s, "let x = 1", Some(&mut wal));
        assert!(matches!(out, HostOutcome::Done { .. }));
        assert_eq!(log.recover(&|_| true)[0].commits, vec!["let x = 1"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
