//! `bsml-serve`: an overload-safe, multi-tenant front end for
//! interactive mini-BSML sessions.
//!
//! The paper's type system makes each *phrase* safe; this crate makes
//! a *fleet of sessions* safe to operate: many tenants share one
//! bounded worker pool, and no tenant — however hostile its programs
//! (divergent loops, panics, quota floods) — can starve, wedge, or
//! crash its neighbors.
//!
//! Built entirely on the standard library (no async runtime), around
//! four mechanisms:
//!
//! * **Typed admission control** — a bounded global queue plus
//!   per-tenant quotas; overload sheds *at the door* with a typed
//!   [`Rejected`], never by buffering without bound.
//! * **Fuel-sliced cooperative preemption** — sessions evaluate
//!   through a shared [`bsml_eval::FuelCell`], drawing fuel in
//!   scheduler-granted slices. A divergent phrase simply stops
//!   receiving grants; between grants it is parked mid-expression on
//!   its own host thread, fully resumable.
//! * **Deficit-round-robin fairness** — fuel is the scheduling
//!   currency; each ready tenant earns one quantum per scheduler
//!   visit, so heavy tenants are preempted and light tenants never
//!   starve.
//! * **Crash containment** — panics are caught at the host boundary
//!   and the session restored from its pre-request snapshot; hosts
//!   that stop ticking are cancelled, then abandoned by the watchdog;
//!   repeat offenders are quarantined behind a cooldown, and their
//!   sessions rebuilt deterministically from a replay transcript of
//!   committed requests.
//!
//! ```
//! use bsml_bsp::BspParams;
//! use bsml_obs::Telemetry;
//! use bsml_serve::{Outcome, Server, ServerConfig};
//!
//! let server = Server::start(
//!     ServerConfig::new(BspParams::new(2, 1, 10)),
//!     Telemetry::disabled(),
//! );
//! let ticket = server.submit("alice", "let x = mkpar (fun i -> i * 21)")?;
//! let done = ticket.wait();
//! assert!(matches!(done.outcome, Outcome::Done { .. }));
//! let stats = server.shutdown();
//! assert_eq!(stats.offered, stats.admitted + stats.rejected());
//! assert_eq!(stats.admitted, stats.completed);
//! # Ok::<(), bsml_serve::Rejected>(())
//! ```

pub mod config;
mod host;
pub mod server;
pub mod types;
pub mod wal;

pub use config::ServerConfig;
pub use server::{Server, ServerStats};
pub use types::{Completion, Outcome, Rejected, RequestId, Ticket};
pub use wal::{frame_record, scan_records, DurableLog, RecoveredTenant, TenantWal, WalRecord};
