//! The write-ahead transcript log behind durable tenant sessions.
//!
//! **Soundness.** BSML evaluation is deterministic, so a tenant
//! session is fully determined by the ordered list of phrases that
//! *committed* ([`crate::Outcome::Done`]) — the same property that
//! lets the server rebuild quarantined sessions from an in-memory
//! transcript. This module makes that transcript durable: one log
//! file per tenant, each committed phrase appended as a
//! checksum-framed record, fsynced before the completion is reported.
//!
//! **Format.** A log file is a sequence of records, each
//! `[len:u64le][body][fnv1a(len‖body):u64le]` — the same length-
//! prefix + FNV-1a discipline as `bsml_bsp::wire` frames and
//! checkpoint files. Bodies are `Header` (format version + tenant
//! name, always first), at most one `Snapshot` (a serialized
//! [`SessionSnapshot`](bsml_core::SessionSnapshot) base state, always
//! second), then `Commit` records with contiguous sequence numbers.
//!
//! **Torn-tail rule.** On recovery the file is scanned record by
//! record; the first record that fails its checksum, fails to decode,
//! or runs past the end of the file ends the scan, and the file is
//! truncated back to the last good record. A half-written record
//! costs *that record*, never the session.
//!
//! **Compaction.** Every `snapshot_every` commits the host serializes
//! its session state and [`TenantWal::install_snapshot`] writes a
//! fresh *generation* — `t-<hash>-<gen>.wal`, written whole via
//! tmp+rename+fsync — containing just Header + Snapshot; appends then
//! continue there and older generations are pruned. Recovery cost is
//! O(phrases since the last snapshot). If the newest generation is
//! unusable (corrupt header, undecodable snapshot), recovery falls
//! down the generation ladder to the previous one.
//!
//! All I/O goes through [`bsml_bsp::Disk`], so the fault-injection
//! grid (ENOSPC, torn writes, fsync failure, read bit-flips) covers
//! the WAL with the same plans as the checkpoint store.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bsml_bsp::checkpoint::fnv1a;
use bsml_bsp::{Disk, StorageError};
use bsml_eval::bytes::{put_str, put_u64, ByteReader, CodecError};
use bsml_obs::Telemetry;

/// WAL format version; bump on any layout change.
const WAL_VERSION: u8 = 1;

// Record body tags.
const R_HEADER: u8 = 0;
const R_SNAPSHOT: u8 = 1;
const R_COMMIT: u8 = 2;

/// One decoded WAL record body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// First record of every file: format version and tenant name.
    Header {
        /// The WAL format version the file was written with.
        version: u8,
        /// The tenant the file belongs to (the filename carries only
        /// its hash).
        tenant: String,
    },
    /// A compaction base: serialized session state as of `seq`.
    Snapshot {
        /// The sequence number of the last commit the state covers.
        seq: u64,
        /// `SessionSnapshot::to_bytes` output.
        state: Vec<u8>,
    },
    /// One committed phrase.
    Commit {
        /// 1-based, contiguous per tenant across generations.
        seq: u64,
        /// The phrase source, exactly as submitted.
        source: String,
    },
}

impl WalRecord {
    /// Encodes the body (without framing).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Header { version, tenant } => {
                out.push(R_HEADER);
                out.push(*version);
                put_str(&mut out, tenant);
            }
            WalRecord::Snapshot { seq, state } => {
                out.push(R_SNAPSHOT);
                put_u64(&mut out, *seq);
                put_u64(&mut out, state.len() as u64);
                out.extend_from_slice(state);
            }
            WalRecord::Commit { seq, source } => {
                out.push(R_COMMIT);
                put_u64(&mut out, *seq);
                put_str(&mut out, source);
            }
        }
        out
    }

    /// Decodes a body.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on any malformed body; never panics.
    pub fn decode(body: &[u8]) -> Result<WalRecord, CodecError> {
        let mut r = ByteReader::new(body);
        let rec = match r.u8()? {
            R_HEADER => WalRecord::Header {
                version: r.u8()?,
                tenant: r.str()?,
            },
            R_SNAPSHOT => {
                let seq = r.u64()?;
                let n = r.count()?;
                WalRecord::Snapshot {
                    seq,
                    state: r.take(n)?.to_vec(),
                }
            }
            R_COMMIT => WalRecord::Commit {
                seq: r.u64()?,
                source: r.str()?,
            },
            other => {
                return Err(CodecError::BadTag {
                    what: "wal record",
                    tag: other,
                })
            }
        };
        r.finish()?;
        Ok(rec)
    }
}

/// Frames a body as `[len][body][fnv1a(len‖body)]`.
#[must_use]
pub fn frame_record(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 16);
    put_u64(&mut out, body.len() as u64);
    out.extend_from_slice(body);
    let sum = fnv1a(&out);
    put_u64(&mut out, sum);
    out
}

/// Scans framed records from the start of `bytes`, stopping at the
/// first torn or corrupt one. Returns the decoded bodies, the byte
/// offset up to which the file is good, and whether a tail was
/// dropped.
#[must_use]
pub fn scan_records(bytes: &[u8]) -> (Vec<WalRecord>, usize, bool) {
    let mut records = Vec::new();
    let mut good = 0usize;
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return (records, good, false);
        }
        if rest.len() < 8 {
            return (records, good, true);
        }
        let len = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
        let Some(total) = len
            .checked_add(16)
            .and_then(|t| usize::try_from(t).ok())
            .filter(|t| *t <= rest.len())
        else {
            return (records, good, true);
        };
        let framed = &rest[..total];
        let sum = u64::from_le_bytes(framed[total - 8..].try_into().expect("8 bytes"));
        if fnv1a(&framed[..total - 8]) != sum {
            return (records, good, true);
        }
        let Ok(record) = WalRecord::decode(&framed[8..total - 8]) else {
            return (records, good, true);
        };
        records.push(record);
        pos += total;
        good = pos;
    }
}

/// Everything recovery could reconstruct for one tenant.
#[derive(Clone, Debug)]
pub struct RecoveredTenant {
    /// The tenant name (from the file header).
    pub name: String,
    /// The compaction base, if the generation has one: the sequence
    /// number it covers and the serialized session state.
    pub base: Option<(u64, Vec<u8>)>,
    /// Committed phrase sources after the base, in commit order.
    pub commits: Vec<String>,
    /// Sequence number of the last recovered commit (or of the base
    /// if no commits followed it). 0 for a tenant with no history.
    pub last_seq: u64,
    /// Whether a torn tail was dropped (and the file truncated).
    pub truncated: bool,
    /// Whether recovery had to fall back past an unusable newer
    /// generation.
    pub fell_back: bool,
    generation: u32,
    commits_in_generation: u64,
}

/// A per-tenant append handle. Writes go through the shared
/// [`Disk`], so fault plans cover them.
#[derive(Debug)]
pub struct TenantWal {
    disk: Arc<Disk>,
    telemetry: Telemetry,
    dir: PathBuf,
    hash: u64,
    tenant: String,
    generation: u32,
    path: PathBuf,
    /// The known-good file length — every successful append advances
    /// it, and a failed append truncates back to it.
    len: u64,
    next_seq: u64,
    since_snapshot: u64,
    snapshot_every: u64,
    poisoned: bool,
}

impl TenantWal {
    /// Appends one committed phrase, fsynced, rolling the file back to
    /// its previous length if the write fails partway.
    ///
    /// # Errors
    ///
    /// [`StorageError`] — the phrase is then *not* durable and must
    /// not be reported as committed. After a failed rollback the
    /// handle is poisoned and every later append fails fast.
    pub fn append_commit(&mut self, source: &str) -> Result<u64, StorageError> {
        let seq = self.next_seq;
        let body = WalRecord::Commit {
            seq,
            source: source.to_string(),
        }
        .encode();
        self.append_record(&body)?;
        self.next_seq += 1;
        self.since_snapshot += 1;
        Ok(seq)
    }

    /// Whether enough commits accumulated since the last snapshot for
    /// compaction to pay off.
    #[must_use]
    pub fn should_snapshot(&self) -> bool {
        self.since_snapshot >= self.snapshot_every
    }

    /// The sequence number the next commit will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Commits appended since the last snapshot — what a recovery
    /// right now would have to replay for this tenant.
    #[must_use]
    pub fn unsnapshotted(&self) -> u64 {
        self.since_snapshot
    }

    /// Compacts: writes a fresh generation containing only
    /// Header + Snapshot (covering everything committed so far) via
    /// tmp+rename+fsync, switches appends to it, and prunes older
    /// generations. On failure the current generation stays
    /// authoritative — compaction is repeatable and never required
    /// for correctness.
    ///
    /// # Errors
    ///
    /// [`StorageError`]; the log remains consistent on the old
    /// generation.
    pub fn install_snapshot(&mut self, state: &[u8]) -> Result<(), StorageError> {
        let covered = self.next_seq - 1;
        let next_gen = self.generation + 1;
        let mut bytes = frame_record(
            &WalRecord::Header {
                version: WAL_VERSION,
                tenant: self.tenant.clone(),
            }
            .encode(),
        );
        bytes.extend_from_slice(&frame_record(
            &WalRecord::Snapshot {
                seq: covered,
                state: state.to_vec(),
            }
            .encode(),
        ));
        let path = generation_path(&self.dir, self.hash, next_gen);
        self.disk.write_atomic(&path, &bytes)?;
        self.telemetry
            .counter_add("server.wal_bytes", bytes.len() as u64);
        let old = self.generation;
        self.generation = next_gen;
        self.path = path;
        self.len = bytes.len() as u64;
        self.since_snapshot = 0;
        // Pruning is best-effort: a survivor is only wasted space and
        // recovery always prefers the newest usable generation.
        for gen in 0..=old {
            self.disk
                .remove(&generation_path(&self.dir, self.hash, gen));
        }
        Ok(())
    }

    fn append_record(&mut self, body: &[u8]) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Io {
                path: self.path.clone(),
                what: "wal poisoned by an earlier failed rollback".to_string(),
            });
        }
        let framed = frame_record(body);
        match self.disk.append_sync(&self.path, &framed) {
            Ok(_) => {
                self.len += framed.len() as u64;
                self.telemetry
                    .counter_add("server.wal_bytes", framed.len() as u64);
                Ok(())
            }
            Err(e) => {
                // Roll the file back to the last known-good length so
                // a torn prefix never survives into recovery (ENOSPC
                // may have created nothing — only files that actually
                // grew need cutting). If the rollback itself fails,
                // refuse all further appends.
                match std::fs::metadata(&self.path) {
                    Ok(m) if m.len() != self.len => {
                        if self.disk.truncate(&self.path, self.len).is_err() {
                            self.poisoned = true;
                        }
                    }
                    Ok(_) => {}
                    Err(_) => self.poisoned = self.len > 0,
                }
                Err(e)
            }
        }
    }
}

/// The durable directory: opens, recovers, and hands out per-tenant
/// append handles.
#[derive(Clone, Debug)]
pub struct DurableLog {
    dir: PathBuf,
    disk: Arc<Disk>,
    snapshot_every: u64,
    telemetry: Telemetry,
}

impl DurableLog {
    /// Opens (creating if needed) the durable directory.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the directory cannot be created.
    pub fn open(
        dir: &Path,
        disk: Arc<Disk>,
        snapshot_every: u64,
        telemetry: Telemetry,
    ) -> Result<DurableLog, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::Io {
            path: dir.to_path_buf(),
            what: e.to_string(),
        })?;
        Ok(DurableLog {
            dir: dir.to_path_buf(),
            disk,
            snapshot_every: snapshot_every.max(1),
            telemetry,
        })
    }

    /// The directory this log lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Scans the directory and reconstructs every tenant's durable
    /// state, newest usable generation first, applying the torn-tail
    /// rule (and physically truncating torn files so appends continue
    /// from a clean end). `validate` is given each candidate base
    /// snapshot; rejecting it makes recovery fall back one
    /// generation.
    ///
    /// Returns tenants sorted by name — recovery order is
    /// deterministic.
    #[must_use]
    pub fn recover(&self, validate: &dyn Fn(&[u8]) -> bool) -> Vec<RecoveredTenant> {
        // hash → generations present, newest first.
        let mut tenants: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        for entry in entries.flatten() {
            if let Some((hash, generation)) = parse_wal_name(&entry.file_name().to_string_lossy()) {
                tenants.entry(hash).or_default().push(generation);
            }
        }
        let mut out = Vec::new();
        for (hash, mut gens) in tenants {
            gens.sort_unstable_by(|a, b| b.cmp(a));
            let mut fell_back = false;
            for generation in gens {
                let path = generation_path(&self.dir, hash, generation);
                match self.recover_generation(&path, hash, generation, validate) {
                    Some(mut tenant) => {
                        tenant.fell_back = fell_back;
                        if tenant.truncated {
                            self.telemetry.counter_add("server.wal_truncated_tails", 1);
                        }
                        out.push(tenant);
                        break;
                    }
                    None => fell_back = true,
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Arms appends for one tenant, continuing its recovered
    /// generation or starting a fresh one.
    ///
    /// # Errors
    ///
    /// [`StorageError`] if the fresh file's header cannot be written.
    pub fn tenant(
        &self,
        name: &str,
        recovered: Option<&RecoveredTenant>,
    ) -> Result<TenantWal, StorageError> {
        let hash = fnv1a(name.as_bytes());
        if let Some(r) = recovered.filter(|r| r.name == name) {
            return Ok(TenantWal {
                disk: Arc::clone(&self.disk),
                telemetry: self.telemetry.clone(),
                dir: self.dir.clone(),
                hash,
                tenant: name.to_string(),
                generation: r.generation,
                path: generation_path(&self.dir, hash, r.generation),
                len: std::fs::metadata(generation_path(&self.dir, hash, r.generation))
                    .map(|m| m.len())
                    .unwrap_or(0),
                next_seq: r.last_seq + 1,
                since_snapshot: r.commits_in_generation,
                snapshot_every: self.snapshot_every,
                poisoned: false,
            });
        }
        // Fresh tenant: pick a generation number past anything on
        // disk (an unusable stale file must not be appended to).
        let mut generation = 0u32;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some((h, g)) = parse_wal_name(&entry.file_name().to_string_lossy()) {
                    if h == hash && g >= generation {
                        generation = g + 1;
                    }
                }
            }
        }
        let mut wal = TenantWal {
            disk: Arc::clone(&self.disk),
            telemetry: self.telemetry.clone(),
            dir: self.dir.clone(),
            hash,
            tenant: name.to_string(),
            generation,
            path: generation_path(&self.dir, hash, generation),
            len: 0,
            next_seq: 1,
            since_snapshot: 0,
            snapshot_every: self.snapshot_every,
            poisoned: false,
        };
        wal.append_record(
            &WalRecord::Header {
                version: WAL_VERSION,
                tenant: name.to_string(),
            }
            .encode(),
        )?;
        Ok(wal)
    }

    /// Re-arms a tenant whose previous [`TenantWal`] is unreachable
    /// (its host thread was abandoned wedged, still owning the
    /// handle). Writes the tenant's full known history — optional
    /// snapshot base plus every commit after it — as a brand-new
    /// generation in one atomic tmp+rename+fsync, and returns a
    /// handle appending there. The zombie host keeps the *old*
    /// generation's path, so there is never more than one writer per
    /// file; recovery prefers the newest usable generation and
    /// ignores whatever the zombie does to the old one.
    ///
    /// # Errors
    ///
    /// [`StorageError`] if the new generation cannot be written; the
    /// old generations are untouched.
    pub fn rearm(
        &self,
        name: &str,
        base: Option<(u64, &[u8])>,
        commits: &[String],
    ) -> Result<TenantWal, StorageError> {
        let hash = fnv1a(name.as_bytes());
        let mut generation = 0u32;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some((h, g)) = parse_wal_name(&entry.file_name().to_string_lossy()) {
                    if h == hash && g >= generation {
                        generation = g + 1;
                    }
                }
            }
        }
        let mut bytes = frame_record(
            &WalRecord::Header {
                version: WAL_VERSION,
                tenant: name.to_string(),
            }
            .encode(),
        );
        let mut seq = 0u64;
        if let Some((base_seq, state)) = base {
            bytes.extend_from_slice(&frame_record(
                &WalRecord::Snapshot {
                    seq: base_seq,
                    state: state.to_vec(),
                }
                .encode(),
            ));
            seq = base_seq;
        }
        for source in commits {
            seq += 1;
            bytes.extend_from_slice(&frame_record(
                &WalRecord::Commit {
                    seq,
                    source: source.clone(),
                }
                .encode(),
            ));
        }
        let path = generation_path(&self.dir, hash, generation);
        self.disk.write_atomic(&path, &bytes)?;
        self.telemetry
            .counter_add("server.wal_bytes", bytes.len() as u64);
        Ok(TenantWal {
            disk: Arc::clone(&self.disk),
            telemetry: self.telemetry.clone(),
            dir: self.dir.clone(),
            hash,
            tenant: name.to_string(),
            generation,
            path,
            len: bytes.len() as u64,
            next_seq: seq + 1,
            since_snapshot: commits.len() as u64,
            snapshot_every: self.snapshot_every,
            poisoned: false,
        })
    }

    fn recover_generation(
        &self,
        path: &Path,
        hash: u64,
        generation: u32,
        validate: &dyn Fn(&[u8]) -> bool,
    ) -> Option<RecoveredTenant> {
        let bytes = self.disk.read(path).ok()?;
        let (records, good, torn) = scan_records(&bytes);
        let mut records = records.into_iter();
        // The header is the fingerprint: its name must hash to the
        // filename, or the file is not what its name claims.
        let name = match records.next() {
            Some(WalRecord::Header { version, tenant })
                if version == WAL_VERSION && fnv1a(tenant.as_bytes()) == hash =>
            {
                tenant
            }
            _ => return None,
        };
        let mut base: Option<(u64, Vec<u8>)> = None;
        let mut commits: Vec<String> = Vec::new();
        let mut last_seq = 0u64;
        let mut commits_in_generation = 0u64;
        let mut logical_torn = torn;
        for record in records {
            match record {
                WalRecord::Snapshot { seq, state } if base.is_none() && commits.is_empty() => {
                    if !validate(&state) {
                        return None;
                    }
                    last_seq = seq;
                    base = Some((seq, state));
                }
                WalRecord::Commit { seq, source } if seq == last_seq + 1 => {
                    last_seq = seq;
                    commits_in_generation += 1;
                    commits.push(source);
                }
                // A record out of place or out of sequence ends the
                // usable prefix, exactly like a torn tail.
                _ => {
                    logical_torn = true;
                    break;
                }
            }
        }
        if torn || logical_torn {
            // Physically drop the bad tail so appends resume from a
            // clean, checksummed end. Re-derive the offset from the
            // logical prefix when the tail was checksum-valid but
            // out of sequence.
            let keep = if logical_torn && !torn {
                reframed_len(
                    &bytes,
                    1 + u64::from(base.is_some()) + commits_in_generation,
                )
            } else {
                good
            };
            let _ = self.disk.truncate(path, keep as u64);
        }
        Some(RecoveredTenant {
            name,
            base,
            commits,
            last_seq,
            truncated: torn || logical_torn,
            fell_back: false,
            generation,
            commits_in_generation,
        })
    }
}

/// Byte length of the first `n` framed records of `bytes` (which must
/// have at least that many valid frames — callers pass counts they
/// just scanned).
fn reframed_len(bytes: &[u8], n: u64) -> usize {
    let mut pos = 0usize;
    for _ in 0..n {
        let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("scanned frame"));
        pos += len as usize + 16;
    }
    pos
}

fn generation_path(dir: &Path, hash: u64, generation: u32) -> PathBuf {
    dir.join(format!("t-{hash:016x}-{generation:08}.wal"))
}

/// Parses `t-<16 hex>-<8 digits>.wal` into (hash, generation).
fn parse_wal_name(name: &str) -> Option<(u64, u32)> {
    let rest = name.strip_prefix("t-")?.strip_suffix(".wal")?;
    let (hash_hex, gen_dec) = rest.split_once('-')?;
    if hash_hex.len() != 16 || gen_dec.len() != 8 {
        return None;
    }
    Some((
        u64::from_str_radix(hash_hex, 16).ok()?,
        gen_dec.parse::<u32>().ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(dir: &Path) -> DurableLog {
        DurableLog::open(dir, Arc::new(Disk::new()), 4, Telemetry::disabled()).unwrap()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bsml-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_bodies_roundtrip() {
        for rec in [
            WalRecord::Header {
                version: 1,
                tenant: "tenant007".to_string(),
            },
            WalRecord::Snapshot {
                seq: 9,
                state: vec![1, 2, 3],
            },
            WalRecord::Commit {
                seq: 10,
                source: "let x = 1".to_string(),
            },
        ] {
            assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn append_then_recover() {
        let dir = tempdir("append");
        let log = log(&dir);
        let mut wal = log.tenant("alice", None).unwrap();
        assert_eq!(wal.append_commit("let x = 1").unwrap(), 1);
        assert_eq!(wal.append_commit("let y = x + 1").unwrap(), 2);
        let recovered = log.recover(&|_| true);
        assert_eq!(recovered.len(), 1);
        let r = &recovered[0];
        assert_eq!(r.name, "alice");
        assert!(r.base.is_none());
        assert_eq!(r.commits, vec!["let x = 1", "let y = x + 1"]);
        assert_eq!(r.last_seq, 2);
        assert!(!r.truncated);
        // Appends continue with the right sequence number.
        let mut wal = log.tenant("alice", Some(r)).unwrap();
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(wal.append_commit("let z = 3").unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tempdir("torn");
        let log = log(&dir);
        let mut wal = log.tenant("bob", None).unwrap();
        wal.append_commit("let a = 1").unwrap();
        wal.append_commit("let b = 2").unwrap();
        // Tear the file mid-way through the last record.
        let path = generation_path(&dir, fnv1a(b"bob"), 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let recovered = log.recover(&|_| true);
        let r = &recovered[0];
        assert_eq!(r.commits, vec!["let a = 1"]);
        assert!(r.truncated);
        // The file was physically truncated: a second recovery is
        // clean.
        let again = log.recover(&|_| true);
        assert_eq!(again[0].commits, vec!["let a = 1"]);
        assert!(!again[0].truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_starts_a_new_generation_and_prunes() {
        let dir = tempdir("compact");
        let log = log(&dir);
        let mut wal = log.tenant("carol", None).unwrap();
        for i in 0..4 {
            wal.append_commit(&format!("let v{i} = {i}")).unwrap();
        }
        assert!(wal.should_snapshot());
        wal.install_snapshot(b"fake-state").unwrap();
        assert!(!wal.should_snapshot());
        wal.append_commit("let after = 9").unwrap();
        // Old generation pruned, new one carries base + suffix.
        assert!(!generation_path(&dir, fnv1a(b"carol"), 0).exists());
        let recovered = log.recover(&|_| true);
        let r = &recovered[0];
        assert_eq!(r.base.as_ref().unwrap(), &(4, b"fake-state".to_vec()));
        assert_eq!(r.commits, vec!["let after = 9"]);
        assert_eq!(r.last_seq, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_snapshot_falls_down_the_generation_ladder() {
        let dir = tempdir("ladder");
        let log = log(&dir);
        let mut wal = log.tenant("dave", None).unwrap();
        wal.append_commit("let a = 1").unwrap();
        wal.install_snapshot(b"good").unwrap();
        // Generation 1 now holds the snapshot; gen 0 was pruned, so
        // recreate an older, still-valid generation to fall back to.
        let mut old = log.tenant("dave-old", None).unwrap();
        old.append_commit("unused").unwrap();
        // Rejecting every snapshot forces the ladder: with no older
        // generation, recovery reports nothing for dave.
        let recovered = log.recover(&|state| state != b"good");
        assert!(!recovered.iter().any(|r| r.name == "dave"));
        // Accepting it recovers normally.
        let recovered = log.recover(&|_| true);
        assert!(recovered.iter().any(|r| r.name == "dave"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_rolls_the_file_back() {
        use bsml_bsp::{StorageFault, StorageFaultKind, StorageOp, StoragePlan};
        let dir = tempdir("rollback");
        let disk = Arc::new(Disk::with_plan(StoragePlan::new().fault(StorageFault {
            op: StorageOp::Append,
            nth: 2, // header, first commit, then tear the second
            kind: StorageFaultKind::TornWrite { at: 7 },
        })));
        let log = DurableLog::open(&dir, disk, 8, Telemetry::disabled()).unwrap();
        let mut wal = log.tenant("erin", None).unwrap();
        wal.append_commit("let ok = 1").unwrap();
        let err = wal.append_commit("let torn = 2").unwrap_err();
        assert!(matches!(err, StorageError::TornWrite { .. }));
        // The torn prefix was rolled back: recovery sees exactly the
        // committed prefix, nothing torn.
        let recovered = log.recover(&|_| true);
        let r = &recovered[0];
        assert_eq!(r.commits, vec!["let ok = 1"]);
        assert!(!r.truncated);
        // And the log keeps working.
        let mut wal = log.tenant("erin", Some(r)).unwrap();
        assert_eq!(wal.append_commit("let again = 3").unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rearm_writes_history_whole_into_a_new_generation() {
        let dir = tempdir("rearm");
        let log = log(&dir);
        let mut wal = log.tenant("fred", None).unwrap();
        wal.append_commit("let a = 1").unwrap();
        wal.append_commit("let b = 2").unwrap();
        // The host owning `wal` wedged; re-arm from the server's
        // in-memory history without touching the old generation.
        let commits = vec!["let a = 1".to_string(), "let b = 2".to_string()];
        let mut fresh = log.rearm("fred", None, &commits).unwrap();
        assert_eq!(fresh.next_seq(), 3);
        assert_eq!(fresh.append_commit("let c = 3").unwrap(), 3);
        // The zombie's late append lands in the old generation and is
        // ignored: recovery prefers the newest usable one.
        wal.append_commit("zombie write").unwrap();
        let recovered = log.recover(&|_| true);
        let r = recovered.iter().find(|r| r.name == "fred").unwrap();
        assert_eq!(r.commits, vec!["let a = 1", "let b = 2", "let c = 3"]);
        // With a base, sequence numbers continue past it.
        let rearmed = log.rearm("fred", Some((3, b"state")), &[]).unwrap();
        assert_eq!(rearmed.next_seq(), 4);
        let recovered = log.recover(&|_| true);
        let r = recovered.iter().find(|r| r.name == "fred").unwrap();
        assert_eq!(r.base.as_ref().unwrap(), &(3, b"state".to_vec()));
        assert_eq!(r.last_seq, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_names_parse_and_reject_foreigners() {
        assert_eq!(
            parse_wal_name("t-00000000deadbeef-00000003.wal"),
            Some((0xdead_beef, 3))
        );
        assert_eq!(parse_wal_name("t-xyz-00000003.wal"), None);
        assert_eq!(parse_wal_name("gen-00000001.ckpt"), None);
        assert_eq!(parse_wal_name("t-00000000deadbeef-3.wal"), None);
    }

    #[test]
    fn bit_flips_anywhere_stop_the_scan_cleanly() {
        let mut bytes = frame_record(
            &WalRecord::Commit {
                seq: 1,
                source: "let x = 1".to_string(),
            }
            .encode(),
        );
        bytes.extend_from_slice(&frame_record(
            &WalRecord::Commit {
                seq: 2,
                source: "let y = 2".to_string(),
            }
            .encode(),
        ));
        let first = reframed_len(&bytes, 1);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                let (records, good, torn) = scan_records(&bad);
                assert!(torn, "flip at {byte}:{bit} went undetected");
                if byte < first {
                    assert!(records.is_empty());
                    assert_eq!(good, 0);
                } else {
                    assert_eq!(records.len(), 1);
                    assert_eq!(good, first);
                }
            }
        }
    }
}
