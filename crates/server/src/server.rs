//! The multi-tenant session server: bounded admission, deficit-
//! round-robin fuel scheduling, deadlines, and crash containment.
//!
//! # Architecture
//!
//! ```text
//!  submit() ──▸ admission control ──▸ per-tenant bounded queue
//!                    │ typed Rejected           │
//!                    ▾                          ▾
//!               (caller backs off)   ready ring ◂─── DRR scheduler
//!                                        │
//!                              worker pool (config.workers)
//!                                        │ fuel grants via FuelCell
//!                                        ▾
//!                         one host thread per tenant session
//! ```
//!
//! Workers never hold a session — sessions are `Rc`-based and live on
//! dedicated host threads ([`crate::host`]). A worker *drives* a
//! tenant: it credits the tenant's deficit with one quantum, then
//! feeds the host fuel one slice at a time until the request
//! finishes, the deficit runs dry (preemption: the tenant goes to the
//! back of the ready ring, its evaluation left parked mid-expression),
//! the deadline or fuel budget trips (cooperative cancel), or the
//! watchdog concludes the host stopped ticking (abandon + quarantine).
//!
//! Every admitted request terminates in exactly one [`Completion`];
//! `offered == admitted + rejected` and `admitted == completed` after
//! [`Server::shutdown`] — the accounting is exact, by construction.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use bsml_core::SessionSnapshot;
use bsml_eval::{FuelCell, Quiescence};
use bsml_obs::Telemetry;

use crate::config::ServerConfig;
use crate::host::{DurableCtx, HostCmd, HostHandle, HostOutcome};
use crate::types::{Completion, Outcome, Rejected, Ticket};
use crate::wal::{DurableLog, TenantWal};

/// How many consecutive watchdog leashes a host may spend neither
/// parking nor finishing (e.g. a long un-fueled parse/inference
/// phase) before the worker escalates to cancel-then-abandon.
const STUCK_LEASHES: u32 = 3;

/// Cap on accumulated deficit, in quanta: an idle-then-bursty tenant
/// may bank at most this many rounds of credit.
const DEFICIT_CAP_QUANTA: u64 = 4;

struct Job {
    id: u64,
    tenant: String,
    source: String,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Completion>,
}

/// A request mid-execution: its host is evaluating (or parked) and
/// survives across preemptions until it completes.
struct Drive {
    job: Job,
    outcome_rx: mpsc::Receiver<HostOutcome>,
    slices: u64,
}

#[derive(Default)]
struct TenantState {
    queue: VecDeque<Job>,
    deficit: u64,
    in_ready: bool,
    driving: bool,
    current: Option<Drive>,
    host: Option<HostHandle>,
    transcript: Vec<String>,
    /// Recovered snapshot base: the sequence number it covers and the
    /// serialized state. `transcript` holds only commits *after* it.
    base: Option<(u64, Vec<u8>)>,
    /// The armed WAL handle, parked here until the next host spawn
    /// moves it onto the host thread. `None` on a durable server
    /// means the next spawn must re-arm via [`DurableLog::rearm`].
    wal: Option<TenantWal>,
    strikes: u32,
    quarantined_until: Option<Instant>,
}

struct SchedState {
    tenants: BTreeMap<String, TenantState>,
    ready: VecDeque<String>,
    queued_total: usize,
    in_flight: usize,
    shutdown: bool,
}

/// Exact request accounting, readable at any time via
/// [`Server::stats`]. All counters are monotone;
/// `offered == admitted + rejected()` holds at every instant, and
/// `admitted == completed` once the server is drained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Calls to [`Server::submit`].
    pub offered: u64,
    /// Offers admitted (each will produce exactly one completion).
    pub admitted: u64,
    /// Offers shed with [`Rejected::QueueFull`].
    pub rejected_queue_full: u64,
    /// Offers shed with [`Rejected::TenantQuota`].
    pub rejected_tenant_quota: u64,
    /// Offers shed with [`Rejected::Quarantined`].
    pub rejected_quarantined: u64,
    /// Offers shed with [`Rejected::ShuttingDown`].
    pub rejected_shutdown: u64,
    /// Admitted requests that reached their completion.
    pub completed: u64,
    /// Completions with [`Outcome::Done`].
    pub done: u64,
    /// Completions with [`Outcome::Static`].
    pub static_errors: u64,
    /// Completions with [`Outcome::Failed`].
    pub failed: u64,
    /// Completions with [`Outcome::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Completions with [`Outcome::BudgetExhausted`].
    pub budget_exhausted: u64,
    /// Completions with [`Outcome::Panicked`].
    pub panics_contained: u64,
    /// Completions with [`Outcome::Abandoned`] (watchdog).
    pub abandoned: u64,
    /// Completions with [`Outcome::DurabilityLost`] (WAL append
    /// failed; the request was rolled back, not silently kept).
    pub durability_lost: u64,
    /// Completions with [`Outcome::Shed`].
    pub shed: u64,
    /// Times a tenant entered quarantine.
    pub quarantines: u64,
    /// Times a request was preempted (deficit dry) and resumed later.
    pub preemptions: u64,
}

impl ServerStats {
    /// All typed rejections combined.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_tenant_quota
            + self.rejected_quarantined
            + self.rejected_shutdown
    }
}

#[derive(Default)]
struct StatCells {
    offered: AtomicU64,
    admitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_tenant_quota: AtomicU64,
    rejected_quarantined: AtomicU64,
    rejected_shutdown: AtomicU64,
    completed: AtomicU64,
    done: AtomicU64,
    static_errors: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
    budget_exhausted: AtomicU64,
    panics_contained: AtomicU64,
    abandoned: AtomicU64,
    durability_lost: AtomicU64,
    shed: AtomicU64,
    quarantines: AtomicU64,
    preemptions: AtomicU64,
}

struct Inner {
    config: ServerConfig,
    telemetry: Telemetry,
    state: Mutex<SchedState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    next_id: AtomicU64,
    stats: StatCells,
    /// Durable-session log; `None` when `durable_dir` is unset or the
    /// directory could not be opened (the server degrades to
    /// in-memory sessions rather than refusing to start).
    log: Option<DurableLog>,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        // The scheduler state is a plain data structure, valid at
        // every instant; a panicking worker must not wedge admission.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn count(&self, cell: &AtomicU64, metric: &str) {
        cell.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter_add(metric, 1);
    }
}

/// The overload-safe multi-tenant session server. See the
/// [module docs](self).
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool and begins accepting submissions.
    ///
    /// With [`ServerConfig::durable_dir`] set, first scans the
    /// durable directory and rebuilds every tenant recorded there:
    /// checksums and name fingerprints are verified, torn tails
    /// truncated, and each tenant's session will be reconstructed
    /// (snapshot base + deterministic replay of committed phrases) on
    /// its host thread at first use. A durable directory that cannot
    /// be opened degrades the server to in-memory sessions (counted
    /// as `server.wal_open_failed`) — start never fails.
    #[must_use]
    pub fn start(config: ServerConfig, telemetry: Telemetry) -> Server {
        let log = config.durable_dir.as_ref().and_then(|dir| {
            DurableLog::open(
                dir,
                Arc::clone(&config.disk),
                config.snapshot_every,
                telemetry.clone(),
            )
            .map_err(|_| telemetry.counter_add("server.wal_open_failed", 1))
            .ok()
        });
        let mut tenants: BTreeMap<String, TenantState> = BTreeMap::new();
        if let Some(log) = &log {
            for r in log.recover(&|bytes| SessionSnapshot::from_bytes(bytes).is_ok()) {
                telemetry.counter_add("server.recoveries", 1);
                telemetry.counter_add("server.replayed_phrases", r.commits.len() as u64);
                let wal = log.tenant(&r.name, Some(&r)).ok();
                tenants.insert(
                    r.name.clone(),
                    TenantState {
                        transcript: r.commits,
                        base: r.base,
                        wal,
                        ..TenantState::default()
                    },
                );
            }
        }
        let inner = Arc::new(Inner {
            config,
            telemetry,
            state: Mutex::new(SchedState {
                tenants,
                ready: VecDeque::new(),
                queued_total: 0,
                in_flight: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            stats: StatCells::default(),
            log,
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("bsml-worker-{i}"))
                    .spawn(move || worker_main(&inner))
                    .expect("spawn server worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Offers one request. Admission is all-or-nothing and O(1): the
    /// request is either queued within every configured bound, or
    /// shed *now* with a typed [`Rejected`] — the server never
    /// buffers beyond `queue_depth`.
    ///
    /// # Errors
    ///
    /// The typed rejection; see [`Rejected`].
    pub fn submit(&self, tenant: &str, source: &str) -> Result<Ticket, Rejected> {
        let inner = &*self.inner;
        inner.count(&inner.stats.offered, "server.offered");
        let mut st = inner.lock();
        if st.shutdown {
            drop(st);
            inner.count(&inner.stats.rejected_shutdown, "server.rejected.shutdown");
            return Err(Rejected::ShuttingDown);
        }
        let queued_total = st.queued_total;
        let t = st.tenants.entry(tenant.to_string()).or_default();
        if let Some(until) = t.quarantined_until {
            if Instant::now() < until {
                drop(st);
                inner.count(
                    &inner.stats.rejected_quarantined,
                    "server.rejected.quarantined",
                );
                return Err(Rejected::Quarantined);
            }
            t.quarantined_until = None;
            t.strikes = 0;
        }
        if queued_total >= inner.config.queue_depth {
            drop(st);
            inner.count(
                &inner.stats.rejected_queue_full,
                "server.rejected.queue_full",
            );
            return Err(Rejected::QueueFull);
        }
        if t.queue.len() >= inner.config.tenant_quota {
            drop(st);
            inner.count(
                &inner.stats.rejected_tenant_quota,
                "server.rejected.tenant_quota",
            );
            return Err(Rejected::TenantQuota);
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let (reply, rx) = mpsc::channel();
        t.queue.push_back(Job {
            id,
            tenant: tenant.to_string(),
            source: source.to_string(),
            enqueued: now,
            deadline: inner.config.deadline.map(|d| now + d),
            reply,
        });
        if !t.in_ready && !t.driving {
            t.in_ready = true;
            st.ready.push_back(tenant.to_string());
        }
        st.queued_total += 1;
        let depth = st.queued_total as u64;
        drop(st);
        inner.count(&inner.stats.admitted, "server.admitted");
        inner
            .telemetry
            .counter_add(&format!("server.tenant.{tenant}.admitted"), 1);
        inner
            .telemetry
            .histogram_record("server.queue_depth", depth);
        inner.work_cv.notify_one();
        Ok(Ticket { id, rx })
    }

    /// Blocks until every admitted request has completed (queues
    /// empty, nothing in flight).
    pub fn drain(&self) {
        let inner = &*self.inner;
        let mut st = inner.lock();
        while st.queued_total > 0 || st.in_flight > 0 {
            st = inner
                .idle_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Exact accounting so far.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let s = &self.inner.stats;
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerStats {
            offered: ld(&s.offered),
            admitted: ld(&s.admitted),
            rejected_queue_full: ld(&s.rejected_queue_full),
            rejected_tenant_quota: ld(&s.rejected_tenant_quota),
            rejected_quarantined: ld(&s.rejected_quarantined),
            rejected_shutdown: ld(&s.rejected_shutdown),
            completed: ld(&s.completed),
            done: ld(&s.done),
            static_errors: ld(&s.static_errors),
            failed: ld(&s.failed),
            deadline_exceeded: ld(&s.deadline_exceeded),
            budget_exhausted: ld(&s.budget_exhausted),
            panics_contained: ld(&s.panics_contained),
            abandoned: ld(&s.abandoned),
            durability_lost: ld(&s.durability_lost),
            shed: ld(&s.shed),
            quarantines: ld(&s.quarantines),
            preemptions: ld(&s.preemptions),
        }
    }

    /// The server's telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Begins a graceful drain without consuming the server: new
    /// offers are shed with [`Rejected::ShuttingDown`], everything
    /// already admitted still completes. Call [`Server::shutdown`]
    /// afterwards to join workers and hosts — on a durable server
    /// each host then flushes a final compaction snapshot, so the
    /// next start replays zero phrases. This is what a SIGTERM
    /// handler should call.
    pub fn initiate_shutdown(&self) {
        {
            let mut st = self.inner.lock();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
    }

    /// Whether durable sessions are armed (the WAL directory opened).
    #[must_use]
    pub fn durable(&self) -> bool {
        self.inner.log.is_some()
    }

    /// Names of every tenant the server knows — those recovered from
    /// the durable directory at start plus those created by
    /// submissions since. Sorted by name.
    #[must_use]
    pub fn tenants(&self) -> Vec<String> {
        self.inner.lock().tenants.keys().cloned().collect()
    }

    /// Stops admitting, completes every already-admitted request,
    /// joins the workers and hosts, and returns the final accounting.
    /// After this, `offered == admitted + rejected` and
    /// `admitted == completed` hold exactly.
    #[must_use]
    pub fn shutdown(mut self) -> ServerStats {
        self.initiate_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone; dismiss the (idle) hosts.
        let tenants = {
            let mut st = self.inner.lock();
            std::mem::take(&mut st.tenants)
        };
        for (_, t) in tenants {
            if let Some(host) = t.host {
                host.shutdown();
            }
        }
        self.stats()
    }
}

/// Produces the [`DurableCtx`] for a host about to spawn: the parked
/// WAL handle if the tenant still has one, else a re-armed fresh
/// generation carrying the tenant's full in-memory history (the
/// previous handle is unreachable inside an abandoned host thread).
fn arm_durable(log: &DurableLog, t: &mut TenantState, tenant: &str) -> Result<DurableCtx, String> {
    let base = t.base.as_ref().map(|(_, bytes)| bytes.clone());
    if let Some(wal) = t.wal.take() {
        return Ok(DurableCtx { wal, base });
    }
    let snapshot = t.base.as_ref().map(|(seq, bytes)| (*seq, bytes.as_slice()));
    match log.rearm(tenant, snapshot, &t.transcript) {
        Ok(wal) => Ok(DurableCtx { wal, base }),
        Err(e) => Err(e.to_string()),
    }
}

fn worker_main(inner: &Arc<Inner>) {
    loop {
        let tenant = {
            let mut st = inner.lock();
            loop {
                if let Some(name) = st.ready.pop_front() {
                    break name;
                }
                if st.shutdown && st.queued_total == 0 && st.in_flight == 0 {
                    inner.idle_cv.notify_all();
                    inner.work_cv.notify_all();
                    return;
                }
                st = inner
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        drive_round(inner, &tenant);
    }
}

/// One scheduler visit to one tenant: credit a quantum, then feed its
/// current (or next queued) request fuel slices until it completes,
/// preempts, or trips the watchdog.
fn drive_round(inner: &Arc<Inner>, tenant: &str) {
    let cell: Arc<FuelCell>;
    let deadline: Option<Instant>;
    let mut deficit: u64;
    {
        let mut st = inner.lock();
        {
            let Some(t) = st.tenants.get_mut(tenant) else {
                return;
            };
            t.in_ready = false;
            t.driving = true;
            t.deficit =
                (t.deficit + inner.config.quantum).min(inner.config.quantum * DEFICIT_CAP_QUANTA);
        }

        // Start the next queued request if none is mid-flight.
        loop {
            let t = st.tenants.get_mut(tenant).expect("tenant exists: driving");
            if t.current.is_some() {
                break;
            }
            let Some(job) = t.queue.pop_front() else {
                break;
            };
            st.queued_total -= 1;
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                // Expired while queued: complete without running.
                complete(inner, job, Outcome::DeadlineExceeded, 0);
                strike(inner, &mut st, tenant, 1);
                continue;
            }
            let t = st.tenants.get_mut(tenant).expect("tenant exists: driving");
            if t.host.is_none() {
                let transcript = t.transcript.clone();
                let durable = if let Some(log) = &inner.log {
                    match arm_durable(log, t, tenant) {
                        Ok(ctx) => Some(ctx),
                        Err(error) => {
                            // The WAL cannot be re-armed (disk fault):
                            // refuse to run the request non-durably.
                            complete(inner, job, Outcome::DurabilityLost { error }, 0);
                            strike(inner, &mut st, tenant, 1);
                            continue;
                        }
                    }
                } else {
                    None
                };
                t.host = Some(HostHandle::spawn(
                    tenant,
                    &inner.config,
                    &inner.telemetry,
                    transcript,
                    durable,
                ));
            }
            let host = t.host.as_ref().expect("host just ensured");
            host.cell.reset();
            let (reply_tx, outcome_rx) = mpsc::channel();
            let send = host.cmd_tx.send(HostCmd::Run {
                source: job.source.clone(),
                reply: reply_tx,
            });
            if send.is_err() {
                // The host thread died unexpectedly; drop it (a fresh
                // one is spawned for the next job) and shed this one.
                t.host = None;
                complete(inner, job, shed("session host died"), 0);
                continue;
            }
            t.current = Some(Drive {
                job,
                outcome_rx,
                slices: 0,
            });
            st.in_flight += 1;
        }

        let t = st.tenants.get_mut(tenant).expect("tenant exists: driving");
        let Some(drive) = t.current.as_ref() else {
            // Nothing runnable this visit.
            t.driving = false;
            settle(inner, &mut st, tenant);
            return;
        };
        deadline = drive.job.deadline;
        deficit = t.deficit;
        cell = Arc::clone(&t.host.as_ref().expect("driving implies a host").cell);
    }

    // Fuel-feeding loop, outside the scheduler lock: only this worker
    // touches this tenant's drive (guarded by `driving`).
    let budget = inner.config.fuel_budget;
    loop {
        let drawn = cell.drawn();
        let over_budget = drawn >= budget;
        if over_budget || deadline.is_some_and(|d| Instant::now() >= d) {
            cancel_and_finish(inner, tenant, &cell, over_budget);
            return;
        }
        if deficit == 0 {
            // Preempted: leave the evaluation parked mid-expression,
            // requeue the tenant at the back of the ready ring.
            inner.count(&inner.stats.preemptions, "server.preemptions");
            let mut st = inner.lock();
            if let Some(t) = st.tenants.get_mut(tenant) {
                t.deficit = 0;
                t.driving = false;
            }
            settle(inner, &mut st, tenant);
            return;
        }
        let grant = inner
            .config
            .fuel_slice
            .min(deficit)
            .min(budget.saturating_sub(drawn).max(1));
        cell.grant(grant);
        deficit -= grant;
        {
            let mut st = inner.lock();
            if let Some(t) = st.tenants.get_mut(tenant) {
                t.deficit = deficit;
                if let Some(d) = t.current.as_mut() {
                    d.slices += 1;
                }
            }
        }
        // Wait phase: the slice burns down. No further grants until
        // the host parks (slice fully consumed) or finishes.
        let mut stuck = 0u32;
        loop {
            match cell.wait_quiescent(inner.config.leash) {
                Quiescence::Finished => {
                    finish_current(inner, tenant, &cell);
                    return;
                }
                Quiescence::Parked => break,
                Quiescence::TimedOut => {
                    // Neither parking nor finishing: a long un-fueled
                    // phase (parse/inference) or a wedged host.
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        cancel_and_finish(inner, tenant, &cell, false);
                        return;
                    }
                    stuck += 1;
                    if stuck >= STUCK_LEASHES {
                        cancel_and_finish(inner, tenant, &cell, false);
                        return;
                    }
                }
            }
        }
    }
}

/// Cooperative cancellation with the watchdog backstop: cancel the
/// cell, give the host one leash to unwind (it restores the snapshot
/// and reports), and abandon it if it still does not react.
fn cancel_and_finish(inner: &Arc<Inner>, tenant: &str, cell: &Arc<FuelCell>, over_budget: bool) {
    cell.cancel();
    if cell.wait_quiescent(inner.config.leash) == Quiescence::Finished {
        finish_cancelled(inner, tenant, cell, over_budget);
    } else {
        // Second stage: the host ignored cancellation — it is wedged
        // outside fueled evaluation. Abandon the thread, quarantine
        // the tenant; its session is rebuilt from the transcript on
        // next use.
        abandon(inner, tenant, cell);
    }
}

/// The host finished after we cancelled: map its report onto the
/// cancellation reason.
fn finish_cancelled(inner: &Arc<Inner>, tenant: &str, cell: &Arc<FuelCell>, over_budget: bool) {
    take_drive(inner, tenant, cell, |reported| match reported {
        // The usual case: the evaluation hit the cancel at its next
        // tick and the host rolled the session back.
        Some(HostOutcome::Failed {
            cancelled: true, ..
        }) => {
            if over_budget {
                Outcome::BudgetExhausted
            } else {
                Outcome::DeadlineExceeded
            }
        }
        // Benign race: the phrase finished in the same instant the
        // deadline tripped. Honor the host's report — it reflects
        // what actually happened to the session.
        Some(HostOutcome::Done { rendered }) => Outcome::Done { rendered },
        Some(HostOutcome::Static { error }) => Outcome::Static { error },
        Some(HostOutcome::Failed { error, .. }) => Outcome::Failed { error },
        Some(HostOutcome::Panicked) => Outcome::Panicked,
        Some(HostOutcome::DurabilityLost { error }) => Outcome::DurabilityLost { error },
        None => Outcome::Abandoned,
    });
}

/// Normal completion: the host reported while fuel was flowing.
fn finish_current(inner: &Arc<Inner>, tenant: &str, cell: &Arc<FuelCell>) {
    take_drive(inner, tenant, cell, |reported| match reported {
        Some(HostOutcome::Done { rendered }) => Outcome::Done { rendered },
        Some(HostOutcome::Static { error }) => Outcome::Static { error },
        Some(HostOutcome::Failed {
            error,
            cancelled: false,
        }) => Outcome::Failed { error },
        Some(HostOutcome::Failed {
            cancelled: true, ..
        }) => Outcome::DeadlineExceeded,
        Some(HostOutcome::Panicked) => Outcome::Panicked,
        Some(HostOutcome::DurabilityLost { error }) => Outcome::DurabilityLost { error },
        None => Outcome::Abandoned,
    });
}

/// Takes the tenant's in-flight drive, receives the host's report,
/// maps it to an [`Outcome`], and applies the completion.
fn take_drive(
    inner: &Arc<Inner>,
    tenant: &str,
    cell: &Arc<FuelCell>,
    to_outcome: impl FnOnce(Option<HostOutcome>) -> Outcome,
) {
    let fuel = cell.drawn();
    let mut st = inner.lock();
    let Some(t) = st.tenants.get_mut(tenant) else {
        return;
    };
    let Some(drive) = t.current.take() else {
        t.driving = false;
        settle(inner, &mut st, tenant);
        return;
    };
    st.in_flight -= 1;
    let reported = drive.outcome_rx.recv_timeout(inner.config.leash).ok();
    let outcome = to_outcome(reported);
    apply_completion(inner, &mut st, tenant, drive, outcome, fuel);
}

/// Watchdog abandon: detach the wedged host thread, quarantine the
/// tenant, complete the request as [`Outcome::Abandoned`].
fn abandon(inner: &Arc<Inner>, tenant: &str, cell: &Arc<FuelCell>) {
    let fuel = cell.drawn();
    inner.telemetry.counter_add("server.watchdog_abandoned", 1);
    let mut st = inner.lock();
    let Some(t) = st.tenants.get_mut(tenant) else {
        return;
    };
    if let Some(host) = t.host.take() {
        host.abandon();
    }
    let Some(drive) = t.current.take() else {
        t.driving = false;
        settle(inner, &mut st, tenant);
        return;
    };
    st.in_flight -= 1;
    apply_completion(inner, &mut st, tenant, drive, Outcome::Abandoned, fuel);
}

/// Applies one completion under the scheduler lock: commit or strike,
/// quarantine if warranted, deliver the [`Completion`], and settle
/// the tenant's scheduling state.
fn apply_completion(
    inner: &Arc<Inner>,
    st: &mut MutexGuard<'_, SchedState>,
    tenant: &str,
    drive: Drive,
    outcome: Outcome,
    fuel: u64,
) {
    let t = st
        .tenants
        .get_mut(tenant)
        .expect("tenant exists while completing");
    let mut strikes = 0u32;
    let mut quarantine_now = false;
    match &outcome {
        Outcome::Done { .. } => {
            t.transcript.push(drive.job.source.clone());
            t.strikes = 0;
        }
        // Static errors never ran and cannot poison a session; shed
        // requests never ran either.
        Outcome::Static { .. } | Outcome::Shed { .. } => {}
        Outcome::Failed { .. }
        | Outcome::DeadlineExceeded
        | Outcome::BudgetExhausted
        | Outcome::DurabilityLost { .. } => {
            strikes = 1;
        }
        Outcome::Panicked | Outcome::Abandoned => {
            quarantine_now = true;
        }
    }
    inner
        .telemetry
        .histogram_record("server.slices_per_request", drive.slices);
    complete(inner, drive.job, outcome, fuel);
    if quarantine_now {
        quarantine(inner, st, tenant);
    } else if strikes > 0 {
        strike(inner, st, tenant, strikes);
    }
    if let Some(t) = st.tenants.get_mut(tenant) {
        t.driving = false;
    }
    settle(inner, st, tenant);
}

/// Adds failure strikes, quarantining at the configured threshold.
fn strike(inner: &Arc<Inner>, st: &mut MutexGuard<'_, SchedState>, tenant: &str, n: u32) {
    let Some(t) = st.tenants.get_mut(tenant) else {
        return;
    };
    t.strikes += n;
    if t.strikes >= inner.config.quarantine_after {
        quarantine(inner, st, tenant);
    }
}

/// Quarantines a tenant: refuse new admissions for the cooldown and
/// shed everything it still has queued. Other tenants are untouched.
fn quarantine(inner: &Arc<Inner>, st: &mut MutexGuard<'_, SchedState>, tenant: &str) {
    inner.count(&inner.stats.quarantines, "server.quarantined");
    inner
        .telemetry
        .counter_add(&format!("server.tenant.{tenant}.quarantined"), 1);
    let Some(t) = st.tenants.get_mut(tenant) else {
        return;
    };
    t.quarantined_until = Some(Instant::now() + inner.config.quarantine_cooldown);
    t.strikes = 0;
    let shed_jobs: Vec<Job> = t.queue.drain(..).collect();
    st.queued_total -= shed_jobs.len();
    for job in shed_jobs {
        complete(inner, job, shed("tenant quarantined"), 0);
    }
}

fn shed(reason: &str) -> Outcome {
    Outcome::Shed {
        reason: reason.to_string(),
    }
}

/// Delivers the terminal [`Completion`] for one admitted request and
/// bumps the outcome counters. Called exactly once per admitted job.
fn complete(inner: &Arc<Inner>, job: Job, outcome: Outcome, fuel: u64) {
    let latency = job.enqueued.elapsed();
    let (cell, metric) = match &outcome {
        Outcome::Done { .. } => (&inner.stats.done, "server.done"),
        Outcome::Static { .. } => (&inner.stats.static_errors, "server.static_errors"),
        Outcome::Failed { .. } => (&inner.stats.failed, "server.failed"),
        Outcome::DeadlineExceeded => (&inner.stats.deadline_exceeded, "server.deadline_exceeded"),
        Outcome::BudgetExhausted => (&inner.stats.budget_exhausted, "server.budget_exhausted"),
        Outcome::Panicked => (&inner.stats.panics_contained, "server.panics_contained"),
        Outcome::Abandoned => (&inner.stats.abandoned, "server.abandoned"),
        Outcome::DurabilityLost { .. } => (&inner.stats.durability_lost, "server.durability_lost"),
        Outcome::Shed { .. } => (&inner.stats.shed, "server.shed"),
    };
    inner.count(cell, metric);
    inner.count(&inner.stats.completed, "server.completed");
    inner
        .telemetry
        .counter_add(&format!("server.tenant.{}.completed", job.tenant), 1);
    inner.telemetry.histogram_record(
        "server.latency_us",
        u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
    );
    let _ = job.reply.send(Completion {
        id: job.id,
        tenant: job.tenant.clone(),
        outcome,
        latency,
        fuel_drawn: fuel,
    });
}

/// Re-queues a tenant that still has work and wakes whoever needs to
/// know the scheduler's shape changed.
fn settle(inner: &Arc<Inner>, st: &mut MutexGuard<'_, SchedState>, tenant: &str) {
    let mut notify_work = false;
    if let Some(t) = st.tenants.get_mut(tenant) {
        let quarantined = t
            .quarantined_until
            .is_some_and(|until| Instant::now() < until);
        let has_work = t.current.is_some() || !t.queue.is_empty();
        if has_work && !t.in_ready && !t.driving && !quarantined {
            t.in_ready = true;
            st.ready.push_back(tenant.to_string());
            notify_work = true;
        }
    }
    if st.queued_total == 0 && st.in_flight == 0 {
        inner.idle_cv.notify_all();
        if st.shutdown {
            inner.work_cv.notify_all();
        }
    }
    if notify_work {
        inner.work_cv.notify_one();
    }
}
