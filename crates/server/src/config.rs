//! Server tuning: every bound the admission controller and scheduler
//! enforce lives here, explicit and finite.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bsml_bsp::{BspParams, Disk};
use bsml_core::knobs;
use bsml_obs::Telemetry;

/// All the knobs of a [`crate::Server`]. Defaults are deliberately
/// small: a server that sheds early under test load is one whose
/// shedding paths are actually exercised.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// BSP machine parameters for every tenant session.
    pub params: BspParams,
    /// Worker threads driving fuel slices (not hosting sessions —
    /// each tenant session lives on its own dedicated host thread).
    pub workers: usize,
    /// Global admission-queue bound across all tenants
    /// (`BSML_QUEUE_DEPTH`).
    pub queue_depth: usize,
    /// Per-tenant bound on queued requests.
    pub tenant_quota: usize,
    /// Per-request wall-clock deadline, measured from admission;
    /// `None` disables (`BSML_DEADLINE_MS`, `0` to disable).
    pub deadline: Option<Duration>,
    /// Fuel units granted per slice — the preemption granularity.
    pub fuel_slice: u64,
    /// Deficit-round-robin quantum: fuel credited to a tenant each
    /// time the scheduler visits it.
    pub quantum: u64,
    /// Hard fuel budget per request; exceeding it cancels the
    /// evaluation ([`crate::Outcome::BudgetExhausted`]).
    pub fuel_budget: u64,
    /// Watchdog leash: how long a worker waits for a host to either
    /// park or finish before concluding it stopped ticking. Two
    /// consecutive leashes (cancel, then abandon) bound how long a
    /// stuck host can hold a worker.
    pub leash: Duration,
    /// Consecutive failed requests before a tenant is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined tenant is refused admission.
    pub quarantine_cooldown: Duration,
    /// Directory for per-tenant write-ahead logs; `None` (the
    /// default) keeps sessions in-memory only (`BSML_DURABLE_DIR`).
    pub durable_dir: Option<PathBuf>,
    /// Commits between WAL compaction snapshots — recovery replays at
    /// most this many phrases per tenant (`BSML_SNAPSHOT_EVERY`).
    pub snapshot_every: u64,
    /// The storage backend all durable I/O goes through. The default
    /// passthrough disk does real I/O; tests inject fault plans here.
    pub disk: Arc<Disk>,
}

impl ServerConfig {
    /// Defaults for `p`-processor tenant machines.
    #[must_use]
    pub fn new(params: BspParams) -> ServerConfig {
        ServerConfig {
            params,
            workers: 4,
            queue_depth: knobs::DEFAULT_QUEUE_DEPTH,
            tenant_quota: 32,
            deadline: Some(knobs::DEFAULT_DEADLINE),
            fuel_slice: 20_000,
            quantum: 100_000,
            fuel_budget: 5_000_000,
            leash: Duration::from_secs(2),
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_secs(5),
            durable_dir: None,
            snapshot_every: knobs::DEFAULT_SNAPSHOT_EVERY,
            disk: Arc::new(Disk::new()),
        }
    }

    /// Defaults with the `BSML_QUEUE_DEPTH` and `BSML_DEADLINE_MS`
    /// environment knobs applied (malformed values fall back with a
    /// counted `config.bad_env_values` warning).
    #[must_use]
    pub fn from_env(params: BspParams, telemetry: &Telemetry) -> ServerConfig {
        ServerConfig {
            queue_depth: knobs::queue_depth_from_env(telemetry),
            deadline: knobs::deadline_from_env(telemetry),
            durable_dir: knobs::durable_dir_from_env(),
            snapshot_every: knobs::snapshot_every_from_env(telemetry),
            ..ServerConfig::new(params)
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the global queue depth (clamped to at least 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> ServerConfig {
        self.queue_depth = depth.max(1);
        self
    }

    /// Overrides the per-tenant quota (clamped to at least 1).
    #[must_use]
    pub fn with_tenant_quota(mut self, quota: usize) -> ServerConfig {
        self.tenant_quota = quota.max(1);
        self
    }

    /// Overrides (or with `None`, disables) the per-request deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> ServerConfig {
        self.deadline = deadline;
        self
    }

    /// Overrides the fuel slice and DRR quantum together, keeping the
    /// invariant `quantum >= slice` that makes a scheduler visit
    /// always worth at least one grant.
    #[must_use]
    pub fn with_fuel_slice(mut self, slice: u64, quantum: u64) -> ServerConfig {
        self.fuel_slice = slice.max(1);
        self.quantum = quantum.max(self.fuel_slice);
        self
    }

    /// Overrides the per-request fuel budget.
    #[must_use]
    pub fn with_fuel_budget(mut self, budget: u64) -> ServerConfig {
        self.fuel_budget = budget.max(1);
        self
    }

    /// Overrides the watchdog leash.
    #[must_use]
    pub fn with_leash(mut self, leash: Duration) -> ServerConfig {
        self.leash = leash;
        self
    }

    /// Overrides the quarantine policy.
    #[must_use]
    pub fn with_quarantine(mut self, after: u32, cooldown: Duration) -> ServerConfig {
        self.quarantine_after = after.max(1);
        self.quarantine_cooldown = cooldown;
        self
    }

    /// Arms durable sessions: per-tenant WALs under `dir`.
    #[must_use]
    pub fn with_durable_dir(mut self, dir: impl Into<PathBuf>) -> ServerConfig {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Overrides the WAL compaction interval (clamped to at least 1).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: u64) -> ServerConfig {
        self.snapshot_every = every.max(1);
        self
    }

    /// Injects a storage backend (typically one armed with a
    /// [`bsml_bsp::StoragePlan`] of faults) under all durable I/O.
    #[must_use]
    pub fn with_storage(mut self, disk: Arc<Disk>) -> ServerConfig {
        self.disk = disk;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp() {
        let c = ServerConfig::new(BspParams::new(2, 1, 10))
            .with_workers(0)
            .with_queue_depth(0)
            .with_tenant_quota(0)
            .with_fuel_slice(0, 0)
            .with_fuel_budget(0)
            .with_quarantine(0, Duration::from_secs(1))
            .with_snapshot_every(0)
            .with_durable_dir("/tmp/bsml-durable");
        assert_eq!(c.workers, 1);
        assert_eq!(c.queue_depth, 1);
        assert_eq!(c.tenant_quota, 1);
        assert_eq!(c.fuel_slice, 1);
        assert!(c.quantum >= c.fuel_slice);
        assert_eq!(c.fuel_budget, 1);
        assert_eq!(c.quarantine_after, 1);
        assert_eq!(c.snapshot_every, 1);
        assert_eq!(c.durable_dir, Some(PathBuf::from("/tmp/bsml-durable")));
    }
}
