//! Request/response vocabulary of the session server.

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Identifies one admitted request, unique per server.
pub type RequestId = u64;

/// Why an offered request was *not* admitted. Shedding is always
/// typed — the server never buffers beyond its configured bounds, so
/// a caller can tell "back off" ([`Rejected::QueueFull`],
/// [`Rejected::TenantQuota`]) from "this tenant is sick"
/// ([`Rejected::Quarantined`]) from "stop entirely"
/// ([`Rejected::ShuttingDown`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The global admission queue is at its configured depth.
    QueueFull,
    /// This tenant already has its full quota of queued requests.
    TenantQuota,
    /// The tenant is serving a quarantine cooldown after poisoning
    /// its session (panic, watchdog abandon, or repeated failures).
    Quarantined,
    /// The server is shutting down and admits nothing new.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull => f.write_str("admission queue full"),
            Rejected::TenantQuota => f.write_str("tenant queue quota exhausted"),
            Rejected::Quarantined => f.write_str("tenant is quarantined"),
            Rejected::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// How an *admitted* request ended. Every admitted request produces
/// exactly one [`Completion`]; nothing is silently dropped.
///
/// Requests are transactional: on anything but [`Outcome::Done`] the
/// tenant's session is rolled back to its pre-request snapshot, so a
/// failed or shed request leaves no trace in the session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every phrase parsed, typechecked, and evaluated; the session
    /// state advanced and the request joined the replay transcript.
    Done {
        /// Rendered `name : scheme = value` summaries, one per phrase.
        rendered: Vec<String>,
    },
    /// A parse or type error — nothing ran, session unchanged.
    Static {
        /// The rendered static error.
        error: String,
    },
    /// A phrase failed dynamically (division by zero, dynamic
    /// nesting, …); the whole request was rolled back.
    Failed {
        /// The rendered evaluation error.
        error: String,
    },
    /// The per-request wall-clock deadline passed; the evaluation was
    /// cancelled cooperatively and rolled back.
    DeadlineExceeded,
    /// The per-request fuel budget was exhausted; cancelled and
    /// rolled back (the phrase likely diverges).
    BudgetExhausted,
    /// The phrase panicked its host thread; the panic was contained,
    /// the session restored from its pre-request snapshot, and the
    /// tenant struck towards quarantine.
    Panicked,
    /// The watchdog abandoned a host that stopped drawing fuel even
    /// after cancellation; the tenant is quarantined and its session
    /// will be rebuilt from the replay transcript on next use.
    Abandoned,
    /// The phrase evaluated, but its write-ahead-log append failed
    /// (disk fault), so the result was rolled back rather than
    /// reported as durable when it is not. The session is unchanged;
    /// retry once the disk recovers.
    DurabilityLost {
        /// The rendered storage error.
        error: String,
    },
    /// The request was admitted but shed before (or instead of)
    /// running — its tenant got quarantined behind it, or the server
    /// drained on shutdown.
    Shed {
        /// Why it was shed.
        reason: String,
    },
}

impl Outcome {
    /// `true` only for [`Outcome::Done`].
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Done { .. })
    }
}

/// The terminal record of one admitted request.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The request this completes.
    pub id: RequestId,
    /// The tenant it ran for.
    pub tenant: String,
    /// How it ended.
    pub outcome: Outcome,
    /// Admission-to-completion wall time.
    pub latency: Duration,
    /// Fuel actually drawn by the evaluation (0 if it never ran).
    pub fuel_drawn: u64,
}

/// A claim ticket for an admitted request: redeem with
/// [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// The admitted request's id.
    pub id: RequestId,
    pub(crate) rx: mpsc::Receiver<Completion>,
}

impl Ticket {
    /// Blocks until the request completes. Infallible by
    /// construction: the server delivers exactly one [`Completion`]
    /// per admitted request, even across panics and shutdown.
    #[must_use]
    pub fn wait(self) -> Completion {
        self.rx
            .recv()
            .expect("the server completes every admitted request")
    }

    /// Non-blocking poll; `None` while the request is still in
    /// flight.
    #[must_use]
    pub fn try_wait(&self) -> Option<Completion> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_render() {
        assert_eq!(Rejected::QueueFull.to_string(), "admission queue full");
        assert!(Rejected::Quarantined.to_string().contains("quarantined"));
    }

    #[test]
    fn only_done_is_success() {
        assert!(Outcome::Done { rendered: vec![] }.is_success());
        for o in [
            Outcome::Static {
                error: String::new(),
            },
            Outcome::Failed {
                error: String::new(),
            },
            Outcome::DeadlineExceeded,
            Outcome::BudgetExhausted,
            Outcome::Panicked,
            Outcome::Abandoned,
            Outcome::DurabilityLost {
                error: String::new(),
            },
            Outcome::Shed {
                reason: String::new(),
            },
        ] {
            assert!(!o.is_success());
        }
    }
}
