//! Property tests for capture-avoiding substitution — the engine of
//! the small-step semantics.

use bsml_ast::build as b;
use bsml_ast::{Expr, Ident};
use proptest::prelude::*;

fn name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("z".to_string()),
        Just("w".to_string()),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(b::int),
        any::<bool>().prop_map(b::bool_),
        Just(b::unit()),
        Just(b::nil()),
        name().prop_map(b::var),
    ];
    leaf.prop_recursive(4, 40, 3, |inner| {
        prop_oneof![
            (name(), inner.clone()).prop_map(|(x, e)| b::fun_(x, e)),
            (inner.clone(), inner.clone()).prop_map(|(f, a)| b::app(f, a)),
            (name(), inner.clone(), inner.clone()).prop_map(|(x, e1, e2)| b::let_(x, e1, e2)),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| b::pair(a, c)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| b::if_(c, t, e)),
            (inner.clone(), inner.clone()).prop_map(|(h, t)| b::cons(h, t)),
            inner.clone().prop_map(b::inl),
            (inner.clone(), name(), inner.clone(), name(), inner.clone())
                .prop_map(|(s, l, lb, r, rb)| b::case(s, l, lb, r, rb)),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(s, nb, cb)| b::match_list(s, nb, "hd", "tl", cb)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn substitution_eliminates_the_variable(
        e in expr_strategy(),
        v in expr_strategy(),
    ) {
        // After e[x ← v] with v closed-in-x, x is no longer free.
        prop_assume!(!v.free_vars().contains(&Ident::new("x")));
        let result = e.substitute(&Ident::new("x"), &v);
        prop_assert!(
            !result.free_vars().contains(&Ident::new("x")),
            "x survived in {result}"
        );
    }

    #[test]
    fn free_vars_shrink_correctly(e in expr_strategy(), v in expr_strategy()) {
        // F(e[x ← v]) ⊆ (F(e) \ {x}) ∪ F(v).
        let x = Ident::new("x");
        let result = e.substitute(&x, &v);
        let mut allowed: Vec<Ident> =
            e.free_vars().into_iter().filter(|y| *y != x).collect();
        allowed.extend(v.free_vars());
        for fv in result.free_vars() {
            // Freshly generated names (capture avoidance) contain '$'
            // and are never free — they are always bound on creation.
            prop_assert!(
                allowed.contains(&fv),
                "{fv} appeared from nowhere in {result}"
            );
        }
    }

    #[test]
    fn substituting_an_absent_variable_is_identity(
        e in expr_strategy(),
        v in expr_strategy(),
    ) {
        prop_assume!(!e.free_vars().contains(&Ident::new("q")));
        let result = e.substitute(&Ident::new("q"), &v);
        prop_assert_eq!(result, e);
    }

    #[test]
    fn substitution_commutes_for_disjoint_closed_values(
        e in expr_strategy(),
        n1 in -100i64..100,
        n2 in -100i64..100,
    ) {
        // e[x←n1][y←n2] == e[y←n2][x←n1] for closed replacements.
        let x = Ident::new("x");
        let y = Ident::new("y");
        let a = e.substitute(&x, &b::int(n1)).substitute(&y, &b::int(n2));
        let bb = e.substitute(&y, &b::int(n2)).substitute(&x, &b::int(n1));
        prop_assert_eq!(a, bb);
    }

    #[test]
    fn size_is_bounded(e in expr_strategy(), v in expr_strategy()) {
        // |e[x←v]| ≤ |e| + occurrences · |v| (sanity bound with the
        // worst case of every leaf being x).
        let result = e.substitute(&Ident::new("x"), &v);
        prop_assert!(result.size() <= e.size() * v.size().max(1) + v.size());
    }
}
