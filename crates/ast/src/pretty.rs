//! Pretty-printing of mini-BSML expressions back to concrete syntax.
//!
//! The printer emits text that the `bsml-syntax` parser accepts again
//! (round-tripping is property-tested there), with minimal
//! parenthesization driven by precedence levels.
//!
//! Parallel vector literals `⟨…⟩` have no source syntax; they are
//! printed with angle brackets purely for diagnostics.

use std::fmt;

use crate::expr::{Expr, ExprKind};
use crate::op::Op;

/// Precedence levels, loosest binding first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    /// `fun`, `let`, `if`, `case`, `match` bodies.
    Lowest,
    /// `:=` (right associative)
    Assign,
    /// `||`
    Or,
    /// `&&`
    And,
    /// `=`, `<`, `<=`, `>`, `>=`
    Compare,
    /// `::` (right associative)
    Cons,
    /// `+`, `-`
    Additive,
    /// `*`, `/`, `mod`
    Multiplicative,
    /// Function application (left associative)
    App,
    /// Atoms: literals, variables, parenthesized expressions.
    Atom,
}

fn op_prec(op: Op) -> Option<(Prec, &'static str)> {
    let sym = op.infix_symbol()?;
    let prec = match op {
        Op::Assign => Prec::Assign,
        Op::Or => Prec::Or,
        Op::And => Prec::And,
        Op::Eq | Op::Lt | Op::Le | Op::Gt | Op::Ge => Prec::Compare,
        Op::Add | Op::Sub => Prec::Additive,
        Op::Mul | Op::Div | Op::Mod => Prec::Multiplicative,
        _ => return None,
    };
    Some((prec, sym))
}

struct Printer<'a> {
    expr: &'a Expr,
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Printer { expr: self }.fmt(f)
    }
}

impl fmt::Display for Printer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_expr(f, self.expr, Prec::Lowest)
    }
}

/// Renders `e` to a string (same as `e.to_string()`, provided for
/// discoverability).
#[must_use]
pub fn to_source(e: &Expr) -> String {
    e.to_string()
}

fn print_expr(f: &mut fmt::Formatter<'_>, e: &Expr, min: Prec) -> fmt::Result {
    use ExprKind::*;
    match &e.kind {
        Var(x) => write!(f, "{x}"),
        // A negative literal in operand position (`f -1`) would lex as
        // a binary minus; parenthesize it.
        Const(crate::expr::Const::Int(n)) if *n < 0 && min > Prec::Multiplicative => {
            write!(f, "({n})")
        }
        Const(c) => write!(f, "{c}"),
        Op(op) => write!(f, "{op}"),
        Nil => f.write_str("[]"),
        Fun(x, body) => paren_if(f, min > Prec::Lowest, |f| {
            write!(f, "fun {x} -> ")?;
            print_expr(f, body, Prec::Lowest)
        }),
        Let(x, bound, body) => paren_if(f, min > Prec::Lowest, |f| {
            write!(f, "let {x} = ")?;
            print_expr(f, bound, Prec::Lowest)?;
            f.write_str(" in ")?;
            print_expr(f, body, Prec::Lowest)
        }),
        If(c, t, el) => paren_if(f, min > Prec::Lowest, |f| {
            f.write_str("if ")?;
            print_expr(f, c, Prec::Lowest)?;
            f.write_str(" then ")?;
            print_expr(f, t, Prec::Lowest)?;
            f.write_str(" else ")?;
            print_expr(f, el, Prec::Lowest)
        }),
        IfAt(v, n, t, el) => paren_if(f, min > Prec::Lowest, |f| {
            f.write_str("if ")?;
            // `at` binds tighter than the surrounding form; print the
            // vector operand at App level so `if v at n` re-parses.
            print_expr(f, v, Prec::App)?;
            f.write_str(" at ")?;
            print_expr(f, n, Prec::App)?;
            f.write_str(" then ")?;
            print_expr(f, t, Prec::Lowest)?;
            f.write_str(" else ")?;
            print_expr(f, el, Prec::Lowest)
        }),
        Pair(a, b) => {
            f.write_str("(")?;
            print_expr(f, a, Prec::Lowest)?;
            f.write_str(", ")?;
            print_expr(f, b, Prec::Lowest)?;
            f.write_str(")")
        }
        App(fun, arg) => {
            // Dereference prints prefix: `!r` (atom level).
            if matches!(fun.kind, ExprKind::Op(crate::op::Op::Deref)) {
                f.write_str("!")?;
                return print_expr(f, arg, Prec::Atom);
            }
            // Detect the infix sugar `(+) (a, b)` and print `a + b`.
            if let (ExprKind::Op(op), ExprKind::Pair(a, b)) = (&fun.kind, &arg.kind) {
                if let Some((prec, sym)) = op_prec(*op) {
                    return paren_if(f, min > prec, |f| {
                        print_expr(f, a, next(prec))?;
                        write!(f, " {sym} ")?;
                        print_expr(f, b, next(prec))
                    });
                }
            }
            paren_if(f, min > Prec::App, |f| {
                print_expr(f, fun, Prec::App)?;
                f.write_str(" ")?;
                print_expr(f, arg, Prec::Atom)
            })
        }
        Cons(h, t) => {
            // A complete spine ending in [] prints as a literal.
            let mut items = vec![&**h];
            let mut cur = &**t;
            loop {
                match &cur.kind {
                    Cons(h2, t2) => {
                        items.push(h2);
                        cur = t2;
                    }
                    Nil => {
                        f.write_str("[")?;
                        for (i, item) in items.iter().enumerate() {
                            if i > 0 {
                                f.write_str("; ")?;
                            }
                            // Items print above the `;`-sequencing
                            // level, so forms whose bodies would
                            // swallow the separator (fun/let/if/
                            // case/match) get parenthesized.
                            print_expr(f, item, Prec::Assign)?;
                        }
                        return f.write_str("]");
                    }
                    _ => break,
                }
            }
            paren_if(f, min > Prec::Cons, |f| {
                print_expr(f, h, next(Prec::Cons))?;
                f.write_str(" :: ")?;
                // Right-associative: the tail may print at Cons level.
                print_expr(f, t, Prec::Cons)
            })
        }
        Vector(es) => {
            f.write_str("<|")?;
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                print_expr(f, e, Prec::Lowest)?;
            }
            f.write_str("|>")
        }
        // `inl e` in function position of an application would absorb
        // the following atoms, so parenthesize at App and tighter.
        Inl(inner) => paren_if(f, min >= Prec::App, |f| {
            f.write_str("inl ")?;
            print_expr(f, inner, Prec::Atom)
        }),
        Inr(inner) => paren_if(f, min >= Prec::App, |f| {
            f.write_str("inr ")?;
            print_expr(f, inner, Prec::Atom)
        }),
        Case {
            scrutinee,
            left_var,
            left_body,
            right_var,
            right_body,
        } => paren_if(f, min > Prec::Lowest, |f| {
            f.write_str("case ")?;
            print_expr(f, scrutinee, Prec::Lowest)?;
            write!(f, " of inl {left_var} -> ")?;
            // Branch bodies bind up to `|`, so parenthesize lows.
            print_expr(f, left_body, Prec::Or)?;
            write!(f, " | inr {right_var} -> ")?;
            print_expr(f, right_body, Prec::Lowest)
        }),
        MatchList {
            scrutinee,
            nil_body,
            head_var,
            tail_var,
            cons_body,
        } => paren_if(f, min > Prec::Lowest, |f| {
            f.write_str("match ")?;
            print_expr(f, scrutinee, Prec::Lowest)?;
            f.write_str(" with [] -> ")?;
            print_expr(f, nil_body, Prec::Or)?;
            write!(f, " | {head_var} :: {tail_var} -> ")?;
            print_expr(f, cons_body, Prec::Lowest)
        }),
    }
}

fn next(p: Prec) -> Prec {
    match p {
        Prec::Lowest => Prec::Assign,
        Prec::Assign => Prec::Or,
        Prec::Or => Prec::And,
        Prec::And => Prec::Compare,
        Prec::Compare => Prec::Cons,
        Prec::Cons => Prec::Additive,
        Prec::Additive => Prec::Multiplicative,
        Prec::Multiplicative => Prec::App,
        Prec::App | Prec::Atom => Prec::Atom,
    }
}

fn paren_if(
    f: &mut fmt::Formatter<'_>,
    needed: bool,
    inner: impl FnOnce(&mut fmt::Formatter<'_>) -> fmt::Result,
) -> fmt::Result {
    if needed {
        f.write_str("(")?;
        inner(f)?;
        f.write_str(")")
    } else {
        inner(f)
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;
    use crate::op::Op;

    #[test]
    fn atoms() {
        assert_eq!(int(5).to_string(), "5");
        assert_eq!(bool_(false).to_string(), "false");
        assert_eq!(unit().to_string(), "()");
        assert_eq!(var("x").to_string(), "x");
        assert_eq!(op(Op::Mkpar).to_string(), "mkpar");
        assert_eq!(op(Op::Add).to_string(), "(+)");
        assert_eq!(nil().to_string(), "[]");
    }

    #[test]
    fn infix_sugar() {
        assert_eq!(add(int(1), int(2)).to_string(), "1 + 2");
        assert_eq!(add(int(1), mul(int(2), int(3))).to_string(), "1 + 2 * 3");
        assert_eq!(mul(add(int(1), int(2)), int(3)).to_string(), "(1 + 2) * 3");
        // Non-associative printing keeps sides parenthesized when the
        // operand has the same precedence.
        assert_eq!(sub(sub(int(3), int(2)), int(1)).to_string(), "(3 - 2) - 1");
    }

    #[test]
    fn lambdas_and_lets() {
        assert_eq!(fun_("x", var("x")).to_string(), "fun x -> x");
        assert_eq!(
            let_("x", int(1), add(var("x"), int(2))).to_string(),
            "let x = 1 in x + 2"
        );
        // Lambda in application position needs parens.
        assert_eq!(
            app(fun_("x", var("x")), int(1)).to_string(),
            "(fun x -> x) 1"
        );
    }

    #[test]
    fn applications_left_associate() {
        assert_eq!(apps(var("f"), [var("x"), var("y")]).to_string(), "f x y");
        assert_eq!(
            app(var("f"), app(var("g"), var("x"))).to_string(),
            "f (g x)"
        );
    }

    #[test]
    fn conditionals() {
        assert_eq!(
            if_(bool_(true), int(1), int(2)).to_string(),
            "if true then 1 else 2"
        );
        assert_eq!(
            ifat(var("v"), int(0), int(1), int(2)).to_string(),
            "if v at 0 then 1 else 2"
        );
    }

    #[test]
    fn bsp_forms() {
        assert_eq!(
            mkpar(fun_("pid", var("pid"))).to_string(),
            "mkpar (fun pid -> pid)"
        );
        assert_eq!(apply(var("f"), var("v")).to_string(), "apply (f, v)");
        assert_eq!(vector(vec![int(1), int(2)]).to_string(), "<|1, 2|>");
    }

    #[test]
    fn lists_and_sums() {
        // Complete spines print as literals; open tails print infix.
        assert_eq!(list(vec![int(1), int(2)]).to_string(), "[1; 2]");
        assert_eq!(cons(cons(int(1), nil()), nil()).to_string(), "[[1]]");
        assert_eq!(cons(int(1), var("xs")).to_string(), "1 :: xs");
        assert_eq!(
            cons(add(int(1), int(2)), var("t")).to_string(),
            "1 + 2 :: t"
        );
        assert_eq!(inl(int(1)).to_string(), "inl 1");
        assert_eq!(
            case(var("s"), "l", var("l"), "r", var("r")).to_string(),
            "case s of inl l -> l | inr r -> r"
        );
        assert_eq!(
            match_list(var("xs"), int(0), "h", "t", var("h")).to_string(),
            "match xs with [] -> 0 | h :: t -> h"
        );
    }

    #[test]
    fn pairs_always_parenthesized() {
        assert_eq!(pair(int(1), int(2)).to_string(), "(1, 2)");
        assert_eq!(app(var("f"), pair(int(1), int(2))).to_string(), "f (1, 2)");
    }
}
