//! Value classification — the paper's **Figure 4**.
//!
//! The small-step semantics works with *expressions in normal form*.
//! Figure 4 distinguishes:
//!
//! * **local values** `v` — functional values, constants, primitives
//!   and pairs of local values (plus, for the §6 extensions,
//!   injections and lists of local values);
//! * **global values** `v_g` — the same closed under p-wide parallel
//!   vectors of local values: `⟨v, …, v⟩` is a global value, and
//!   pairs/functions over global values are global.
//!
//! An expression that is a value in neither sense is not a value.

use crate::expr::{Expr, ExprKind};

/// The classification of an expression according to Figure 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueClass {
    /// A local value `v` (contains no parallel vector).
    Local,
    /// A global value `v_g` (contains a parallel vector somewhere).
    Global,
    /// Not a value at all (still reducible, or stuck).
    NotAValue,
}

impl ValueClass {
    /// `true` for [`ValueClass::Local`] or [`ValueClass::Global`].
    #[must_use]
    pub fn is_value(self) -> bool {
        !matches!(self, ValueClass::NotAValue)
    }
}

/// Classifies `e` as a local value, a global value, or a non-value.
///
/// # Example
///
/// ```
/// use bsml_ast::build::*;
/// use bsml_ast::{classify_value, ValueClass};
///
/// assert_eq!(classify_value(&int(1)), ValueClass::Local);
/// assert_eq!(classify_value(&vector(vec![int(1)])), ValueClass::Global);
/// assert_eq!(classify_value(&add(int(1), int(2))), ValueClass::NotAValue);
/// ```
#[must_use]
pub fn classify_value(e: &Expr) -> ValueClass {
    use ExprKind::*;
    match &e.kind {
        // A lambda is a value. It is *global* when its body mentions a
        // parallel vector literal (a closure over parallel data),
        // otherwise local. Note that a body merely mentioning `mkpar`
        // is still a local value — the vector does not exist yet.
        Fun(_, body) => {
            let mut has_vector = false;
            body.walk(&mut |sub| {
                if matches!(sub.kind, Vector(_)) {
                    has_vector = true;
                }
            });
            if has_vector {
                ValueClass::Global
            } else {
                ValueClass::Local
            }
        }
        Const(_) | Op(_) | Nil => ValueClass::Local,
        Pair(a, b) | Cons(a, b) => join(classify_value(a), classify_value(b)),
        Inl(inner) | Inr(inner) => classify_value(inner),
        Vector(es) => {
            // ⟨v₀, …, v_{p−1}⟩ is a global value when every component
            // is a *local* value: nesting would require a component
            // that is itself global, which Figure 4 does not admit.
            if es.iter().all(|c| classify_value(c) == ValueClass::Local) {
                ValueClass::Global
            } else {
                ValueClass::NotAValue
            }
        }
        // `nc ()` is a value (the paper's "no communication"
        // constructor applied to unit — the δ-rules of Figure 1 treat
        // it as one).
        App(f_expr, arg) => {
            if matches!(f_expr.kind, Op(crate::op::Op::Nc))
                && matches!(arg.kind, Const(crate::expr::Const::Unit))
            {
                ValueClass::Local
            } else {
                ValueClass::NotAValue
            }
        }
        Var(_) | Let(..) | If(..) | IfAt(..) | Case { .. } | MatchList { .. } => {
            ValueClass::NotAValue
        }
    }
}

fn join(a: ValueClass, b: ValueClass) -> ValueClass {
    use ValueClass::*;
    match (a, b) {
        (NotAValue, _) | (_, NotAValue) => NotAValue,
        (Global, _) | (_, Global) => Global,
        (Local, Local) => Local,
    }
}

/// `true` if `e` is a value (local or global).
#[must_use]
pub fn is_value(e: &Expr) -> bool {
    classify_value(e).is_value()
}

/// `true` if `e` is a *local* value `v` in the sense of Figure 4.
#[must_use]
pub fn is_local_value(e: &Expr) -> bool {
    classify_value(e) == ValueClass::Local
}

/// `true` if `e` is a *global* value `v_g` in the sense of Figure 4.
///
/// Every local value is also a global value in the paper's grammar
/// (the global grammar subsumes the local one), so this returns `true`
/// for any value. Use [`classify_value`] to distinguish the strict
/// classes.
#[must_use]
pub fn is_global_value(e: &Expr) -> bool {
    is_value(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::op::Op;

    #[test]
    fn constants_are_local() {
        assert_eq!(classify_value(&int(3)), ValueClass::Local);
        assert_eq!(classify_value(&bool_(true)), ValueClass::Local);
        assert_eq!(classify_value(&unit()), ValueClass::Local);
        assert_eq!(classify_value(&op(Op::Add)), ValueClass::Local);
    }

    #[test]
    fn lambdas_are_values() {
        assert_eq!(classify_value(&fun_("x", var("x"))), ValueClass::Local);
        // A closure body containing a vector literal is global.
        let closing_over_vector = fun_("x", vector(vec![int(1)]));
        assert_eq!(classify_value(&closing_over_vector), ValueClass::Global);
        // Merely mentioning mkpar keeps it local: no vector exists yet.
        let mentions_mkpar = fun_("x", mkpar(fun_("i", var("i"))));
        assert_eq!(classify_value(&mentions_mkpar), ValueClass::Local);
    }

    #[test]
    fn pairs_propagate() {
        assert_eq!(classify_value(&pair(int(1), int(2))), ValueClass::Local);
        assert_eq!(
            classify_value(&pair(int(1), vector(vec![int(2)]))),
            ValueClass::Global
        );
        assert_eq!(
            classify_value(&pair(int(1), add(int(1), int(2)))),
            ValueClass::NotAValue
        );
    }

    #[test]
    fn vectors_of_local_values_are_global() {
        assert_eq!(
            classify_value(&vector(vec![int(1), int(2)])),
            ValueClass::Global
        );
        assert_eq!(
            classify_value(&vector(vec![fun_("x", var("x"))])),
            ValueClass::Global
        );
    }

    #[test]
    fn nested_vectors_are_not_values() {
        let nested = vector(vec![vector(vec![int(1)])]);
        assert_eq!(classify_value(&nested), ValueClass::NotAValue);
    }

    #[test]
    fn vectors_of_redexes_are_not_values() {
        let v = vector(vec![add(int(1), int(2))]);
        assert_eq!(classify_value(&v), ValueClass::NotAValue);
    }

    #[test]
    fn redexes_are_not_values() {
        assert!(!is_value(&app(fun_("x", var("x")), int(1))));
        assert!(!is_value(&var("x")));
        assert!(!is_value(&let_("x", int(1), var("x"))));
        assert!(!is_value(&if_(bool_(true), int(1), int(2))));
    }

    #[test]
    fn extension_values() {
        assert_eq!(classify_value(&nil()), ValueClass::Local);
        assert_eq!(
            classify_value(&list(vec![int(1), int(2)])),
            ValueClass::Local
        );
        assert_eq!(classify_value(&inl(int(1))), ValueClass::Local);
        assert_eq!(
            classify_value(&inr(vector(vec![int(1)]))),
            ValueClass::Global
        );
        assert_eq!(
            classify_value(&cons(var("x"), nil())),
            ValueClass::NotAValue
        );
    }

    #[test]
    fn is_global_value_subsumes_local() {
        assert!(is_global_value(&int(1)));
        assert!(is_local_value(&int(1)));
        assert!(is_global_value(&vector(vec![int(1)])));
        assert!(!is_local_value(&vector(vec![int(1)])));
    }
}
