//! Abstract syntax for **mini-BSML**, the core calculus of
//! *A Polymorphic Type System for Bulk Synchronous Parallel ML*
//! (Gava & Loulergue, 2003).
//!
//! The crate provides:
//!
//! * [`Expr`] / [`ExprKind`] — the expression grammar of the paper's
//!   Figure 3, extended with the paper's §6 "future work" constructs
//!   (sum types, lists) and with runtime-only parallel vectors
//!   `⟨e₀, …, e_{p−1}⟩` (the *extended expressions* of §3),
//! * [`Const`] and [`Op`] — constants and primitive operators,
//!   including the four BSP primitives `mkpar`, `apply`, `put` and the
//!   `nc`/`isnc` pair standing in for OCaml's `option`,
//! * value classification ([`value`]) implementing Figure 4
//!   (local vs. global values),
//! * a pretty-printer ([`pretty`]) and a builder DSL ([`build`]) used
//!   by the standard library and the test suites.
//!
//! # Example
//!
//! ```
//! use bsml_ast::build::*;
//!
//! // mkpar (fun pid -> pid)
//! let e = app(op(bsml_ast::Op::Mkpar), fun_("pid", var("pid")));
//! assert_eq!(e.to_string(), "mkpar (fun pid -> pid)");
//! ```

pub mod build;
pub mod expr;
pub mod op;
pub mod pretty;
pub mod span;
pub mod value;

pub use expr::{Const, Expr, ExprKind, Ident};
pub use op::Op;
pub use span::Span;
pub use value::{classify_value, is_global_value, is_local_value, is_value, ValueClass};
