//! A small builder DSL for constructing mini-BSML ASTs in Rust.
//!
//! All nodes built here carry [`crate::Span::DUMMY`]. The standard library
//! ([`bsml-std`](https://docs.rs/bsml-std)) and the test suites use
//! these helpers to write programs without going through the parser.
//!
//! # Example
//!
//! ```
//! use bsml_ast::build::*;
//! use bsml_ast::Op;
//!
//! // let id = fun x -> x in id 1
//! let prog = let_("id", fun_("x", var("x")), app(var("id"), int(1)));
//! assert!(prog.is_closed());
//!
//! // mkpar (fun pid -> pid * 2)
//! let vec = mkpar(fun_("pid", mul(var("pid"), int(2))));
//! assert!(vec.mentions_parallelism());
//! ```

use crate::expr::{Const, Expr, ExprKind, Ident};
use crate::op::Op;

/// A variable occurrence.
#[must_use]
pub fn var(name: impl AsRef<str>) -> Expr {
    Expr::synth(ExprKind::Var(Ident::new(name)))
}

/// An integer literal.
#[must_use]
pub fn int(n: i64) -> Expr {
    Expr::synth(ExprKind::Const(Const::Int(n)))
}

/// A boolean literal.
#[must_use]
pub fn bool_(b: bool) -> Expr {
    Expr::synth(ExprKind::Const(Const::Bool(b)))
}

/// The unit literal `()`.
#[must_use]
pub fn unit() -> Expr {
    Expr::synth(ExprKind::Const(Const::Unit))
}

/// A primitive operator in expression position.
#[must_use]
pub fn op(o: Op) -> Expr {
    Expr::synth(ExprKind::Op(o))
}

/// Function abstraction `fun x -> body`.
#[must_use]
pub fn fun_(x: impl AsRef<str>, body: Expr) -> Expr {
    Expr::synth(ExprKind::Fun(Ident::new(x), Box::new(body)))
}

/// Curried multi-argument abstraction `fun x₁ … xₙ -> body`.
///
/// # Panics
///
/// Panics if `xs` is empty.
#[must_use]
pub fn funs(xs: &[&str], body: Expr) -> Expr {
    assert!(!xs.is_empty(), "funs requires at least one parameter");
    xs.iter().rev().fold(body, |acc, x| fun_(*x, acc))
}

/// Application `f a`.
#[must_use]
pub fn app(f: Expr, a: Expr) -> Expr {
    Expr::synth(ExprKind::App(Box::new(f), Box::new(a)))
}

/// Left-nested application `f a₁ a₂ …` .
#[must_use]
pub fn apps(f: Expr, args: impl IntoIterator<Item = Expr>) -> Expr {
    args.into_iter().fold(f, app)
}

/// Local binding `let x = bound in body`.
#[must_use]
pub fn let_(x: impl AsRef<str>, bound: Expr, body: Expr) -> Expr {
    Expr::synth(ExprKind::Let(
        Ident::new(x),
        Box::new(bound),
        Box::new(body),
    ))
}

/// Pair `(a, b)`.
#[must_use]
pub fn pair(a: Expr, b: Expr) -> Expr {
    Expr::synth(ExprKind::Pair(Box::new(a), Box::new(b)))
}

/// Conditional `if c then t else e`.
#[must_use]
pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
    Expr::synth(ExprKind::If(Box::new(c), Box::new(t), Box::new(e)))
}

/// Global synchronous conditional `if v at n then t else e`.
#[must_use]
pub fn ifat(v: Expr, n: Expr, t: Expr, e: Expr) -> Expr {
    Expr::synth(ExprKind::IfAt(
        Box::new(v),
        Box::new(n),
        Box::new(t),
        Box::new(e),
    ))
}

/// A runtime parallel vector literal `⟨e₀, …⟩`.
#[must_use]
pub fn vector(es: Vec<Expr>) -> Expr {
    Expr::synth(ExprKind::Vector(es))
}

/// Left injection `inl e`.
#[must_use]
pub fn inl(e: Expr) -> Expr {
    Expr::synth(ExprKind::Inl(Box::new(e)))
}

/// Right injection `inr e`.
#[must_use]
pub fn inr(e: Expr) -> Expr {
    Expr::synth(ExprKind::Inr(Box::new(e)))
}

/// Sum elimination `case s of inl l -> lb | inr r -> rb`.
#[must_use]
pub fn case(s: Expr, l: impl AsRef<str>, lb: Expr, r: impl AsRef<str>, rb: Expr) -> Expr {
    Expr::synth(ExprKind::Case {
        scrutinee: Box::new(s),
        left_var: Ident::new(l),
        left_body: Box::new(lb),
        right_var: Ident::new(r),
        right_body: Box::new(rb),
    })
}

/// The empty list `[]`.
#[must_use]
pub fn nil() -> Expr {
    Expr::synth(ExprKind::Nil)
}

/// List cell `h :: t`.
#[must_use]
pub fn cons(h: Expr, t: Expr) -> Expr {
    Expr::synth(ExprKind::Cons(Box::new(h), Box::new(t)))
}

/// A list literal `[e₀; e₁; …]`, i.e. right-nested [`cons`] ending in
/// [`nil`].
#[must_use]
pub fn list(es: Vec<Expr>) -> Expr {
    es.into_iter().rev().fold(nil(), |t, h| cons(h, t))
}

/// List elimination
/// `match s with [] -> nb | h :: t -> cb`.
#[must_use]
pub fn match_list(s: Expr, nb: Expr, h: impl AsRef<str>, t: impl AsRef<str>, cb: Expr) -> Expr {
    Expr::synth(ExprKind::MatchList {
        scrutinee: Box::new(s),
        nil_body: Box::new(nb),
        head_var: Ident::new(h),
        tail_var: Ident::new(t),
        cons_body: Box::new(cb),
    })
}

/// Binary operator application `o (a, b)`.
#[must_use]
pub fn binop(o: Op, a: Expr, b: Expr) -> Expr {
    app(op(o), pair(a, b))
}

/// `a + b`.
#[must_use]
pub fn add(a: Expr, b: Expr) -> Expr {
    binop(Op::Add, a, b)
}

/// `a - b`.
#[must_use]
pub fn sub(a: Expr, b: Expr) -> Expr {
    binop(Op::Sub, a, b)
}

/// `a * b`.
#[must_use]
pub fn mul(a: Expr, b: Expr) -> Expr {
    binop(Op::Mul, a, b)
}

/// `a / b`.
#[must_use]
pub fn div(a: Expr, b: Expr) -> Expr {
    binop(Op::Div, a, b)
}

/// `a mod b`.
#[must_use]
pub fn modulo(a: Expr, b: Expr) -> Expr {
    binop(Op::Mod, a, b)
}

/// `a = b`.
#[must_use]
pub fn eq(a: Expr, b: Expr) -> Expr {
    binop(Op::Eq, a, b)
}

/// `a < b`.
#[must_use]
pub fn lt(a: Expr, b: Expr) -> Expr {
    binop(Op::Lt, a, b)
}

/// `a <= b`.
#[must_use]
pub fn le(a: Expr, b: Expr) -> Expr {
    binop(Op::Le, a, b)
}

/// `mkpar e`.
#[must_use]
pub fn mkpar(e: Expr) -> Expr {
    app(op(Op::Mkpar), e)
}

/// `apply (f, v)` — pointwise application of two parallel vectors.
#[must_use]
pub fn apply(f: Expr, v: Expr) -> Expr {
    app(op(Op::Apply), pair(f, v))
}

/// `put e`.
#[must_use]
pub fn put(e: Expr) -> Expr {
    app(op(Op::Put), e)
}

/// `fix e`.
#[must_use]
pub fn fix(e: Expr) -> Expr {
    app(op(Op::Fix), e)
}

/// `nc ()` — the "no message" value.
#[must_use]
pub fn nc_value() -> Expr {
    app(op(Op::Nc), unit())
}

/// `isnc e`.
#[must_use]
pub fn isnc(e: Expr) -> Expr {
    app(op(Op::Isnc), e)
}

/// `bsp_p ()` — the static number of processors.
#[must_use]
pub fn nprocs() -> Expr {
    app(op(Op::BspP), unit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funs_builds_curried() {
        let e = funs(&["a", "b"], var("a"));
        assert_eq!(e, fun_("a", fun_("b", var("a"))));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn funs_rejects_empty() {
        let _ = funs(&[], int(1));
    }

    #[test]
    fn apps_left_nests() {
        let e = apps(var("f"), [int(1), int(2)]);
        assert_eq!(e, app(app(var("f"), int(1)), int(2)));
    }

    #[test]
    fn list_literal_nests_right() {
        let e = list(vec![int(1), int(2)]);
        assert_eq!(e, cons(int(1), cons(int(2), nil())));
    }

    #[test]
    fn binop_desugars_to_pair_application() {
        let e = add(int(1), int(2));
        assert_eq!(e, app(op(Op::Add), pair(int(1), int(2))));
    }

    #[test]
    fn bsp_builders() {
        assert!(mkpar(fun_("i", var("i"))).mentions_parallelism());
        assert!(put(var("v")).mentions_parallelism());
        assert!(apply(var("f"), var("v")).mentions_parallelism());
        assert_eq!(nc_value(), app(op(Op::Nc), unit()));
    }
}
