//! Source locations.
//!
//! A [`Span`] is a half-open byte range `[start, end)` into the source
//! text a node was parsed from. Nodes built programmatically (for
//! example through [`crate::build`]) carry [`Span::DUMMY`].

use std::fmt;

/// A half-open byte range into a source string.
///
/// # Example
///
/// ```
/// use bsml_ast::Span;
/// let s = Span::new(2, 5);
/// assert_eq!(s.len(), 3);
/// assert!(!s.is_dummy());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// The span used for synthesized nodes with no source location.
    pub const DUMMY: Span = Span {
        start: u32::MAX,
        end: u32::MAX,
    };

    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: u32, end: u32) -> Self {
        assert!(end >= start, "span end {end} precedes start {start}");
        Span { start, end }
    }

    /// Returns `true` for the synthesized [`Span::DUMMY`] location.
    #[must_use]
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }

    /// Number of bytes covered.
    #[must_use]
    pub fn len(self) -> u32 {
        if self.is_dummy() {
            0
        } else {
            self.end - self.start
        }
    }

    /// Returns `true` if the span covers no bytes.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// Dummy spans are absorbing on neither side: joining with a dummy
    /// span returns the non-dummy operand.
    #[must_use]
    pub fn join(self, other: Span) -> Span {
        if self.is_dummy() {
            other
        } else if other.is_dummy() {
            self
        } else {
            Span::new(self.start.min(other.start), self.end.max(other.end))
        }
    }

    /// Extracts the covered slice of `source`, if in bounds.
    #[must_use]
    pub fn slice(self, source: &str) -> Option<&str> {
        if self.is_dummy() {
            return None;
        }
        source.get(self.start as usize..self.end as usize)
    }

    /// 1-based (line, column) of the span start within `source`.
    ///
    /// Returns `(1, 1)` for dummy spans.
    #[must_use]
    pub fn line_col(self, source: &str) -> (usize, usize) {
        if self.is_dummy() {
            return (1, 1);
        }
        let upto = &source[..(self.start as usize).min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto
            .rfind('\n')
            .map_or(upto.len() + 1, |nl| upto.len() - nl);
        (line, col)
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::DUMMY
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dummy() {
            write!(f, "Span(?)")
        } else {
            write!(f, "Span({}..{})", self.start, self.end)
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dummy() {
            write!(f, "<synthesized>")
        } else {
            write!(f, "{}..{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_len() {
        let s = Span::new(3, 8);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(Span::new(4, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn reversed_span_panics() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn dummy_properties() {
        assert!(Span::DUMMY.is_dummy());
        assert_eq!(Span::DUMMY.len(), 0);
        assert_eq!(Span::default(), Span::DUMMY);
    }

    #[test]
    fn join_covers_both() {
        let a = Span::new(2, 4);
        let b = Span::new(7, 9);
        assert_eq!(a.join(b), Span::new(2, 9));
        assert_eq!(b.join(a), Span::new(2, 9));
    }

    #[test]
    fn join_with_dummy_keeps_other() {
        let a = Span::new(1, 3);
        assert_eq!(a.join(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.join(a), a);
    }

    #[test]
    fn slice_extracts() {
        let src = "let x = 1";
        assert_eq!(Span::new(4, 5).slice(src), Some("x"));
        assert_eq!(Span::DUMMY.slice(src), None);
        assert_eq!(Span::new(0, 100).slice(src), None);
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
        assert_eq!(Span::DUMMY.line_col(src), (1, 1));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Span::new(1, 2).to_string(), "1..2");
        assert_eq!(Span::DUMMY.to_string(), "<synthesized>");
        assert_eq!(format!("{:?}", Span::new(1, 2)), "Span(1..2)");
    }
}
