//! Primitive operators of mini-BSML.
//!
//! The paper's §3 fixes the operator set as: arithmetic, the fixpoint
//! combinator `fix`, the `nc`/`isnc` pair (playing the role of OCaml's
//! `None` constructor and its test) and the parallel operations
//! `mkpar`, `apply`, `put` (the synchronous conditional `if‥at‥` is a
//! syntactic form, not an operator). We add the usual comparison and
//! boolean operators plus `bsp_p` (BSMLlib's access to the static
//! machine size) so that realistic BSP algorithms can be written.
//!
//! Every operator is **unary**: binary operations take a pair, exactly
//! as in the paper's `TC(+) = (int * int) → int` (Figure 6).

use std::fmt;

/// A primitive operator.
///
/// # Example
///
/// ```
/// use bsml_ast::Op;
/// assert_eq!(Op::Mkpar.to_string(), "mkpar");
/// assert!(Op::Mkpar.is_parallel());
/// assert!(!Op::Add.is_parallel());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// Integer addition `(int * int) -> int`.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (δ-rule is undefined on a zero divisor).
    Div,
    /// Integer remainder (δ-rule is undefined on a zero divisor).
    Mod,
    /// Structural equality on local values `(α * α) -> bool`.
    Eq,
    /// Integer `<`.
    Lt,
    /// Integer `<=`.
    Le,
    /// Integer `>`.
    Gt,
    /// Integer `>=`.
    Ge,
    /// Boolean conjunction `(bool * bool) -> bool`.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation `bool -> bool`.
    Not,
    /// First projection `∀αβ.[(α*β) → α / L(α) ⇒ L(β)]`.
    Fst,
    /// Second projection `∀αβ.[(α*β) → β / L(β) ⇒ L(α)]`.
    Snd,
    /// Fixpoint combinator `∀α.(α→α)→α`.
    Fix,
    /// The "no communication" constructor `∀α. unit → α`
    /// (the paper's stand-in for OCaml's `None`).
    Nc,
    /// Test for [`Op::Nc`]: `∀α.[α → bool / L(α)]`.
    Isnc,
    /// Parallel vector construction
    /// `∀α.[(int → α) → (α par) / L(α)]`.
    Mkpar,
    /// Pointwise parallel application
    /// `∀αβ.[((α→β) par * (α par)) → (β par) / L(α) ∧ L(β)]`.
    Apply,
    /// Global communication + synchronization
    /// `∀α.[(int→α) par → (int→α) par / L(α)]`.
    Put,
    /// BSMLlib's `bsp_p : unit -> int`, the static machine size.
    BspP,
    /// Reference creation `∀α.[α → α ref / L(α)]`
    /// (§6 "imperative features" extension).
    Ref,
    /// Dereference `∀α.[α ref → α / L(α)]`.
    Deref,
    /// Assignment `∀α.[(α ref * α) → unit / L(α)]`.
    Assign,
}

impl Op {
    /// All operators, in display order. Useful for exhaustive tests.
    pub const ALL: [Op; 25] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Mod,
        Op::Eq,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::And,
        Op::Or,
        Op::Not,
        Op::Fst,
        Op::Snd,
        Op::Fix,
        Op::Nc,
        Op::Isnc,
        Op::Mkpar,
        Op::Apply,
        Op::Put,
        Op::BspP,
        Op::Ref,
        Op::Deref,
        Op::Assign,
    ];

    /// The operator's surface name (also its concrete syntax when used
    /// in prefix position).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Op::Add => "(+)",
            Op::Sub => "(-)",
            // `(*)` would lex as a comment opener (as in OCaml), so
            // the multiplication section is spelled with spaces.
            Op::Mul => "( * )",
            Op::Div => "(/)",
            Op::Mod => "(mod)",
            Op::Eq => "(=)",
            Op::Lt => "(<)",
            Op::Le => "(<=)",
            Op::Gt => "(>)",
            Op::Ge => "(>=)",
            Op::And => "(&&)",
            Op::Or => "(||)",
            Op::Not => "not",
            Op::Fst => "fst",
            Op::Snd => "snd",
            Op::Fix => "fix",
            Op::Nc => "nc",
            Op::Isnc => "isnc",
            Op::Mkpar => "mkpar",
            Op::Apply => "apply",
            Op::Put => "put",
            Op::BspP => "bsp_p",
            Op::Ref => "ref",
            Op::Deref => "(!)",
            Op::Assign => "(:=)",
        }
    }

    /// The infix spelling if the operator has one (`e1 + e2` desugars
    /// to `(+) (e1, e2)`).
    #[must_use]
    pub fn infix_symbol(self) -> Option<&'static str> {
        Some(match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Div => "/",
            Op::Mod => "mod",
            Op::Eq => "=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::And => "&&",
            Op::Or => "||",
            Op::Assign => ":=",
            _ => return None,
        })
    }

    /// `true` for the BSP primitives whose δ-rules live in the paper's
    /// Figure 2 (global reduction `δ_g`); `false` for the sequential
    /// operators of Figure 1.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        matches!(self, Op::Mkpar | Op::Apply | Op::Put)
    }

    /// `true` if the operator ends a BSP superstep (requires
    /// communication and a synchronization barrier).
    #[must_use]
    pub fn is_synchronizing(self) -> bool {
        matches!(self, Op::Put)
    }

    /// Looks an operator up by its prefix surface name.
    ///
    /// # Example
    ///
    /// ```
    /// use bsml_ast::Op;
    /// assert_eq!(Op::from_name("mkpar"), Some(Op::Mkpar));
    /// assert_eq!(Op::from_name("frobnicate"), None);
    /// ```
    #[must_use]
    pub fn from_name(name: &str) -> Option<Op> {
        Op::ALL.iter().copied().find(|op| op.name() == name)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Prefix-position spelling: alphabetic names print bare,
        // symbolic operators print parenthesized, e.g. `(+)`.
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Op::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Op::ALL.len());
    }

    #[test]
    fn from_name_round_trips() {
        for op in Op::ALL {
            assert_eq!(Op::from_name(op.name()), Some(op));
        }
    }

    #[test]
    fn parallel_classification() {
        assert!(Op::Mkpar.is_parallel());
        assert!(Op::Apply.is_parallel());
        assert!(Op::Put.is_parallel());
        let seq = Op::ALL.iter().filter(|o| !o.is_parallel()).count();
        assert_eq!(seq, Op::ALL.len() - 3);
    }

    #[test]
    fn only_put_synchronizes() {
        for op in Op::ALL {
            assert_eq!(op.is_synchronizing(), op == Op::Put);
        }
    }

    #[test]
    fn infix_symbols() {
        assert_eq!(Op::Add.infix_symbol(), Some("+"));
        assert_eq!(Op::Mkpar.infix_symbol(), None);
        assert_eq!(Op::Mod.infix_symbol(), Some("mod"));
    }
}
