//! Expressions of mini-BSML (the paper's Figure 3) plus the *extended
//! expressions* of §3 (parallel vectors `⟨e₀,…,e_{p−1}⟩`) and the §6
//! extensions (sums and lists).

use std::fmt;
use std::sync::Arc;

use crate::op::Op;
use crate::span::Span;

/// An identifier (variable name).
///
/// Cheap to clone (`Arc`-backed, so expressions are `Send + Sync` and
/// can be shared with the distributed execution backend); compares by
/// string content.
///
/// # Example
///
/// ```
/// use bsml_ast::Ident;
/// let x = Ident::new("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x, Ident::new("x"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ident(Arc<str>);

impl Ident {
    /// Creates an identifier from a name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        Ident(Arc::from(name.as_ref()))
    }

    /// The identifier's textual name.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({})", self.0)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Constants: integers, booleans and the unit value `()` (paper §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The unique value of type `unit`.
    Unit,
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(n) => write!(f, "{n}"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Unit => f.write_str("()"),
        }
    }
}

/// The shape of an expression node.
///
/// The first nine variants are the paper's Figure 3; `Vector` is the
/// runtime-only extension of §3 (it cannot be written in source
/// programs — the parser never produces it); the remaining variants
/// are the §6 extensions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// A variable occurrence.
    Var(Ident),
    /// A constant.
    Const(Const),
    /// A primitive operator in expression position.
    Op(Op),
    /// Function abstraction `fun x -> e`.
    Fun(Ident, Box<Expr>),
    /// Application `e₁ e₂`.
    App(Box<Expr>, Box<Expr>),
    /// Local binding `let x = e₁ in e₂`.
    Let(Ident, Box<Expr>, Box<Expr>),
    /// Pair `(e₁, e₂)`.
    Pair(Box<Expr>, Box<Expr>),
    /// Conditional `if e₁ then e₂ else e₃`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Global synchronous conditional `if e₁ at e₂ then e₃ else e₄`.
    IfAt(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
    /// Runtime-only p-wide parallel vector `⟨e₀, …, e_{p−1}⟩`.
    Vector(Vec<Expr>),
    /// Left injection into a sum (§6 extension).
    Inl(Box<Expr>),
    /// Right injection into a sum (§6 extension).
    Inr(Box<Expr>),
    /// Sum elimination
    /// `case e of inl x -> e₁ | inr y -> e₂` (§6 extension).
    Case {
        /// The scrutinee.
        scrutinee: Box<Expr>,
        /// Binder of the `inl` branch.
        left_var: Ident,
        /// Body of the `inl` branch.
        left_body: Box<Expr>,
        /// Binder of the `inr` branch.
        right_var: Ident,
        /// Body of the `inr` branch.
        right_body: Box<Expr>,
    },
    /// The empty list `[]` (§6 extension).
    Nil,
    /// List cell `e₁ :: e₂` (§6 extension).
    Cons(Box<Expr>, Box<Expr>),
    /// List elimination
    /// `match e with [] -> e₁ | h :: t -> e₂` (§6 extension).
    MatchList {
        /// The scrutinee.
        scrutinee: Box<Expr>,
        /// Body of the `[]` branch.
        nil_body: Box<Expr>,
        /// Head binder of the `::` branch.
        head_var: Ident,
        /// Tail binder of the `::` branch.
        tail_var: Ident,
        /// Body of the `::` branch.
        cons_body: Box<Expr>,
    },
}

/// An expression: a kind plus its source location.
#[derive(Clone, Debug, Eq)]
pub struct Expr {
    /// The node shape.
    pub kind: ExprKind,
    /// Where the node came from in the source (dummy if synthesized).
    pub span: Span,
}

// Structural equality ignores spans: two programs are the same program
// regardless of where they were written.
impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl std::hash::Hash for Expr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
    }
}

impl Expr {
    /// Wraps a kind with a span.
    #[must_use]
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Wraps a kind with the dummy span (for synthesized nodes).
    #[must_use]
    pub fn synth(kind: ExprKind) -> Self {
        Expr::new(kind, Span::DUMMY)
    }

    /// Number of nodes in the expression tree.
    #[must_use]
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Maximum nesting depth of the expression tree.
    #[must_use]
    pub fn depth(&self) -> usize {
        use ExprKind::*;
        1 + match &self.kind {
            Var(_) | Const(_) | Op(_) | Nil => 0,
            Fun(_, e) | Inl(e) | Inr(e) => e.depth(),
            App(a, b) | Let(_, a, b) | Pair(a, b) | Cons(a, b) => a.depth().max(b.depth()),
            If(a, b, c) => a.depth().max(b.depth()).max(c.depth()),
            IfAt(a, b, c, d) => a.depth().max(b.depth()).max(c.depth()).max(d.depth()),
            Vector(es) => es.iter().map(Expr::depth).max().unwrap_or(0),
            Case {
                scrutinee,
                left_body,
                right_body,
                ..
            } => scrutinee
                .depth()
                .max(left_body.depth())
                .max(right_body.depth()),
            MatchList {
                scrutinee,
                nil_body,
                cons_body,
                ..
            } => scrutinee
                .depth()
                .max(nil_body.depth())
                .max(cons_body.depth()),
        }
    }

    /// Visits every node in pre-order.
    pub fn walk(&self, visit: &mut impl FnMut(&Expr)) {
        use ExprKind::*;
        visit(self);
        match &self.kind {
            Var(_) | Const(_) | Op(_) | Nil => {}
            Fun(_, e) | Inl(e) | Inr(e) => e.walk(visit),
            App(a, b) | Let(_, a, b) | Pair(a, b) | Cons(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            If(a, b, c) => {
                a.walk(visit);
                b.walk(visit);
                c.walk(visit);
            }
            IfAt(a, b, c, d) => {
                a.walk(visit);
                b.walk(visit);
                c.walk(visit);
                d.walk(visit);
            }
            Vector(es) => {
                for e in es {
                    e.walk(visit);
                }
            }
            Case {
                scrutinee,
                left_body,
                right_body,
                ..
            } => {
                scrutinee.walk(visit);
                left_body.walk(visit);
                right_body.walk(visit);
            }
            MatchList {
                scrutinee,
                nil_body,
                cons_body,
                ..
            } => {
                scrutinee.walk(visit);
                nil_body.walk(visit);
                cons_body.walk(visit);
            }
        }
    }

    /// `true` if the expression contains a parallel vector literal or
    /// any parallel primitive — i.e. it is not a purely sequential
    /// program.
    #[must_use]
    pub fn mentions_parallelism(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| match &e.kind {
            ExprKind::Vector(_) | ExprKind::IfAt(..) => found = true,
            ExprKind::Op(op) if op.is_parallel() => found = true,
            _ => {}
        });
        found
    }

    /// The set of free variables, in first-occurrence order.
    #[must_use]
    pub fn free_vars(&self) -> Vec<Ident> {
        fn go(e: &Expr, bound: &mut Vec<Ident>, out: &mut Vec<Ident>) {
            use ExprKind::*;
            match &e.kind {
                Var(x) => {
                    if !bound.contains(x) && !out.contains(x) {
                        out.push(x.clone());
                    }
                }
                Const(_) | Op(_) | Nil => {}
                Fun(x, body) => {
                    bound.push(x.clone());
                    go(body, bound, out);
                    bound.pop();
                }
                App(a, b) | Pair(a, b) | Cons(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Let(x, e1, e2) => {
                    go(e1, bound, out);
                    bound.push(x.clone());
                    go(e2, bound, out);
                    bound.pop();
                }
                If(a, b, c) => {
                    go(a, bound, out);
                    go(b, bound, out);
                    go(c, bound, out);
                }
                IfAt(a, b, c, d) => {
                    go(a, bound, out);
                    go(b, bound, out);
                    go(c, bound, out);
                    go(d, bound, out);
                }
                Vector(es) => {
                    for e in es {
                        go(e, bound, out);
                    }
                }
                Inl(e) | Inr(e) => go(e, bound, out),
                Case {
                    scrutinee,
                    left_var,
                    left_body,
                    right_var,
                    right_body,
                } => {
                    go(scrutinee, bound, out);
                    bound.push(left_var.clone());
                    go(left_body, bound, out);
                    bound.pop();
                    bound.push(right_var.clone());
                    go(right_body, bound, out);
                    bound.pop();
                }
                MatchList {
                    scrutinee,
                    nil_body,
                    head_var,
                    tail_var,
                    cons_body,
                } => {
                    go(scrutinee, bound, out);
                    go(nil_body, bound, out);
                    bound.push(head_var.clone());
                    bound.push(tail_var.clone());
                    go(cons_body, bound, out);
                    bound.pop();
                    bound.pop();
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// `true` if the expression has no free variables.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Capture-avoiding substitution `self[x ← v]` (the paper's
    /// `e[x ← v]`).
    ///
    /// Binders that would capture a free variable of `v` are renamed
    /// to a fresh name first.
    #[must_use]
    pub fn substitute(&self, x: &Ident, v: &Expr) -> Expr {
        let v_free = v.free_vars();
        self.subst_inner(x, v, &v_free)
    }

    fn subst_inner(&self, x: &Ident, v: &Expr, v_free: &[Ident]) -> Expr {
        use ExprKind::*;
        // Subtrees without a free occurrence of `x` are returned
        // untouched — in particular no binder inside them is renamed.
        if !self.free_vars().contains(x) {
            return self.clone();
        }
        let span = self.span;
        let kind = match &self.kind {
            Var(y) => {
                if y == x {
                    return v.clone();
                }
                Var(y.clone())
            }
            Const(c) => Const(*c),
            Op(op) => Op(*op),
            Nil => Nil,
            Fun(y, body) => {
                if y == x {
                    Fun(y.clone(), body.clone())
                } else if v_free.contains(y) {
                    let fresh = fresh_name(y, &[body.free_vars(), v_free.to_vec()].concat());
                    let renamed = body.subst_inner(
                        y,
                        &Expr::synth(Var(fresh.clone())),
                        std::slice::from_ref(&fresh),
                    );
                    Fun(fresh, Box::new(renamed.subst_inner(x, v, v_free)))
                } else {
                    Fun(y.clone(), Box::new(body.subst_inner(x, v, v_free)))
                }
            }
            App(a, b) => App(
                Box::new(a.subst_inner(x, v, v_free)),
                Box::new(b.subst_inner(x, v, v_free)),
            ),
            Pair(a, b) => Pair(
                Box::new(a.subst_inner(x, v, v_free)),
                Box::new(b.subst_inner(x, v, v_free)),
            ),
            Cons(a, b) => Cons(
                Box::new(a.subst_inner(x, v, v_free)),
                Box::new(b.subst_inner(x, v, v_free)),
            ),
            Let(y, e1, e2) => {
                let e1 = Box::new(e1.subst_inner(x, v, v_free));
                if y == x || !e2.free_vars().contains(x) {
                    Let(y.clone(), e1, e2.clone())
                } else if v_free.contains(y) {
                    let fresh = fresh_name(y, &[e2.free_vars(), v_free.to_vec()].concat());
                    let renamed = e2.subst_inner(
                        y,
                        &Expr::synth(Var(fresh.clone())),
                        std::slice::from_ref(&fresh),
                    );
                    Let(fresh, e1, Box::new(renamed.subst_inner(x, v, v_free)))
                } else {
                    Let(y.clone(), e1, Box::new(e2.subst_inner(x, v, v_free)))
                }
            }
            If(a, b, c) => If(
                Box::new(a.subst_inner(x, v, v_free)),
                Box::new(b.subst_inner(x, v, v_free)),
                Box::new(c.subst_inner(x, v, v_free)),
            ),
            IfAt(a, b, c, d) => IfAt(
                Box::new(a.subst_inner(x, v, v_free)),
                Box::new(b.subst_inner(x, v, v_free)),
                Box::new(c.subst_inner(x, v, v_free)),
                Box::new(d.subst_inner(x, v, v_free)),
            ),
            Vector(es) => Vector(es.iter().map(|e| e.subst_inner(x, v, v_free)).collect()),
            Inl(e) => Inl(Box::new(e.subst_inner(x, v, v_free))),
            Inr(e) => Inr(Box::new(e.subst_inner(x, v, v_free))),
            Case {
                scrutinee,
                left_var,
                left_body,
                right_var,
                right_body,
            } => {
                let scrutinee = Box::new(scrutinee.subst_inner(x, v, v_free));
                let (left_var, left_body) = subst_under_binder(left_var, left_body, x, v, v_free);
                let (right_var, right_body) =
                    subst_under_binder(right_var, right_body, x, v, v_free);
                Case {
                    scrutinee,
                    left_var,
                    left_body: Box::new(left_body),
                    right_var,
                    right_body: Box::new(right_body),
                }
            }
            MatchList {
                scrutinee,
                nil_body,
                head_var,
                tail_var,
                cons_body,
            } => {
                let scrutinee = Box::new(scrutinee.subst_inner(x, v, v_free));
                let nil_body = Box::new(nil_body.subst_inner(x, v, v_free));
                // The pattern binders shadow `x` if either equals it;
                // no work is needed either when `x` is not free in
                // the branch body.
                let shadowed = head_var == x || tail_var == x || !cons_body.free_vars().contains(x);
                let (head_var, tail_var, cons_body) = if shadowed {
                    (head_var.clone(), tail_var.clone(), (**cons_body).clone())
                } else {
                    // Rename each binder away from the free variables
                    // of `v`, then substitute.
                    let (h, body) = subst_under_binder_only_rename(head_var, cons_body, v_free);
                    let (t, body) = subst_under_binder_only_rename(tail_var, &body, v_free);
                    (h, t, body.subst_inner(x, v, v_free))
                };
                MatchList {
                    scrutinee,
                    nil_body,
                    head_var,
                    tail_var,
                    cons_body: Box::new(cons_body),
                }
            }
        };
        Expr::new(kind, span)
    }
}

/// Renames `binder` away from `avoid` inside `body` (no substitution of
/// the target variable yet).
fn subst_under_binder_only_rename(binder: &Ident, body: &Expr, avoid: &[Ident]) -> (Ident, Expr) {
    if avoid.contains(binder) {
        let fresh = fresh_name(binder, &[body.free_vars(), avoid.to_vec()].concat());
        let renamed = body.subst_inner(
            binder,
            &Expr::synth(ExprKind::Var(fresh.clone())),
            std::slice::from_ref(&fresh),
        );
        (fresh, renamed)
    } else {
        (binder.clone(), body.clone())
    }
}

/// Substitutes `x ← v` under one binder, renaming it if it would
/// capture.
fn subst_under_binder(
    binder: &Ident,
    body: &Expr,
    x: &Ident,
    v: &Expr,
    v_free: &[Ident],
) -> (Ident, Expr) {
    if binder == x || !body.free_vars().contains(x) {
        (binder.clone(), body.clone())
    } else {
        let (binder, body) = subst_under_binder_only_rename(binder, body, v_free);
        let body = body.subst_inner(x, v, v_free);
        (binder, body)
    }
}

/// Picks a name derived from `base` that does not occur in `avoid`.
fn fresh_name(base: &Ident, avoid: &[Ident]) -> Ident {
    let mut i = 0u64;
    loop {
        let candidate = Ident::new(format!("{}${i}", base.as_str()));
        if !avoid.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn ident_basics() {
        let x = Ident::new("x");
        assert_eq!(x.as_str(), "x");
        assert_eq!(x, Ident::from("x"));
        assert_ne!(x, Ident::new("y"));
        assert_eq!(format!("{x}"), "x");
        assert_eq!(format!("{x:?}"), "Ident(x)");
    }

    #[test]
    fn const_display() {
        assert_eq!(Const::Int(42).to_string(), "42");
        assert_eq!(Const::Bool(true).to_string(), "true");
        assert_eq!(Const::Unit.to_string(), "()");
    }

    #[test]
    fn eq_ignores_spans() {
        let a = Expr::new(ExprKind::Const(Const::Int(1)), Span::new(0, 1));
        let b = Expr::new(ExprKind::Const(Const::Int(1)), Span::new(5, 6));
        assert_eq!(a, b);
    }

    #[test]
    fn size_and_depth() {
        // fun x -> x + 1  ==  fun x -> (+) (x, 1)
        let e = fun_("x", add(var("x"), int(1)));
        assert_eq!(e.size(), 6); // fun, app, op, pair, var, const
        assert_eq!(e.depth(), 4); // fun -> app -> pair -> var
    }

    #[test]
    fn free_vars_simple() {
        let e = app(var("f"), var("x"));
        assert_eq!(e.free_vars(), vec![Ident::new("f"), Ident::new("x")]);
        assert!(!e.is_closed());
        assert!(fun_("f", fun_("x", e)).is_closed());
    }

    #[test]
    fn free_vars_let_scoping() {
        // let x = y in x — only y free
        let e = let_("x", var("y"), var("x"));
        assert_eq!(e.free_vars(), vec![Ident::new("y")]);
        // let x = x in x — the bound expression's x is free
        let e = let_("x", var("x"), var("x"));
        assert_eq!(e.free_vars(), vec![Ident::new("x")]);
    }

    #[test]
    fn free_vars_case_and_match() {
        let e = case(
            var("s"),
            "l",
            app(var("l"), var("a")),
            "r",
            app(var("r"), var("b")),
        );
        assert_eq!(
            e.free_vars(),
            vec![Ident::new("s"), Ident::new("a"), Ident::new("b")]
        );
        let m = match_list(var("xs"), var("z"), "h", "t", pair(var("h"), var("t")));
        assert_eq!(m.free_vars(), vec![Ident::new("xs"), Ident::new("z")]);
    }

    #[test]
    fn substitute_basic() {
        let e = add(var("x"), var("y"));
        let got = e.substitute(&Ident::new("x"), &int(7));
        assert_eq!(got, add(int(7), var("y")));
    }

    #[test]
    fn substitute_respects_shadowing() {
        // (fun x -> x)[x ← 1] = fun x -> x
        let e = fun_("x", var("x"));
        assert_eq!(e.substitute(&Ident::new("x"), &int(1)), fun_("x", var("x")));
        // (let x = x in x)[x ← 1] = let x = 1 in x
        let e = let_("x", var("x"), var("x"));
        assert_eq!(
            e.substitute(&Ident::new("x"), &int(1)),
            let_("x", int(1), var("x"))
        );
    }

    #[test]
    fn substitute_avoids_capture() {
        // (fun y -> x)[x ← y]  must NOT become fun y -> y
        let e = fun_("y", var("x"));
        let got = e.substitute(&Ident::new("x"), &var("y"));
        if let ExprKind::Fun(binder, body) = &got.kind {
            assert_ne!(binder.as_str(), "y");
            assert_eq!(body.kind, ExprKind::Var(Ident::new("y")));
        } else {
            panic!("expected a function, got {got:?}");
        }
    }

    #[test]
    fn substitute_avoids_capture_in_let() {
        // (let y = 1 in x)[x ← y]
        let e = let_("y", int(1), var("x"));
        let got = e.substitute(&Ident::new("x"), &var("y"));
        if let ExprKind::Let(binder, _, body) = &got.kind {
            assert_ne!(binder.as_str(), "y");
            assert_eq!(body.kind, ExprKind::Var(Ident::new("y")));
        } else {
            panic!("expected a let, got {got:?}");
        }
    }

    #[test]
    fn substitute_in_vector() {
        let e = vector(vec![var("x"), int(2)]);
        let got = e.substitute(&Ident::new("x"), &int(9));
        assert_eq!(got, vector(vec![int(9), int(2)]));
    }

    #[test]
    fn mentions_parallelism_detects_primitives() {
        assert!(app(op(Op::Mkpar), fun_("i", var("i"))).mentions_parallelism());
        assert!(vector(vec![int(1)]).mentions_parallelism());
        assert!(ifat(var("v"), int(0), int(1), int(2)).mentions_parallelism());
        assert!(!add(int(1), int(2)).mentions_parallelism());
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = if_(bool_(true), int(1), int(2));
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, e.size());
        assert_eq!(count, 4);
    }
}
