//! A bytecode compiler and abstract machine for mini-BSML.
//!
//! The paper's introduction sets the project goal: *"This environment
//! will contain a byte-code compiler for BSML"*, building on the
//! parallel abstract machine of reference [5] (itself descended from
//! the Data-Parallel Categorical Abstract Machine of reference [3]).
//! This crate is that substrate:
//!
//! * [`compile`] lowers mini-BSML expressions to flat [`Instr`]
//!   sequences with de Bruijn variable resolution (no names at run
//!   time),
//! * [`Vm`] executes the bytecode with proper tail calls (recursive
//!   BSML functions run in constant frame space), the four parallel
//!   primitives executed lockstep exactly like the tree-walking
//!   evaluator.
//!
//! The VM is cross-validated against the big-step evaluator on the
//! whole standard library and on fuzzed programs (`tests/vm.rs` at
//! the workspace root).
//!
//! ```
//! use bsml_vm::{compile, Vm};
//! use bsml_syntax::parse;
//!
//! let e = parse("let rec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 10")?;
//! let program = compile(&e)?;
//! let value = Vm::new(4).run(&program)?;
//! assert_eq!(value.to_string(), "3628800");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compile;
pub mod machine;
pub mod value;

pub use compile::{compile, CodeRef, CompileError, Instr, Program};
pub use machine::{Vm, VmError};
pub use value::MValue;
