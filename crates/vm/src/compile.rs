//! The bytecode compiler: mini-BSML expressions to flat instruction
//! blocks with de Bruijn indices.
//!
//! Compilation is tail-position aware: bodies in tail position end
//! with [`Instr::TailApply`] / [`Instr::Return`], so the machine runs
//! tail-recursive functions in constant frame space (matching the
//! big-step evaluator's trampoline).

use std::fmt;

use bsml_ast::{Const, Expr, ExprKind, Ident, Op};

/// Index of a code block inside a [`Program`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CodeRef(pub u32);

/// One bytecode instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Push a constant.
    Const(Const),
    /// Push the unit-applied `nc ()` value directly.
    PushNoComm,
    /// Push the environment slot `n` (de Bruijn index, innermost 0).
    Access(u16),
    /// Push a closure over the current environment.
    Closure(CodeRef),
    /// Push a primitive operator as a value.
    Prim(Op),
    /// Pop argument then function; call (pushes a return frame).
    Apply,
    /// Pop argument then function; jump (reuses the current frame).
    TailApply,
    /// Return the top of stack to the caller frame.
    Return,
    /// Pop two values, push their pair (second popped is the left).
    MakePair,
    /// Pop a value, push `inl v`.
    MakeInl,
    /// Pop a value, push `inr v`.
    MakeInr,
    /// Push the empty list `[]`.
    MakeNil,
    /// Pop tail then head, push `h :: t`.
    MakeCons,
    /// Pop a value and bind it (push onto the environment).
    Bind,
    /// Drop the innermost environment binding.
    Unbind,
    /// Pop a boolean; run the first block if true, else the second.
    /// The blocks are complete continuations (they `Return`). The
    /// flag marks tail position: a tail jump replaces the current
    /// frame, a non-tail jump pushes one and resumes here.
    Branch(CodeRef, CodeRef, bool),
    /// Pop a sum value; bind its payload and run the matching block
    /// (same tail flag as [`Instr::Branch`]).
    CaseJump(CodeRef, CodeRef, bool),
    /// Pop a list; run the first block on `[]`, else bind head and
    /// tail (tail becomes slot 0) and run the second.
    MatchJump(CodeRef, CodeRef, bool),
    /// Pop the process id then the `bool par` vector; synchronize and
    /// run the chosen block.
    IfAtJump(CodeRef, CodeRef, bool),
}

/// A compiled program: code blocks, entry point last.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// All code blocks; [`CodeRef`]s index into this table.
    pub blocks: Vec<Vec<Instr>>,
    /// The block to start executing (with an empty environment).
    pub entry: CodeRef,
}

impl Program {
    /// The instructions of a block.
    #[must_use]
    pub fn block(&self, r: CodeRef) -> &[Instr] {
        &self.blocks[r.0 as usize]
    }

    /// Total instruction count (a code-size metric).
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, block) in self.blocks.iter().enumerate() {
            let marker = if CodeRef(i as u32) == self.entry {
                " (entry)"
            } else {
                ""
            };
            writeln!(f, "block {i}{marker}:")?;
            for (j, instr) in block.iter().enumerate() {
                writeln!(f, "  {j:>3}: {instr:?}")?;
            }
        }
        Ok(())
    }
}

/// Compilation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A free variable (programs must be closed).
    Unbound(Ident),
    /// More than `u16::MAX` simultaneously live bindings.
    TooManyBindings,
    /// A runtime-only parallel vector literal in the source.
    VectorLiteral,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            CompileError::TooManyBindings => f.write_str("too many live bindings"),
            CompileError::VectorLiteral => {
                f.write_str("parallel vector literals cannot be compiled")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a closed expression to bytecode.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile(e: &Expr) -> Result<Program, CompileError> {
    let mut c = Compiler::default();
    let mut code = Vec::new();
    c.emit(e, &mut Vec::new(), &mut code, true)?;
    // The entry block behaves like a function body.
    let entry = c.push_block(code);
    Ok(Program {
        blocks: c.blocks,
        entry,
    })
}

#[derive(Default)]
struct Compiler {
    blocks: Vec<Vec<Instr>>,
}

impl Compiler {
    fn push_block(&mut self, code: Vec<Instr>) -> CodeRef {
        let r = CodeRef(self.blocks.len() as u32);
        self.blocks.push(code);
        r
    }

    /// Compiles `e` into `out`. `env` is the compile-time binder
    /// stack (innermost last). When `tail` is set the emitted code
    /// *finishes the current frame* (ends in `Return`/`TailApply`/a
    /// jump); otherwise it leaves the value on the stack.
    fn emit(
        &mut self,
        e: &Expr,
        env: &mut Vec<Ident>,
        out: &mut Vec<Instr>,
        tail: bool,
    ) -> Result<(), CompileError> {
        use ExprKind::*;
        match &e.kind {
            Var(x) => {
                let idx = env
                    .iter()
                    .rev()
                    .position(|y| y == x)
                    .ok_or_else(|| CompileError::Unbound(x.clone()))?;
                let idx = u16::try_from(idx).map_err(|_| CompileError::TooManyBindings)?;
                out.push(Instr::Access(idx));
                self.finish(out, tail);
            }
            Const(k) => {
                out.push(Instr::Const(*k));
                self.finish(out, tail);
            }
            Op(op) => {
                out.push(Instr::Prim(*op));
                self.finish(out, tail);
            }
            Nil => {
                out.push(Instr::MakeNil);
                self.finish(out, tail);
            }
            Fun(x, body) => {
                env.push(x.clone());
                let mut code = Vec::new();
                self.emit(body, env, &mut code, true)?;
                env.pop();
                let block = self.push_block(code);
                out.push(Instr::Closure(block));
                self.finish(out, tail);
            }
            App(f, a) => {
                // The paper's `nc ()` value compiles to one push.
                if matches!(f.kind, Op(bsml_ast::Op::Nc))
                    && matches!(a.kind, Const(bsml_ast::Const::Unit))
                {
                    out.push(Instr::PushNoComm);
                    self.finish(out, tail);
                    return Ok(());
                }
                self.emit(f, env, out, false)?;
                self.emit(a, env, out, false)?;
                out.push(if tail { Instr::TailApply } else { Instr::Apply });
            }
            Let(x, bound, body) => {
                self.emit(bound, env, out, false)?;
                out.push(Instr::Bind);
                env.push(x.clone());
                self.emit(body, env, out, tail)?;
                env.pop();
                if !tail {
                    out.push(Instr::Unbind);
                }
            }
            Pair(a, b) => {
                self.emit(a, env, out, false)?;
                self.emit(b, env, out, false)?;
                out.push(Instr::MakePair);
                self.finish(out, tail);
            }
            Cons(h, t) => {
                self.emit(h, env, out, false)?;
                self.emit(t, env, out, false)?;
                out.push(Instr::MakeCons);
                self.finish(out, tail);
            }
            Inl(inner) => {
                self.emit(inner, env, out, false)?;
                out.push(Instr::MakeInl);
                self.finish(out, tail);
            }
            Inr(inner) => {
                self.emit(inner, env, out, false)?;
                out.push(Instr::MakeInr);
                self.finish(out, tail);
            }
            If(c, t, els) => {
                self.emit(c, env, out, false)?;
                // Both branch blocks are compiled in tail form: they
                // finish the (sub)frame the Branch creates — or the
                // whole frame when `tail` is set.
                let tb = self.subblock(t, env)?;
                let eb = self.subblock(els, env)?;
                out.push(Instr::Branch(tb, eb, tail));
            }
            IfAt(v, n, t, els) => {
                self.emit(v, env, out, false)?;
                self.emit(n, env, out, false)?;
                let tb = self.subblock(t, env)?;
                let eb = self.subblock(els, env)?;
                out.push(Instr::IfAtJump(tb, eb, tail));
            }
            Case {
                scrutinee,
                left_var,
                left_body,
                right_var,
                right_body,
            } => {
                self.emit(scrutinee, env, out, false)?;
                env.push(left_var.clone());
                let lb = self.subblock(left_body, env)?;
                env.pop();
                env.push(right_var.clone());
                let rb = self.subblock(right_body, env)?;
                env.pop();
                out.push(Instr::CaseJump(lb, rb, tail));
            }
            MatchList {
                scrutinee,
                nil_body,
                head_var,
                tail_var,
                cons_body,
            } => {
                self.emit(scrutinee, env, out, false)?;
                let nb = self.subblock(nil_body, env)?;
                env.push(head_var.clone());
                env.push(tail_var.clone());
                let cb = self.subblock(cons_body, env)?;
                env.pop();
                env.pop();
                out.push(Instr::MatchJump(nb, cb, tail));
            }
            Vector(_) => return Err(CompileError::VectorLiteral),
        }
        Ok(())
    }

    /// A freshly compiled block in tail form.
    fn subblock(&mut self, e: &Expr, env: &mut Vec<Ident>) -> Result<CodeRef, CompileError> {
        let mut code = Vec::new();
        self.emit(e, env, &mut code, true)?;
        Ok(self.push_block(code))
    }

    fn finish(&mut self, out: &mut Vec<Instr>, tail: bool) {
        if tail {
            out.push(Instr::Return);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_ast::build as b;

    #[test]
    fn constants_and_vars() {
        let p = compile(&b::int(7)).unwrap();
        assert_eq!(
            p.block(p.entry),
            &[Instr::Const(Const::Int(7)), Instr::Return]
        );
        assert!(matches!(
            compile(&b::var("x")),
            Err(CompileError::Unbound(_))
        ));
    }

    #[test]
    fn de_bruijn_resolution() {
        // fun x -> fun y -> x   →  inner body accesses slot 1.
        let e = b::funs(&["x", "y"], b::var("x"));
        let p = compile(&e).unwrap();
        let inner = p
            .blocks
            .iter()
            .find(|blk| blk.contains(&Instr::Access(1)))
            .expect("x is the outer binder");
        assert_eq!(inner, &vec![Instr::Access(1), Instr::Return]);
    }

    #[test]
    fn shadowing_picks_innermost() {
        // fun x -> fun x -> x  →  Access(0).
        let e = b::funs(&["x", "x"], b::var("x"));
        let p = compile(&e).unwrap();
        assert!(p
            .blocks
            .iter()
            .any(|blk| blk == &vec![Instr::Access(0), Instr::Return]));
        assert!(!p.blocks.iter().any(|blk| blk.contains(&Instr::Access(1))));
    }

    #[test]
    fn tail_positions_use_tail_apply() {
        // let f = fun x -> f x — the self call is a TailApply.
        let e = b::fun_("f", b::fun_("x", b::app(b::var("f"), b::var("x"))));
        let p = compile(&e).unwrap();
        assert!(p.blocks.iter().any(|blk| blk.contains(&Instr::TailApply)));
        // Operands are non-tail: function position compiled with
        // plain Access, not followed by Return before TailApply.
    }

    #[test]
    fn nc_unit_is_one_instruction() {
        let p = compile(&b::nc_value()).unwrap();
        assert_eq!(p.block(p.entry), &[Instr::PushNoComm, Instr::Return]);
    }

    #[test]
    fn vector_literals_rejected() {
        assert_eq!(
            compile(&b::vector(vec![b::int(1)])),
            Err(CompileError::VectorLiteral)
        );
    }

    #[test]
    fn program_display_lists_blocks() {
        let p = compile(&b::add(b::int(1), b::int(2))).unwrap();
        let text = p.to_string();
        assert!(text.contains("(entry)"));
        assert!(text.contains("MakePair"));
        assert!(p.instruction_count() >= 5);
    }
}
