//! Runtime values of the abstract machine.
//!
//! Mirrors `bsml-eval`'s value universe, with machine closures (code
//! reference + captured environment) instead of AST closures. The
//! `Display` forms agree with the tree-walking evaluator's, which is
//! what the cross-validation suite compares.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use bsml_ast::Op;
use bsml_eval::Mode;

use crate::compile::CodeRef;

/// A persistent machine environment (de Bruijn indexed: slot 0 is the
/// most recent binding).
#[derive(Clone, Debug, Default)]
pub struct MEnv {
    head: Option<Rc<MNode>>,
}

#[derive(Debug)]
struct MNode {
    value: MValue,
    next: Option<Rc<MNode>>,
}

impl MEnv {
    /// The empty environment.
    #[must_use]
    pub fn new() -> MEnv {
        MEnv::default()
    }

    /// Pushes a binding (slot 0 afterwards).
    #[must_use]
    pub fn push(&self, value: MValue) -> MEnv {
        MEnv {
            head: Some(Rc::new(MNode {
                value,
                next: self.head.clone(),
            })),
        }
    }

    /// Drops the innermost binding.
    ///
    /// # Panics
    ///
    /// Panics on an empty environment (a compiler bug, not a user
    /// error).
    #[must_use]
    pub fn pop(&self) -> MEnv {
        MEnv {
            head: self
                .head
                .as_ref()
                .expect("Unbind on empty environment")
                .next
                .clone(),
        }
    }

    /// Looks up de Bruijn slot `n`.
    #[must_use]
    pub fn get(&self, n: u16) -> Option<&MValue> {
        let mut cur = self.head.as_deref();
        for _ in 0..n {
            cur = cur?.next.as_deref();
        }
        cur.map(|node| &node.value)
    }
}

/// A machine value.
#[derive(Clone, Debug)]
pub enum MValue {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// Unit.
    Unit,
    /// `nc ()`.
    NoComm,
    /// A bytecode closure.
    Closure {
        /// The body block.
        code: CodeRef,
        /// The captured environment (parameter pushed at call time).
        env: MEnv,
    },
    /// A primitive operator value.
    Prim(Op),
    /// A pair.
    Pair(Rc<MValue>, Rc<MValue>),
    /// Left injection.
    Inl(Rc<MValue>),
    /// Right injection.
    Inr(Rc<MValue>),
    /// Empty list.
    Nil,
    /// List cell.
    Cons(Rc<MValue>, Rc<MValue>),
    /// A p-wide parallel vector.
    Vector(Rc<Vec<MValue>>),
    /// `put`'s delivered-messages function.
    MsgTable(Rc<Vec<MValue>>),
    /// `fix f` as a function value (unrolled on application).
    Fix(Rc<MValue>),
    /// A reference cell with its creation mode (same §6 discipline as
    /// the tree-walking evaluator).
    Cell {
        /// Contents.
        cell: Rc<RefCell<MValue>>,
        /// Creation mode.
        origin: Mode,
    },
}

impl MValue {
    /// Builds a vector.
    #[must_use]
    pub fn vector(vs: Vec<MValue>) -> MValue {
        MValue::Vector(Rc::new(vs))
    }

    /// Builds a pair.
    #[must_use]
    pub fn pair(a: MValue, b: MValue) -> MValue {
        MValue::Pair(Rc::new(a), Rc::new(b))
    }

    /// `true` for values an application can consume.
    #[must_use]
    pub fn is_function(&self) -> bool {
        matches!(
            self,
            MValue::Closure { .. } | MValue::Prim(_) | MValue::MsgTable(_) | MValue::Fix(_)
        )
    }

    /// `true` if a vector occurs inside the value.
    #[must_use]
    pub fn contains_vector(&self) -> bool {
        match self {
            MValue::Vector(_) => true,
            MValue::Pair(a, b) | MValue::Cons(a, b) => a.contains_vector() || b.contains_vector(),
            MValue::Inl(v) | MValue::Inr(v) => v.contains_vector(),
            MValue::Cell { cell, .. } => cell.borrow().contains_vector(),
            _ => false,
        }
    }

    /// Structural equality on first-order values (`None` on
    /// functions).
    #[must_use]
    pub fn try_eq(&self, other: &MValue) -> Option<bool> {
        use MValue::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a == b),
            (Bool(a), Bool(b)) => Some(a == b),
            (Unit, Unit) | (NoComm, NoComm) | (Nil, Nil) => Some(true),
            (Pair(a1, b1), Pair(a2, b2)) | (Cons(a1, b1), Cons(a2, b2)) => {
                Some(a1.try_eq(a2)? && b1.try_eq(b2)?)
            }
            (Inl(a), Inl(b)) | (Inr(a), Inr(b)) => a.try_eq(b),
            (Vector(xs), Vector(ys)) => {
                if xs.len() != ys.len() {
                    return Some(false);
                }
                for (x, y) in xs.iter().zip(ys.iter()) {
                    if !x.try_eq(y)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            (Cell { cell: a, .. }, Cell { cell: b, .. }) => {
                if Rc::ptr_eq(a, b) {
                    return Some(true);
                }
                let x = a.borrow().clone();
                let y = b.borrow().clone();
                x.try_eq(&y)
            }
            (Closure { .. }, _)
            | (_, Closure { .. })
            | (Prim(_), _)
            | (_, Prim(_))
            | (MsgTable(_), _)
            | (_, MsgTable(_))
            | (Fix(_), _)
            | (_, Fix(_)) => None,
            _ => Some(false),
        }
    }
}

impl fmt::Display for MValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MValue::Int(n) => write!(f, "{n}"),
            MValue::Bool(b) => write!(f, "{b}"),
            MValue::Unit => f.write_str("()"),
            MValue::NoComm => f.write_str("nc ()"),
            MValue::Closure { .. } => f.write_str("<fun>"),
            MValue::Prim(op) => write!(f, "{op}"),
            MValue::Pair(a, b) => write!(f, "({a}, {b})"),
            MValue::Inl(v) => write!(f, "inl {v}"),
            MValue::Inr(v) => write!(f, "inr {v}"),
            MValue::Nil => f.write_str("[]"),
            MValue::Cons(..) => {
                f.write_str("[")?;
                let mut cur = self;
                let mut first = true;
                loop {
                    match cur {
                        MValue::Cons(h, t) => {
                            if !first {
                                f.write_str("; ")?;
                            }
                            write!(f, "{h}")?;
                            first = false;
                            cur = t;
                        }
                        MValue::Nil => break,
                        other => {
                            write!(f, " . {other}")?;
                            break;
                        }
                    }
                }
                f.write_str("]")
            }
            MValue::Vector(vs) => {
                f.write_str("<|")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("|>")
            }
            MValue::MsgTable(_) => f.write_str("<delivered-messages>"),
            MValue::Fix(_) => f.write_str("<fix>"),
            MValue::Cell { cell, .. } => write!(f, "ref {}", cell.borrow()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_push_pop_get() {
        let e = MEnv::new().push(MValue::Int(1)).push(MValue::Int(2));
        assert_eq!(e.get(0).unwrap().to_string(), "2");
        assert_eq!(e.get(1).unwrap().to_string(), "1");
        assert!(e.get(2).is_none());
        let e2 = e.pop();
        assert_eq!(e2.get(0).unwrap().to_string(), "1");
    }

    #[test]
    fn display_matches_eval_formats() {
        assert_eq!(
            MValue::vector(vec![MValue::Int(1), MValue::Int(2)]).to_string(),
            "<|1, 2|>"
        );
        assert_eq!(
            MValue::Cons(Rc::new(MValue::Int(1)), Rc::new(MValue::Nil)).to_string(),
            "[1]"
        );
        assert_eq!(MValue::NoComm.to_string(), "nc ()");
    }

    #[test]
    fn try_eq_mirrors_eval() {
        let a = MValue::pair(MValue::Int(1), MValue::Bool(true));
        assert_eq!(a.try_eq(&a.clone()), Some(true));
        assert_eq!(MValue::Prim(Op::Add).try_eq(&MValue::Prim(Op::Add)), None);
    }
}
