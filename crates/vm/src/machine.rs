//! The abstract machine: a stack VM with proper tail calls executing
//! compiled mini-BSML, parallel primitives run lockstep.
//!
//! Errors reuse [`bsml_eval::EvalError`] so the cross-validation
//! suite can compare outcomes with the tree-walking evaluator
//! directly. Stack/environment underflows are compiler invariants
//! and panic rather than surface as user errors.

use std::rc::Rc;

use bsml_ast::{Const, Op};
use bsml_eval::{EvalError, Mode};

use crate::compile::{CodeRef, Instr, Program};
use crate::value::{MEnv, MValue};

/// Re-exported error type (shared with the tree-walking evaluator).
pub type VmError = EvalError;

/// One call frame.
struct Frame {
    code: CodeRef,
    pc: usize,
    env: MEnv,
    mode: Mode,
}

/// The abstract machine for a `p`-processor (lockstep) BSP computer.
///
/// # Example
///
/// ```
/// use bsml_vm::{compile, Vm};
/// use bsml_syntax::parse;
///
/// let program = compile(&parse("mkpar (fun i -> i * i)")?)?;
/// assert_eq!(Vm::new(4).run(&program)?.to_string(), "<|0, 1, 4, 9|>");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Vm {
    p: usize,
    fuel: u64,
    max_call_depth: u32,
}

impl Vm {
    /// A machine of `p` processors with default budgets.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn new(p: usize) -> Vm {
        assert!(p > 0, "a BSP machine needs at least one processor");
        Vm {
            p,
            fuel: bsml_eval::bigstep::DEFAULT_FUEL,
            max_call_depth: 100_000,
        }
    }

    /// Overrides the instruction budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Vm {
        self.fuel = fuel;
        self
    }

    /// Runs a compiled program to a value.
    ///
    /// # Errors
    ///
    /// See [`EvalError`] (the same failure universe as the
    /// tree-walking evaluator).
    pub fn run(&self, program: &Program) -> Result<MValue, EvalError> {
        let mut st = State {
            p: self.p,
            fuel: self.fuel,
            max_frames: self.max_call_depth,
            program,
        };
        st.run_block(program.entry, MEnv::new(), Mode::Global)
    }
}

struct State<'a> {
    p: usize,
    fuel: u64,
    max_frames: u32,
    program: &'a Program,
}

impl State<'_> {
    fn tick(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Runs a code block to its value (a fresh frame stack; used for
    /// the entry point and for nested calls made by primitives).
    fn run_block(&mut self, code: CodeRef, env: MEnv, mode: Mode) -> Result<MValue, EvalError> {
        let mut frames: Vec<Frame> = Vec::new();
        let mut cur = Frame {
            code,
            pc: 0,
            env,
            mode,
        };
        let mut stack: Vec<MValue> = Vec::new();

        loop {
            let block = self.program.block(cur.code);
            if cur.pc >= block.len() {
                panic!("fell off code block {:?} without Return", cur.code);
            }
            self.tick()?;
            let instr = &block[cur.pc];
            cur.pc += 1;
            match instr {
                Instr::Const(k) => stack.push(match k {
                    Const::Int(n) => MValue::Int(*n),
                    Const::Bool(b) => MValue::Bool(*b),
                    Const::Unit => MValue::Unit,
                }),
                Instr::PushNoComm => stack.push(MValue::NoComm),
                Instr::Access(n) => {
                    let v = cur
                        .env
                        .get(*n)
                        .unwrap_or_else(|| panic!("bad de Bruijn index {n}"))
                        .clone();
                    stack.push(v);
                }
                Instr::Closure(code) => stack.push(MValue::Closure {
                    code: *code,
                    env: cur.env.clone(),
                }),
                Instr::Prim(op) => stack.push(MValue::Prim(*op)),
                Instr::MakePair => {
                    let b = stack.pop().expect("MakePair rhs");
                    let a = stack.pop().expect("MakePair lhs");
                    stack.push(MValue::pair(a, b));
                }
                Instr::MakeInl => {
                    let v = stack.pop().expect("MakeInl");
                    stack.push(MValue::Inl(Rc::new(v)));
                }
                Instr::MakeInr => {
                    let v = stack.pop().expect("MakeInr");
                    stack.push(MValue::Inr(Rc::new(v)));
                }
                Instr::MakeNil => stack.push(MValue::Nil),
                Instr::MakeCons => {
                    let t = stack.pop().expect("MakeCons tail");
                    let h = stack.pop().expect("MakeCons head");
                    stack.push(MValue::Cons(Rc::new(h), Rc::new(t)));
                }
                Instr::Bind => {
                    let v = stack.pop().expect("Bind");
                    cur.env = cur.env.push(v);
                }
                Instr::Unbind => cur.env = cur.env.pop(),
                Instr::Apply | Instr::TailApply => {
                    let arg = stack.pop().expect("Apply arg");
                    let f = stack.pop().expect("Apply fn");
                    let tail = matches!(instr, Instr::TailApply);
                    match self.prepare_call(f, arg, cur.mode)? {
                        Callee::Jump(code, env) => {
                            if tail {
                                cur = Frame {
                                    code,
                                    pc: 0,
                                    env,
                                    mode: cur.mode,
                                };
                            } else {
                                if frames.len() as u32 >= self.max_frames {
                                    return Err(EvalError::RecursionLimit);
                                }
                                let mode = cur.mode;
                                frames.push(std::mem::replace(
                                    &mut cur,
                                    Frame {
                                        code,
                                        pc: 0,
                                        env,
                                        mode,
                                    },
                                ));
                            }
                        }
                        Callee::Done(v) => {
                            if tail {
                                match frames.pop() {
                                    Some(f2) => {
                                        cur = f2;
                                        stack.push(v);
                                    }
                                    None => return Ok(v),
                                }
                            } else {
                                stack.push(v);
                            }
                        }
                    }
                }
                Instr::Return => {
                    let v = stack.pop().expect("Return value");
                    match frames.pop() {
                        Some(f2) => {
                            cur = f2;
                            stack.push(v);
                        }
                        None => return Ok(v),
                    }
                }
                Instr::Branch(tb, eb, tail) => {
                    let c = stack.pop().expect("Branch scrutinee");
                    let target = match c {
                        MValue::Bool(true) => *tb,
                        MValue::Bool(false) => *eb,
                        v => return Err(EvalError::ScrutineeMismatch("if", v.to_string())),
                    };
                    self.enter_block(&mut frames, &mut cur, target, None, *tail)?;
                }
                Instr::CaseJump(lb, rb, tail) => {
                    let s = stack.pop().expect("CaseJump scrutinee");
                    let (target, payload) = match s {
                        MValue::Inl(v) => (*lb, (*v).clone()),
                        MValue::Inr(v) => (*rb, (*v).clone()),
                        v => return Err(EvalError::ScrutineeMismatch("case", v.to_string())),
                    };
                    self.enter_block(&mut frames, &mut cur, target, Some(vec![payload]), *tail)?;
                }
                Instr::MatchJump(nb, cb, tail) => {
                    let s = stack.pop().expect("MatchJump scrutinee");
                    match s {
                        MValue::Nil => {
                            self.enter_block(&mut frames, &mut cur, *nb, None, *tail)?;
                        }
                        MValue::Cons(h, t) => {
                            // Head pushed first: tail is slot 0.
                            self.enter_block(
                                &mut frames,
                                &mut cur,
                                *cb,
                                Some(vec![(*h).clone(), (*t).clone()]),
                                *tail,
                            )?;
                        }
                        v => return Err(EvalError::ScrutineeMismatch("match", v.to_string())),
                    }
                }
                Instr::IfAtJump(tb, eb, tail) => {
                    if let Mode::OnProc(_) = cur.mode {
                        return Err(EvalError::NestedParallelism);
                    }
                    let n = stack.pop().expect("IfAt pid");
                    let v = stack.pop().expect("IfAt vector");
                    let idx = match n {
                        MValue::Int(i) => i,
                        v => return Err(EvalError::ScrutineeMismatch("at", v.to_string())),
                    };
                    let bools = match v {
                        MValue::Vector(vs) => vs,
                        v => return Err(EvalError::ScrutineeMismatch("if‥at‥", v.to_string())),
                    };
                    if idx < 0 || idx as usize >= self.p {
                        return Err(EvalError::PidOutOfRange(idx, self.p));
                    }
                    let chosen = match bools.get(idx as usize) {
                        Some(MValue::Bool(b)) => *b,
                        Some(v) => {
                            return Err(EvalError::ScrutineeMismatch("if‥at‥", v.to_string()))
                        }
                        None => return Err(EvalError::PidOutOfRange(idx, self.p)),
                    };
                    let target = if chosen { *tb } else { *eb };
                    self.enter_block(&mut frames, &mut cur, target, None, *tail)?;
                }
            }
        }
    }

    /// Jumps into a sub-block, pushing a return frame (the block ends
    /// in `Return`/`TailApply`, which comes back here or further up).
    fn enter_block(
        &mut self,
        frames: &mut Vec<Frame>,
        cur: &mut Frame,
        target: CodeRef,
        bindings: Option<Vec<MValue>>,
        tail: bool,
    ) -> Result<(), EvalError> {
        let mut env = cur.env.clone();
        if let Some(bs) = bindings {
            for b in bs {
                env = env.push(b);
            }
        }
        let mode = cur.mode;
        let next = Frame {
            code: target,
            pc: 0,
            env,
            mode,
        };
        if tail {
            // Tail position: the block finishes the current frame.
            *cur = next;
        } else {
            if frames.len() as u32 >= self.max_frames {
                return Err(EvalError::RecursionLimit);
            }
            frames.push(std::mem::replace(cur, next));
        }
        Ok(())
    }

    /// Calls a function value with an argument, outside the main
    /// dispatch loop (used by primitives).
    fn call(&mut self, f: MValue, arg: MValue, mode: Mode) -> Result<MValue, EvalError> {
        match self.prepare_call(f, arg, mode)? {
            Callee::Done(v) => Ok(v),
            Callee::Jump(code, env) => self.run_block(code, env, mode),
        }
    }

    /// Resolves a call: primitives and tables compute immediately,
    /// closures yield a jump target.
    fn prepare_call(&mut self, f: MValue, arg: MValue, mode: Mode) -> Result<Callee, EvalError> {
        match f {
            MValue::Closure { code, env } => Ok(Callee::Jump(code, env.push(arg))),
            MValue::Prim(op) => Ok(Callee::Done(self.delta(op, arg, mode)?)),
            MValue::MsgTable(table) => match arg {
                MValue::Int(j) if j >= 0 && (j as usize) < table.len() => {
                    Ok(Callee::Done(table[j as usize].clone()))
                }
                MValue::Int(_) => Ok(Callee::Done(MValue::NoComm)),
                v => Err(EvalError::ScrutineeMismatch(
                    "delivered-messages function",
                    v.to_string(),
                )),
            },
            MValue::Fix(inner) => {
                let unrolled = self.unroll_fix(&inner, mode)?;
                self.prepare_call(unrolled, arg, mode)
            }
            v => Err(EvalError::NotAFunction(v.to_string())),
        }
    }

    fn unroll_fix(&mut self, f: &MValue, mode: Mode) -> Result<MValue, EvalError> {
        self.tick()?;
        match f {
            MValue::Closure { code, env } => {
                let env = env.push(MValue::Fix(Rc::new(f.clone())));
                self.run_block(*code, env, mode)
            }
            other => self.call(other.clone(), MValue::Fix(Rc::new(other.clone())), mode),
        }
    }

    fn check_local(&self, v: &MValue) -> Result<(), EvalError> {
        if v.contains_vector() {
            Err(EvalError::NestedParallelism)
        } else {
            Ok(())
        }
    }

    /// The δ-rules on machine values (mirrors the big-step
    /// evaluator's table).
    #[allow(clippy::too_many_lines)]
    fn delta(&mut self, op: Op, arg: MValue, mode: Mode) -> Result<MValue, EvalError> {
        use MValue::*;
        if op.is_parallel() {
            if let Mode::OnProc(_) = mode {
                return Err(EvalError::NestedParallelism);
            }
        }
        let mismatch = |v: MValue| Err(EvalError::DeltaMismatch(op, v.to_string()));
        match op {
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => match arg {
                Pair(a, b) => match (&*a, &*b) {
                    (Int(x), Int(y)) => {
                        let r = match op {
                            Op::Add => x.wrapping_add(*y),
                            Op::Sub => x.wrapping_sub(*y),
                            Op::Mul => x.wrapping_mul(*y),
                            Op::Div | Op::Mod => {
                                if *y == 0 {
                                    return Err(EvalError::DivisionByZero);
                                }
                                if op == Op::Div {
                                    x.wrapping_div(*y)
                                } else {
                                    x.wrapping_rem(*y)
                                }
                            }
                            _ => unreachable!(),
                        };
                        Ok(Int(r))
                    }
                    _ => mismatch(Pair(a, b)),
                },
                v => mismatch(v),
            },
            Op::Lt | Op::Le | Op::Gt | Op::Ge => match arg {
                Pair(a, b) => match (&*a, &*b) {
                    (Int(x), Int(y)) => Ok(Bool(match op {
                        Op::Lt => x < y,
                        Op::Le => x <= y,
                        Op::Gt => x > y,
                        Op::Ge => x >= y,
                        _ => unreachable!(),
                    })),
                    _ => mismatch(Pair(a, b)),
                },
                v => mismatch(v),
            },
            Op::Eq => match arg {
                Pair(a, b) => match a.try_eq(&b) {
                    Some(r) => Ok(Bool(r)),
                    None => mismatch(Pair(a, b)),
                },
                v => mismatch(v),
            },
            Op::And | Op::Or => match arg {
                Pair(a, b) => match (&*a, &*b) {
                    (Bool(x), Bool(y)) => Ok(Bool(if op == Op::And { *x && *y } else { *x || *y })),
                    _ => mismatch(Pair(a, b)),
                },
                v => mismatch(v),
            },
            Op::Not => match arg {
                Bool(b) => Ok(Bool(!b)),
                v => mismatch(v),
            },
            Op::Fst => match arg {
                Pair(a, _) => Ok((*a).clone()),
                v => mismatch(v),
            },
            Op::Snd => match arg {
                Pair(_, b) => Ok((*b).clone()),
                v => mismatch(v),
            },
            Op::Fix => {
                if arg.is_function() {
                    self.unroll_fix(&arg, mode)
                } else {
                    mismatch(arg)
                }
            }
            Op::Nc => match arg {
                Unit => Ok(NoComm),
                v => mismatch(v),
            },
            Op::Isnc => Ok(Bool(matches!(arg, NoComm))),
            Op::BspP => match arg {
                Unit => Ok(Int(self.p as i64)),
                v => mismatch(v),
            },
            Op::Ref => {
                self.check_local(&arg)?;
                Ok(MValue::Cell {
                    cell: Rc::new(std::cell::RefCell::new(arg)),
                    origin: mode,
                })
            }
            Op::Deref => match arg {
                Cell { cell, origin } => {
                    match (origin, mode) {
                        (Mode::Global, _) => {}
                        (Mode::OnProc(j), Mode::OnProc(k)) if j == k => {}
                        (Mode::OnProc(_), _) => {
                            return Err(EvalError::IncoherentReplicas(
                                "dereferencing a processor-local cell \
                                 outside its owning processor",
                            ))
                        }
                    }
                    Ok(cell.borrow().clone())
                }
                v => mismatch(v),
            },
            Op::Assign => match arg {
                Pair(r, v) => match &*r {
                    Cell { cell, origin } => {
                        match (origin, mode) {
                            (Mode::Global, Mode::Global) => {}
                            (Mode::OnProc(j), Mode::OnProc(k)) if *j == k => {}
                            (Mode::Global, Mode::OnProc(_)) => {
                                return Err(EvalError::IncoherentReplicas(
                                    "assigning a replicated (global) cell inside \
                                     a parallel vector component would \
                                     desynchronize its replicas",
                                ))
                            }
                            (Mode::OnProc(_), _) => {
                                return Err(EvalError::IncoherentReplicas(
                                    "assigning a processor-local cell outside \
                                     its owning processor",
                                ))
                            }
                        }
                        let new = (*v).clone();
                        self.check_local(&new)?;
                        *cell.borrow_mut() = new;
                        Ok(Unit)
                    }
                    _ => mismatch(Pair(r, v)),
                },
                v => mismatch(v),
            },
            Op::Mkpar => {
                if !arg.is_function() {
                    return mismatch(arg);
                }
                let mut vs = Vec::with_capacity(self.p);
                for i in 0..self.p {
                    let v = self.call(arg.clone(), Int(i as i64), Mode::OnProc(i))?;
                    self.check_local(&v)?;
                    vs.push(v);
                }
                Ok(MValue::vector(vs))
            }
            Op::Apply => match arg {
                Pair(fs, vs) => match (&*fs, &*vs) {
                    (Vector(fs), Vector(vs)) if fs.len() == vs.len() => {
                        let mut out = Vec::with_capacity(fs.len());
                        for i in 0..fs.len() {
                            let v = self.call(fs[i].clone(), vs[i].clone(), Mode::OnProc(i))?;
                            self.check_local(&v)?;
                            out.push(v);
                        }
                        Ok(MValue::vector(out))
                    }
                    _ => mismatch(Pair(fs, vs)),
                },
                v => mismatch(v),
            },
            Op::Put => match arg {
                Vector(fs) if fs.len() == self.p => {
                    let mut messages: Vec<Vec<MValue>> = Vec::with_capacity(self.p);
                    for (j, f) in fs.iter().enumerate() {
                        let mut row = Vec::with_capacity(self.p);
                        for i in 0..self.p {
                            let v = self.call(f.clone(), Int(i as i64), Mode::OnProc(j))?;
                            self.check_local(&v)?;
                            row.push(v);
                        }
                        messages.push(row);
                    }
                    let out = (0..self.p)
                        .map(|i| {
                            let table: Vec<MValue> =
                                messages.iter().map(|row| row[i].clone()).collect();
                            MValue::MsgTable(Rc::new(table))
                        })
                        .collect();
                    Ok(MValue::Vector(Rc::new(out)))
                }
                v => mismatch(v),
            },
        }
    }
}

enum Callee {
    Jump(CodeRef, MEnv),
    Done(MValue),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use bsml_syntax::parse;

    fn run(src: &str, p: usize) -> String {
        let e = parse(src).expect("parse");
        let program = compile(&e).expect("compile");
        Vm::new(p)
            .run(&program)
            .unwrap_or_else(|err| panic!("`{src}`: {err}"))
            .to_string()
    }

    fn run_err(src: &str, p: usize) -> EvalError {
        let e = parse(src).expect("parse");
        let program = compile(&e).expect("compile");
        Vm::new(p).run(&program).expect_err("expected an error")
    }

    #[test]
    fn arithmetic_and_control() {
        assert_eq!(run("1 + 2 * 3", 1), "7");
        assert_eq!(run("if 1 < 2 then 10 else 20", 1), "10");
        assert_eq!(run("let x = 6 in x * 7", 1), "42");
        assert_eq!(run("(fun x -> x + x) 21", 1), "42");
    }

    #[test]
    fn recursion_and_tail_calls() {
        assert_eq!(
            run(
                "let rec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 10",
                1
            ),
            "3628800"
        );
        // A million tail-recursive iterations in constant frames.
        assert_eq!(
            run(
                "let rec go acc n = if n = 0 then acc else go (acc + n) (n - 1) in
                 go 0 1000",
                1
            ),
            "500500"
        );
    }

    #[test]
    fn deep_tail_loops_do_not_grow_frames() {
        let e = parse("let rec go n = if n = 0 then 0 else go (n - 1) in go 200000").unwrap();
        let program = compile(&e).unwrap();
        assert_eq!(Vm::new(1).run(&program).unwrap().to_string(), "0");
    }

    #[test]
    fn sums_lists_pairs() {
        assert_eq!(run("fst (1, 2) + snd (3, 4)", 1), "5");
        assert_eq!(run("case inl 3 of inl a -> a + 1 | inr b -> b", 1), "4");
        assert_eq!(
            run("match [1; 2; 3] with [] -> 0 | h :: t -> h * 100", 1),
            "100"
        );
        assert_eq!(run("isnc (nc ())", 1), "true");
    }

    #[test]
    fn parallel_primitives() {
        assert_eq!(run("mkpar (fun i -> i * i)", 4), "<|0, 1, 4, 9|>");
        assert_eq!(
            run(
                "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i * 10))",
                3
            ),
            "<|0, 11, 22|>"
        );
        assert_eq!(
            run(
                "let r = put (mkpar (fun j -> fun d -> j * 100 + d)) in
                 apply (r, mkpar (fun i -> 1))",
                3
            ),
            "<|100, 101, 102|>"
        );
        assert_eq!(run("if mkpar (fun i -> i = 1) at 1 then 5 else 6", 2), "5");
    }

    #[test]
    fn references_and_loops() {
        assert_eq!(
            run(
                "let acc = ref 0 in
                 (for k = 1 to 10 do acc := !acc + k done);
                 !acc",
                1
            ),
            "55"
        );
        assert_eq!(
            run("mkpar (fun i -> let c = ref i in c := !c * 2; !c)", 3),
            "<|0, 2, 4|>"
        );
    }

    #[test]
    fn dynamic_nesting_is_caught() {
        assert_eq!(
            run_err("mkpar (fun pid -> let v = mkpar (fun i -> i) in pid)", 2),
            EvalError::NestedParallelism
        );
    }

    #[test]
    fn runtime_errors_match_the_evaluator() {
        assert_eq!(run_err("1 / 0", 1), EvalError::DivisionByZero);
        assert!(matches!(run_err("1 2", 1), EvalError::NotAFunction(_)));
        assert!(matches!(
            run_err("1 + true", 1),
            EvalError::DeltaMismatch(Op::Add, _)
        ));
    }

    #[test]
    fn out_of_fuel() {
        let e = parse("let rec loop x = loop x in loop 0").unwrap();
        let program = compile(&e).unwrap();
        assert!(matches!(
            Vm::new(1).with_fuel(10_000).run(&program),
            Err(EvalError::OutOfFuel)
        ));
    }
}
