//! Constraint-carrying polymorphic type inference for mini-BSML — the
//! paper's §4, as an executable algorithm.
//!
//! The inference engine is Damas–Milner extended along the paper's
//! three axes:
//!
//! 1. every type introduction carries its *basic constraints* `C_τ`
//!    (rule *(Fun)*, and Definition 1 at every substitution),
//! 2. the initial environment `TC` (Figure 6) equips the primitives
//!    with constrained schemes (`mkpar : ∀α.[(int→α)→α par / L(α)]`,
//!    `fst : ∀αβ.[(α*β)→α / L(α)⇒L(β)]`, …),
//! 3. the rules *(Let)* and *(Ifat)* add their locality side
//!    conditions `L(τ₂) ⇒ L(τ₁)` and `L(τ) ⇒ False`.
//!
//! Whenever the accumulated constraint *solves to `False`* the program
//! is rejected — this is what catches all of §2.1's examples, nested
//! vectors invisible in the plain ML type included.
//!
//! ```
//! use bsml_infer::infer;
//! use bsml_syntax::parse;
//!
//! // Figure 9: fst (mkpar (fun i -> i), 1) is accepted at `int par`…
//! let ok = infer(&parse("fst (mkpar (fun i -> i), 1)")?)?;
//! assert_eq!(ok.ty.to_string(), "int par");
//!
//! // …Figure 10: fst (1, mkpar (fun i -> i)) is rejected.
//! assert!(infer(&parse("fst (1, mkpar (fun i -> i))")?).is_err());
//!
//! // example2: the nesting invisible in the ML type is rejected too.
//! let e2 = parse("mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)")?;
//! assert!(infer(&e2).is_err());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod derivation;
pub mod env;
pub mod error;
pub mod infer;

pub use derivation::Derivation;
pub use env::{initial_env, TypeEnv};
pub use error::TypeError;
pub use infer::{infer, infer_in, Inference, Inferencer};
