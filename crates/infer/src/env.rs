//! Typing environments and the initial environment `TC` (Figure 6).

use std::collections::BTreeMap;
use std::fmt;

use bsml_ast::{Const, Ident, Op};
use bsml_types::{Constraint, Scheme, Subst, TyVar, Type};

/// A typing environment `E`: identifiers to type schemes.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    map: BTreeMap<Ident, Scheme>,
}

impl TypeEnv {
    /// The empty environment `∅`.
    #[must_use]
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// `E + {x : σ}` — extension, replacing any previous binding.
    #[must_use]
    pub fn extend(&self, x: Ident, scheme: Scheme) -> TypeEnv {
        let mut map = self.map.clone();
        map.insert(x, scheme);
        TypeEnv { map }
    }

    /// Looks up a variable's scheme.
    #[must_use]
    pub fn lookup(&self, x: &Ident) -> Option<&Scheme> {
        self.map.get(x)
    }

    /// `Dom(E)`.
    pub fn domain(&self) -> impl Iterator<Item = &Ident> {
        self.map.keys()
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` for `∅`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `F(E)` — free type variables of all bound schemes.
    #[must_use]
    pub fn free_vars(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        for scheme in self.map.values() {
            for v in scheme.free_vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Every variable mentioned anywhere in the environment,
    /// quantified ones included (see [`Scheme::all_vars`]).
    #[must_use]
    pub fn all_vars(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        for scheme in self.map.values() {
            for v in scheme.all_vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Point-to-point substitution on the environment (Definition 1
    /// applied to every scheme).
    #[must_use]
    pub fn apply_subst(&self, phi: &Subst) -> TypeEnv {
        if phi.is_empty() {
            return self.clone();
        }
        TypeEnv {
            map: self
                .map
                .iter()
                .map(|(x, s)| (x.clone(), s.apply_subst(phi)))
                .collect(),
        }
    }
}

impl fmt::Display for TypeEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (x, s)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{x} : {s}")?;
        }
        f.write_str("}")
    }
}

/// The type scheme `TC(c)` of a constant (Figure 6).
#[must_use]
pub fn const_scheme(c: Const) -> Scheme {
    match c {
        Const::Int(_) => Scheme::mono(Type::Int),
        Const::Bool(_) => Scheme::mono(Type::Bool),
        Const::Unit => Scheme::mono(Type::Unit),
    }
}

/// The type scheme `TC(op)` of a primitive operator (Figure 6).
///
/// Quantified variables use the fixed names `'a = TyVar(0)` and
/// `'b = TyVar(1)`; instantiation renames them freshly.
#[must_use]
pub fn op_scheme(op: Op) -> Scheme {
    let a = Type::var(0);
    let b = Type::var(1);
    let la = || Constraint::loc(a.clone());
    let lb = || Constraint::loc(b.clone());
    match op {
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
            Scheme::mono(Type::arrow(Type::pair(Type::Int, Type::Int), Type::Int))
        }
        Op::Lt | Op::Le | Op::Gt | Op::Ge => {
            Scheme::mono(Type::arrow(Type::pair(Type::Int, Type::Int), Type::Bool))
        }
        // Structural equality is restricted to local values.
        Op::Eq => Scheme::close(
            Type::arrow(Type::pair(a.clone(), a.clone()), Type::Bool),
            la(),
        ),
        Op::And | Op::Or => {
            Scheme::mono(Type::arrow(Type::pair(Type::Bool, Type::Bool), Type::Bool))
        }
        Op::Not => Scheme::mono(Type::arrow(Type::Bool, Type::Bool)),
        // TC(fst) = ∀αβ.[(α*β) → α / L(α) ⇒ L(β)]
        Op::Fst => Scheme::close(
            Type::arrow(Type::pair(a.clone(), b.clone()), a.clone()),
            Constraint::implies(la(), lb()),
        ),
        // TC(snd) = ∀αβ.[(α*β) → β / L(β) ⇒ L(α)]
        Op::Snd => Scheme::close(
            Type::arrow(Type::pair(a.clone(), b.clone()), b.clone()),
            Constraint::implies(lb(), la()),
        ),
        // TC(fix) = ∀α.(α→α)→α
        Op::Fix => Scheme::close(
            Type::arrow(Type::arrow(a.clone(), a.clone()), a.clone()),
            Constraint::True,
        ),
        // TC(nc) = ∀α.unit→α
        Op::Nc => Scheme::close(Type::arrow(Type::Unit, a.clone()), Constraint::True),
        // TC(isnc) = ∀α.[α→bool / L(α)]
        Op::Isnc => Scheme::close(Type::arrow(a.clone(), Type::Bool), la()),
        // TC(mkpar) = ∀α.[(int→α)→(α par) / L(α)]
        Op::Mkpar => Scheme::close(
            Type::arrow(Type::arrow(Type::Int, a.clone()), Type::par(a.clone())),
            la(),
        ),
        // TC(apply) = ∀αβ.[((α→β) par * (α par)) → (β par) / L(α)∧L(β)]
        Op::Apply => Scheme::close(
            Type::arrow(
                Type::pair(
                    Type::par(Type::arrow(a.clone(), b.clone())),
                    Type::par(a.clone()),
                ),
                Type::par(b.clone()),
            ),
            Constraint::and(la(), lb()),
        ),
        // TC(put) = ∀α.[(int→α) par → (int→α) par / L(α)]
        Op::Put => Scheme::close(
            Type::arrow(
                Type::par(Type::arrow(Type::Int, a.clone())),
                Type::par(Type::arrow(Type::Int, a.clone())),
            ),
            la(),
        ),
        Op::BspP => Scheme::mono(Type::arrow(Type::Unit, Type::Int)),
        // §6 imperative extension: reference cells hold local values
        // only (a cell containing a vector would hide global data
        // behind a mutable local handle).
        Op::Ref => Scheme::close(Type::arrow(a.clone(), Type::reference(a.clone())), la()),
        Op::Deref => Scheme::close(Type::arrow(Type::reference(a.clone()), a.clone()), la()),
        Op::Assign => Scheme::close(
            Type::arrow(
                Type::pair(Type::reference(a.clone()), a.clone()),
                Type::Unit,
            ),
            la(),
        ),
    }
}

/// The initial typing environment: empty — constants and operators are
/// typed directly through [`const_scheme`] and [`op_scheme`], matching
/// the paper's *(Const)* and *(Op)* rules.
#[must_use]
pub fn initial_env() -> TypeEnv {
    TypeEnv::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_types::{Solution, TyVarGen};

    #[test]
    fn figure6_table_renders_as_in_the_paper() {
        assert_eq!(op_scheme(Op::Add).to_string(), "int * int -> int");
        assert_eq!(
            op_scheme(Op::Fst).to_string(),
            "∀'a 'b.['a * 'b -> 'a / L('a) ⇒ L('b)]"
        );
        assert_eq!(
            op_scheme(Op::Snd).to_string(),
            "∀'a 'b.['a * 'b -> 'b / L('b) ⇒ L('a)]"
        );
        assert_eq!(op_scheme(Op::Fix).to_string(), "∀'a.[('a -> 'a) -> 'a]");
        assert_eq!(op_scheme(Op::Nc).to_string(), "∀'a.[unit -> 'a]");
        assert_eq!(op_scheme(Op::Isnc).to_string(), "∀'a.['a -> bool / L('a)]");
        assert_eq!(
            op_scheme(Op::Mkpar).to_string(),
            "∀'a.[(int -> 'a) -> 'a par / L('a)]"
        );
        assert_eq!(
            op_scheme(Op::Apply).to_string(),
            "∀'a 'b.[('a -> 'b) par * 'a par -> 'b par / L('a) ∧ L('b)]"
        );
        assert_eq!(
            op_scheme(Op::Put).to_string(),
            "∀'a.[(int -> 'a) par -> (int -> 'a) par / L('a)]"
        );
        assert_eq!(op_scheme(Op::BspP).to_string(), "unit -> int");
    }

    #[test]
    fn const_schemes() {
        assert_eq!(const_scheme(Const::Int(7)).ty(), &Type::Int);
        assert_eq!(const_scheme(Const::Bool(true)).ty(), &Type::Bool);
        assert_eq!(const_scheme(Const::Unit).ty(), &Type::Unit);
    }

    #[test]
    fn every_op_has_a_well_formed_scheme() {
        for op in Op::ALL {
            let s = op_scheme(op);
            // The scheme's own constraint must not be absurd.
            assert_ne!(
                s.constraint().solve(),
                Solution::False,
                "scheme of {op} is absurd"
            );
            // All schemes in TC are closed.
            assert!(s.free_vars().is_empty(), "scheme of {op} has free vars");
        }
    }

    #[test]
    fn mkpar_instantiated_at_par_is_absurd() {
        // The key property: mkpar cannot produce a vector of vectors.
        let mut gen = TyVarGen::starting_at(100);
        let (ty, c) = op_scheme(Op::Mkpar).instantiate(&mut gen);
        let alpha = ty.free_vars()[0];
        let phi = Subst::singleton(alpha, Type::par(Type::Int));
        let (_, c2) = phi.apply_constrained(&ty, &c);
        assert_eq!(c2.solve(), Solution::False);
    }

    #[test]
    fn env_extension_and_lookup() {
        let env = TypeEnv::new().extend(Ident::new("x"), Scheme::mono(Type::Int));
        assert_eq!(env.lookup(&Ident::new("x")).unwrap().ty(), &Type::Int);
        assert!(env.lookup(&Ident::new("y")).is_none());
        assert_eq!(env.len(), 1);
        let env2 = env.extend(Ident::new("x"), Scheme::mono(Type::Bool));
        assert_eq!(env2.lookup(&Ident::new("x")).unwrap().ty(), &Type::Bool);
        assert_eq!(env2.len(), 1);
    }

    #[test]
    fn env_free_vars_and_subst() {
        let env = TypeEnv::new().extend(Ident::new("x"), Scheme::mono(Type::var(3)));
        assert_eq!(env.free_vars(), vec![TyVar(3)]);
        let env2 = env.apply_subst(&Subst::singleton(TyVar(3), Type::Int));
        assert_eq!(env2.lookup(&Ident::new("x")).unwrap().ty(), &Type::Int);
    }

    #[test]
    fn env_display() {
        let env = TypeEnv::new().extend(Ident::new("x"), Scheme::mono(Type::Int));
        assert_eq!(env.to_string(), "{x : int}");
        assert_eq!(TypeEnv::new().to_string(), "{}");
    }
}
