//! Typing-derivation trees.
//!
//! The inference engine can record the derivation it builds; rendering
//! one reproduces the paper's Figures 8–10 (hand-drawn there,
//! mechanical here).

use std::fmt;

use bsml_types::{Constraint, Subst, Type};

/// One node of a typing derivation: a rule application with its
/// conclusion judgment and premises.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// The rule name, e.g. `"(App)"`, `"(Let)"`, `"(Op)"`.
    pub rule: &'static str,
    /// Pretty form of the subject expression (possibly elided).
    pub expr: String,
    /// The inferred simple type.
    pub ty: Type,
    /// The constraint attached to the judgment.
    pub constraint: Constraint,
    /// Premise derivations, left to right.
    pub premises: Vec<Derivation>,
}

impl Derivation {
    /// Creates a leaf node.
    #[must_use]
    pub fn leaf(rule: &'static str, expr: String, ty: Type, constraint: Constraint) -> Self {
        Derivation {
            rule,
            expr,
            ty,
            constraint,
            premises: Vec::new(),
        }
    }

    /// Refines every judgment in the tree with the final substitution
    /// (inference discovers instantiations top-down; applying the
    /// final substitution makes all judgments display their ground
    /// refinements, as the paper's figures do).
    #[must_use]
    pub fn apply_subst(&self, phi: &Subst) -> Derivation {
        Derivation {
            rule: self.rule,
            expr: self.expr.clone(),
            ty: phi.apply(&self.ty),
            constraint: phi.apply_constraint(&self.constraint),
            premises: self.premises.iter().map(|d| d.apply_subst(phi)).collect(),
        }
    }

    /// Number of rule applications in the tree.
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.premises.iter().map(Derivation::size).sum::<usize>()
    }

    /// The judgment line of this node, `⊢ e : [τ / C]`.
    #[must_use]
    pub fn judgment(&self) -> String {
        if self.constraint == Constraint::True {
            format!("⊢ {} : {}", self.expr, self.ty)
        } else {
            format!("⊢ {} : [{} / {}]", self.expr, self.ty, self.constraint)
        }
    }

    /// Renders the tree with premises indented above their conclusion
    /// (natural-deduction style, root last):
    ///
    /// ```text
    ///     (Const) ⊢ 1 : int
    ///     (Op) ⊢ (+) : int * int -> int
    ///   (App) ⊢ 1 + 1 : int
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for premise in &self.premises {
            premise.render_into(out, depth + 1);
        }
        out.push_str(&"  ".repeat(depth));
        out.push_str(self.rule);
        out.push(' ');
        out.push_str(&self.judgment());
        out.push('\n');
    }

    /// Renders the derivation as a LaTeX proof tree using the
    /// `\inferrule` macro of the `mathpartir` package — the format
    /// the paper's own Figures 8–10 are typeset in.
    ///
    /// ```text
    /// \inferrule*[Left=App]
    ///   {\inferrule*[Left=Op]{ }{\vdash \mathtt{fst} : …} \\ …}
    ///   {\vdash … : …}
    /// ```
    #[must_use]
    pub fn to_latex(&self) -> String {
        let mut out = String::new();
        self.latex_into(&mut out, 0);
        out
    }

    fn latex_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let rule_name = self.rule.trim_matches(|c| c == '(' || c == ')');
        out.push_str(&format!("{pad}\\inferrule*[Left={rule_name}]\n"));
        if self.premises.is_empty() {
            out.push_str(&format!("{pad}  {{ }}\n"));
        } else {
            out.push_str(&format!("{pad}  {{\n"));
            for (i, premise) in self.premises.iter().enumerate() {
                premise.latex_into(out, depth + 2);
                if i + 1 < self.premises.len() {
                    out.push_str(&format!("{pad}    \\\\\n"));
                }
            }
            out.push_str(&format!("{pad}  }}\n"));
        }
        out.push_str(&format!(
            "{pad}  {{\\vdash {} : {}}}\n",
            latex_escape(&self.expr),
            latex_escape(&if self.constraint == Constraint::True {
                self.ty.to_string()
            } else {
                format!("[{} / {}]", self.ty, self.constraint)
            })
        ));
    }
}

/// Escapes mini-BSML/type text for LaTeX math mode.
fn latex_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 16);
    for c in s.chars() {
        match c {
            '_' => out.push_str("\\_"),
            '{' => out.push_str("\\{"),
            '}' => out.push_str("\\}"),
            '∀' => out.push_str("\\forall "),
            '⇒' => out.push_str("\\Rightarrow "),
            '∧' => out.push_str("\\wedge "),
            '→' => out.push_str("\\to "),
            '…' => out.push_str("\\dots "),
            '\'' => out.push('\''),
            _ => out.push(c),
        }
    }
    // OCaml-style arrows in types.
    out.replace("->", "\\to ")
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Elides an expression rendering to at most `max` characters for
/// derivation display.
#[must_use]
pub fn elide(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let prefix: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{prefix}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_types::Type;

    fn leaf(expr: &str, ty: Type) -> Derivation {
        Derivation::leaf("(Const)", expr.to_string(), ty, Constraint::True)
    }

    #[test]
    fn judgment_elides_true_constraints() {
        let d = leaf("1", Type::Int);
        assert_eq!(d.judgment(), "⊢ 1 : int");
        let d = Derivation::leaf(
            "(Op)",
            "mkpar".to_string(),
            Type::var(0),
            Constraint::loc(Type::var(0)),
        );
        assert_eq!(d.judgment(), "⊢ mkpar : ['a / L('a)]");
    }

    #[test]
    fn render_places_premises_above() {
        let d = Derivation {
            rule: "(App)",
            expr: "1 + 1".to_string(),
            ty: Type::Int,
            constraint: Constraint::True,
            premises: vec![leaf("(+)", Type::Int), leaf("(1, 1)", Type::Int)],
        };
        let r = d.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("(+)"));
        assert!(lines[2].starts_with("(App)"));
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn apply_subst_refines_judgments() {
        let d = leaf("x", Type::var(0));
        let phi = Subst::singleton(bsml_types::TyVar(0), Type::Int);
        assert_eq!(d.apply_subst(&phi).ty, Type::Int);
    }

    #[test]
    fn latex_rendering() {
        let d = Derivation {
            rule: "(App)",
            expr: "1 + 1".to_string(),
            ty: Type::Int,
            constraint: Constraint::True,
            premises: vec![leaf("(+)", Type::arrow(Type::Int, Type::Int))],
        };
        let tex = d.to_latex();
        assert!(tex.contains("\\inferrule*[Left=App]"), "{tex}");
        assert!(tex.contains("\\inferrule*[Left=Const]"), "{tex}");
        assert!(tex.contains("\\vdash 1 + 1 : int"), "{tex}");
        assert!(tex.contains("\\to"), "{tex}");
        // Empty premises render as { }.
        assert!(tex.contains("{ }"), "{tex}");
    }

    #[test]
    fn elide_truncates() {
        assert_eq!(elide("short", 10), "short");
        assert_eq!(elide("a rather long expression", 10), "a rather …");
    }
}
