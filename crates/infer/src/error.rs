//! Type errors.

use std::fmt;

use bsml_ast::{Ident, Span};
use bsml_types::{Constraint, UnifyError};

/// A static typing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// A variable is not in scope.
    Unbound {
        /// The variable.
        name: Ident,
        /// Its occurrence.
        span: Span,
    },
    /// Two types failed to unify.
    Mismatch {
        /// The underlying unification failure.
        cause: UnifyError,
        /// Which syntactic construct demanded the unification.
        context: &'static str,
        /// The offending expression.
        span: Span,
    },
    /// The locality constraints solved to `False` — the expression
    /// would create or hide a nested parallel vector (paper §2.1).
    LocalityViolation {
        /// The typing rule whose side condition failed.
        rule: &'static str,
        /// The constraint that solved to `False`, as accumulated
        /// (before boolean reduction), e.g. `L(int) ⇒ L(int par)`.
        constraint: Constraint,
        /// The offending expression.
        span: Span,
    },
}

impl TypeError {
    /// The source location of the error.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            TypeError::Unbound { span, .. }
            | TypeError::Mismatch { span, .. }
            | TypeError::LocalityViolation { span, .. } => *span,
        }
    }

    /// Renders the error with the offending source line, e.g.
    ///
    /// ```text
    /// type error at 1:1: parallel nesting rejected by rule (Let):
    /// constraint L(int) ⇒ L(int par) is absurd
    ///   mkpar (fun pid -> let this = … in pid)
    ///   ^^^^^
    /// ```
    #[must_use]
    pub fn render(&self, source: &str) -> String {
        let span = self.span();
        let (line, col) = span.line_col(source);
        let mut out = format!("type error at {line}:{col}: {self}");
        if let Some(text) = source.lines().nth(line - 1) {
            out.push_str(&format!("\n  {text}\n  "));
            out.push_str(&" ".repeat(col.saturating_sub(1)));
            let width = (span.len() as usize).clamp(1, text.len() + 1 - col.min(text.len()));
            out.push_str(&"^".repeat(width));
        }
        out
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Unbound { name, .. } => write!(f, "unbound variable `{name}`"),
            TypeError::Mismatch { cause, context, .. } => {
                write!(f, "in {context}: {cause}")
            }
            TypeError::LocalityViolation {
                rule, constraint, ..
            } => write!(
                f,
                "parallel nesting rejected by rule {rule}: \
                 constraint {constraint} is absurd"
            ),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_types::Type;

    #[test]
    fn displays() {
        let e = TypeError::Unbound {
            name: Ident::new("x"),
            span: Span::new(0, 1),
        };
        assert_eq!(e.to_string(), "unbound variable `x`");

        let e = TypeError::LocalityViolation {
            rule: "(Let)",
            constraint: Constraint::implies(
                Constraint::loc(Type::Int),
                Constraint::loc(Type::par(Type::Int)),
            ),
            span: Span::new(0, 5),
        };
        assert!(e.to_string().contains("L(int) ⇒ L(int par)"));
        assert!(e.to_string().contains("(Let)"));
    }

    #[test]
    fn render_includes_source_line() {
        let src = "let x = 1 in y";
        let e = TypeError::Unbound {
            name: Ident::new("y"),
            span: Span::new(13, 14),
        };
        let r = e.render(src);
        assert!(r.contains("1:14"));
        assert!(r.contains(src));
        assert!(r.trim_end().ends_with('^'));
    }

    #[test]
    fn span_accessor() {
        let e = TypeError::Mismatch {
            cause: UnifyError::Mismatch(Type::Int, Type::Bool),
            context: "application",
            span: Span::new(2, 4),
        };
        assert_eq!(e.span(), Span::new(2, 4));
    }
}
