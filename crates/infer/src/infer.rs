//! The inference algorithm (algorithm-W shape) implementing the
//! inductive rules of Figure 7.
//!
//! Every rule:
//!
//! 1. infers its premises threading substitutions, re-applying each
//!    new substitution to earlier judgments **via Definition 1** (so
//!    instantiating a variable with e.g. `int par` conjoins the
//!    image's basic constraints),
//! 2. conjoins the premise constraints plus its own side condition
//!    (*(Fun)*: `C_{τ₁→τ₂}`; *(Let)*: `L(τ₂) ⇒ L(τ₁)`; *(Ifat)*:
//!    `L(τ) ⇒ False`),
//! 3. runs `Solve`; if the constraint is absurd the expression is
//!    rejected with a [`TypeError::LocalityViolation`].
//!
//! The §6 extensions (sums, lists) follow the same pattern; their
//! eliminators carry the *(Let)*-style condition
//! `L(τ_result) ⇒ L(τ_scrutinee)` since they, too, can hide the
//! evaluation of a global value under a local result type.

use bsml_ast::{Expr, ExprKind, Span};
use bsml_obs::Telemetry;
use bsml_types::{
    basic_constraint, unify_counted, Constraint, Scheme, Solution, Subst, TyVarGen, Type,
    UnifyStats,
};

use crate::derivation::{elide, Derivation};
use crate::env::{const_scheme, initial_env, op_scheme, TypeEnv};
use crate::error::TypeError;

/// Maximum characters of expression text kept in derivation nodes.
const ELIDE_AT: usize = 60;

/// The result of a successful inference.
#[derive(Clone, Debug)]
pub struct Inference {
    /// The inferred simple type.
    pub ty: Type,
    /// The accumulated constraint (not `False` — that would have been
    /// an error).
    pub constraint: Constraint,
    /// `Solve`'s canonical form of the constraint.
    pub solution: Solution,
    /// The overall substitution produced by unification.
    pub subst: Subst,
    /// The typing derivation, when recording was requested.
    pub derivation: Option<Derivation>,
}

impl Inference {
    /// The inferred type as a closed toplevel scheme: all variables
    /// quantified, the constraint in `Solve`'s canonical residual
    /// form *restricted to the clauses relevant to the type*
    /// (constraints over forgotten instantiation variables are
    /// independently satisfiable noise), and variables renamed to
    /// the canonical `'a, 'b, …`.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        let relevant = self.solution.restrict(&self.ty.free_vars());
        Scheme::close(self.ty.clone(), relevant.to_constraint()).normalize()
    }
}

/// Infers the type of `e` in the initial environment.
///
/// # Errors
///
/// See [`TypeError`].
///
/// # Example
///
/// ```
/// use bsml_infer::infer;
/// use bsml_syntax::parse;
///
/// let inf = infer(&parse("mkpar (fun i -> i * 2)")?)?;
/// assert_eq!(inf.ty.to_string(), "int par");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn infer(e: &Expr) -> Result<Inference, TypeError> {
    infer_in(&initial_env(), e)
}

/// Infers the type of `e` in a given environment.
///
/// # Errors
///
/// See [`TypeError`].
pub fn infer_in(env: &TypeEnv, e: &Expr) -> Result<Inference, TypeError> {
    Inferencer::new().run(env, e)
}

/// A reusable inference engine.
///
/// # Example
///
/// ```
/// use bsml_infer::{initial_env, Inferencer};
/// use bsml_syntax::parse;
///
/// // Record a derivation tree (the paper's Figures 8–10).
/// let e = parse("fst (mkpar (fun i -> i), 1)")?;
/// let inf = Inferencer::new().with_derivation(true).run(&initial_env(), &e)?;
/// let tree = inf.derivation.unwrap();
/// assert!(tree.render().contains("(App)"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Inferencer {
    gen: TyVarGen,
    record: bool,
    locality: bool,
    telemetry: Telemetry,
}

impl Default for Inferencer {
    fn default() -> Self {
        Inferencer {
            gen: TyVarGen::default(),
            record: false,
            locality: true,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Accumulator threading a substitution through judgments, applying
/// Definition 1 each time it grows.
struct Acc {
    subst: Subst,
    /// Definition 1 on (`false` = plain Damas–Milner ablation).
    locality: bool,
    /// `(type, constraint)` pairs of already-inferred premises.
    items: Vec<(Type, Constraint)>,
}

impl Acc {
    fn new(locality: bool) -> Acc {
        Acc {
            subst: Subst::new(),
            locality,
            items: Vec::new(),
        }
    }

    fn push(&mut self, ty: Type, c: Constraint) -> usize {
        self.items.push((ty, c));
        self.items.len() - 1
    }

    /// Extends the total substitution, refining every stored judgment
    /// through Definition 1 (plain application in the ablation).
    fn extend(&mut self, phi: &Subst) {
        if phi.is_empty() {
            return;
        }
        for (ty, c) in &mut self.items {
            if self.locality {
                let (t2, c2) = phi.apply_constrained(ty, c);
                *ty = t2;
                *c = c2;
            } else {
                *ty = phi.apply(ty);
            }
        }
        self.subst = phi.compose(&self.subst);
    }

    fn ty(&self, i: usize) -> &Type {
        &self.items[i].0
    }

    fn all_constraints(&self) -> Constraint {
        Constraint::conj(self.items.iter().map(|(_, c)| c.clone()))
    }
}

impl Inferencer {
    /// A fresh engine (derivation recording off).
    #[must_use]
    pub fn new() -> Inferencer {
        Inferencer::default()
    }

    /// Enables or disables derivation recording.
    #[must_use]
    pub fn with_derivation(mut self, record: bool) -> Inferencer {
        self.record = record;
        self
    }

    /// Enables or disables the locality-constraint machinery. With
    /// `false` the engine degrades to plain Damas–Milner — exactly
    /// what Objective Caml does, accepting every §2.1 counterexample.
    /// Exists for the ablation benchmarks and to demonstrate what the
    /// paper's system adds.
    #[must_use]
    pub fn with_locality(mut self, locality: bool) -> Inferencer {
        self.locality = locality;
        self
    }

    /// Attaches a telemetry handle. The engine then counts
    /// `infer.unifications`, `infer.occurs_checks`, and
    /// `infer.solver_iterations`, and wraps generalization and
    /// instantiation in spans. A disabled handle (the default) costs
    /// one branch per site.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Inferencer {
        self.telemetry = telemetry;
        self
    }

    /// Drops a constraint in the plain-Damas–Milner ablation.
    fn gate(&self, c: Constraint) -> Constraint {
        if self.locality {
            c
        } else {
            Constraint::True
        }
    }

    /// Runs inference on `e` under `env`.
    ///
    /// # Errors
    ///
    /// See [`TypeError`].
    pub fn run(&mut self, env: &TypeEnv, e: &Expr) -> Result<Inference, TypeError> {
        // Keep fresh variables clear of anything already in the env —
        // including quantified variables, so they stay out of reach
        // of all substitutions built during this run (Definition 1).
        for v in env.all_vars() {
            self.gen.skip_past(&Type::Var(v));
        }
        let (subst, ty, constraint, deriv) = self.w(env, e)?;
        let solution = self.solve(&constraint);
        debug_assert_ne!(solution, Solution::False, "absurdity missed by rule checks");
        Ok(Inference {
            ty,
            constraint,
            solution,
            derivation: deriv.map(|d| d.apply_subst(&subst)),
            subst,
        })
    }

    fn node(
        &self,
        rule: &'static str,
        e: &Expr,
        ty: &Type,
        c: &Constraint,
        premises: Vec<Option<Derivation>>,
    ) -> Option<Derivation> {
        if !self.record {
            return None;
        }
        Some(Derivation {
            rule,
            expr: elide(&e.to_string(), ELIDE_AT),
            ty: ty.clone(),
            constraint: c.clone(),
            premises: premises.into_iter().flatten().collect(),
        })
    }

    /// Runs the constraint solver, feeding its iteration count into
    /// the `infer.solver_iterations` telemetry counter.
    fn solve(&self, c: &Constraint) -> Solution {
        let mut iterations = 0;
        let solution = c.solve_counted(&mut iterations);
        self.telemetry
            .counter_add("infer.solver_iterations", iterations);
        solution
    }

    /// Rejects a judgment whose constraint solves to `False`.
    fn check(&self, rule: &'static str, span: Span, c: &Constraint) -> Result<(), TypeError> {
        if self.locality && self.solve(c) == Solution::False {
            Err(TypeError::LocalityViolation {
                rule,
                constraint: c.clone(),
                span,
            })
        } else {
            Ok(())
        }
    }

    fn unify_at(
        &self,
        a: &Type,
        b: &Type,
        context: &'static str,
        span: Span,
    ) -> Result<Subst, TypeError> {
        let mut stats = UnifyStats::default();
        let result = unify_counted(a, b, &mut stats);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_add("infer.unifications", stats.unifications);
            self.telemetry
                .counter_add("infer.occurs_checks", stats.occurs_checks);
        }
        result.map_err(|cause| TypeError::Mismatch {
            cause,
            context,
            span,
        })
    }

    /// Instantiates `scheme` under an `infer.instantiate` span.
    fn instantiate(&mut self, scheme: &Scheme) -> (Type, Constraint) {
        let mut sp = self.telemetry.span("infer.instantiate");
        let out = scheme.instantiate(&mut self.gen);
        sp.set("quantified", scheme.quantified().len());
        out
    }

    #[allow(clippy::too_many_lines)]
    fn w(
        &mut self,
        env: &TypeEnv,
        e: &Expr,
    ) -> Result<(Subst, Type, Constraint, Option<Derivation>), TypeError> {
        let span = e.span;
        match &e.kind {
            // (Var): instance of the environment scheme.
            ExprKind::Var(x) => {
                let scheme = env.lookup(x).ok_or_else(|| TypeError::Unbound {
                    name: x.clone(),
                    span,
                })?;
                let (ty, c) = self.instantiate(scheme);
                let c = self.gate(c);
                self.check("(Var)", span, &c)?;
                let d = self.node("(Var)", e, &ty, &c, vec![]);
                Ok((Subst::new(), ty, c, d))
            }
            // (Const)
            ExprKind::Const(k) => {
                let (ty, c) = self.instantiate(&const_scheme(*k));
                let c = self.gate(c);
                let d = self.node("(Const)", e, &ty, &c, vec![]);
                Ok((Subst::new(), ty, c, d))
            }
            // (Op)
            ExprKind::Op(op) => {
                let (ty, c) = self.instantiate(&op_scheme(*op));
                let c = self.gate(c);
                self.check("(Op)", span, &c)?;
                let d = self.node("(Op)", e, &ty, &c, vec![]);
                Ok((Subst::new(), ty, c, d))
            }
            // (Fun): E + {x : [τ₁/C₁]} ⊢ e : [τ₂/C₂]
            //        ⟹ fun x → e : [τ₁→τ₂ / C_{τ₁→τ₂} ∧ C₂]
            ExprKind::Fun(x, body) => {
                let alpha = self.gen.fresh_ty();
                let env2 = env.extend(x.clone(), Scheme::mono(alpha.clone()));
                let (s1, t2, c2, d1) = self.w(&env2, body)?;
                let t1 = s1.apply(&alpha);
                let ty = Type::arrow(t1, t2);
                let c = Constraint::and(self.gate(basic_constraint(&ty)), c2);
                self.check("(Fun)", span, &c)?;
                let d = self.node("(Fun)", e, &ty, &c, vec![d1]);
                Ok((s1, ty, c, d))
            }
            // (App)
            ExprKind::App(e1, e2) => {
                let (s1, t1, c1, d1) = self.w(env, e1)?;
                let env1 = env.apply_subst(&s1);
                let (s2, t2, c2, d2) = self.w(&env1, e2)?;

                let mut acc = Acc::new(self.locality);
                acc.subst = s1;
                let i1 = acc.push(t1, c1);
                acc.extend(&s2);
                let i2 = acc.push(t2, c2);
                let beta = self.gen.fresh_ty();
                let ib = acc.push(beta.clone(), Constraint::True);

                let arrow = Type::arrow(acc.ty(i2).clone(), beta);
                let u = self.unify_at(acc.ty(i1), &arrow, "application", span)?;
                acc.extend(&u);

                let ty = acc.ty(ib).clone();
                let c = acc.all_constraints();
                self.check("(App)", span, &c)?;
                let d = self.node("(App)", e, &ty, &c, vec![d1, d2]);
                Ok((acc.subst, ty, c, d))
            }
            // (Let) with generalization (Definition 3) and the side
            // condition L(τ₂) ⇒ L(τ₁).
            ExprKind::Let(x, e1, e2) => {
                let (s1, t1, c1, d1) = self.w(env, e1)?;
                let env1 = env.apply_subst(&s1);
                let scheme = {
                    let mut sp = self.telemetry.span("infer.generalize");
                    let scheme = Scheme::generalize(t1.clone(), c1.clone(), &env1.free_vars());
                    sp.set("quantified", scheme.quantified().len());
                    scheme
                };
                let env2 = env1.extend(x.clone(), scheme);
                let (s2, t2, c2, d2) = self.w(&env2, e2)?;

                let (t1s, c1s) = if self.locality {
                    s2.apply_constrained(&t1, &c1)
                } else {
                    (s2.apply(&t1), Constraint::True)
                };
                let side = self.gate(Constraint::implies(
                    Constraint::Loc(t2.clone()),
                    Constraint::Loc(t1s),
                ));
                let c = Constraint::conj([c1s, c2, side]);
                self.check("(Let)", span, &c)?;
                let d = self.node("(Let)", e, &t2, &c, vec![d1, d2]);
                Ok((s2.compose(&s1), t2, c, d))
            }
            // (Pair)
            ExprKind::Pair(e1, e2) => {
                let (s1, t1, c1, d1) = self.w(env, e1)?;
                let env1 = env.apply_subst(&s1);
                let (s2, t2, c2, d2) = self.w(&env1, e2)?;
                let (t1s, c1s) = if self.locality {
                    s2.apply_constrained(&t1, &c1)
                } else {
                    (s2.apply(&t1), Constraint::True)
                };
                let ty = Type::pair(t1s, t2);
                let c = Constraint::and(c1s, c2);
                self.check("(Pair)", span, &c)?;
                let d = self.node("(Pair)", e, &ty, &c, vec![d1, d2]);
                Ok((s2.compose(&s1), ty, c, d))
            }
            // (Ifthenelse)
            ExprKind::If(e1, e2, e3) => {
                let (s1, t1, c1, d1) = self.w(env, e1)?;
                let u1 = self.unify_at(&t1, &Type::Bool, "`if` condition", e1.span)?;
                let mut acc = Acc::new(self.locality);
                acc.subst = s1;
                let ic = acc.push(t1, c1);
                acc.extend(&u1);

                let env1 = env.apply_subst(&acc.subst);
                let (s2, t2, c2, d2) = self.w(&env1, e2)?;
                acc.extend(&s2);
                let i2 = acc.push(t2, c2);

                let env2 = env.apply_subst(&acc.subst);
                let (s3, t3, c3, d3) = self.w(&env2, e3)?;
                acc.extend(&s3);
                let i3 = acc.push(t3, c3);

                let u2 = self.unify_at(acc.ty(i2), acc.ty(i3), "`if` branches", span)?;
                acc.extend(&u2);

                let _ = ic;
                let ty = acc.ty(i2).clone();
                let c = acc.all_constraints();
                self.check("(Ifthenelse)", span, &c)?;
                let d = self.node("(Ifthenelse)", e, &ty, &c, vec![d1, d2, d3]);
                Ok((acc.subst, ty, c, d))
            }
            // (Ifat): e₁ : bool par, e₂ : int, branches : τ, plus the
            // side condition L(τ) ⇒ False.
            ExprKind::IfAt(e1, e2, e3, e4) => {
                let (s1, t1, c1, d1) = self.w(env, e1)?;
                let u1 = self.unify_at(&t1, &Type::par(Type::Bool), "`if‥at‥` vector", e1.span)?;
                let mut acc = Acc::new(self.locality);
                acc.subst = s1;
                acc.push(t1, c1);
                acc.extend(&u1);

                let env1 = env.apply_subst(&acc.subst);
                let (s2, t2, c2, d2) = self.w(&env1, e2)?;
                acc.extend(&s2);
                let in_ = acc.push(t2, c2);
                let u2 = self.unify_at(acc.ty(in_), &Type::Int, "`if‥at‥` process id", e2.span)?;
                acc.extend(&u2);

                let env2 = env.apply_subst(&acc.subst);
                let (s3, t3, c3, d3) = self.w(&env2, e3)?;
                acc.extend(&s3);
                let i3 = acc.push(t3, c3);

                let env3 = env.apply_subst(&acc.subst);
                let (s4, t4, c4, d4) = self.w(&env3, e4)?;
                acc.extend(&s4);
                let i4 = acc.push(t4, c4);

                let u3 = self.unify_at(acc.ty(i3), acc.ty(i4), "`if‥at‥` branches", span)?;
                acc.extend(&u3);

                let ty = acc.ty(i3).clone();
                let side = self.gate(Constraint::implies(
                    Constraint::Loc(ty.clone()),
                    Constraint::False,
                ));
                let c = Constraint::and(acc.all_constraints(), side);
                self.check("(Ifat)", span, &c)?;
                let d = self.node("(Ifat)", e, &ty, &c, vec![d1, d2, d3, d4]);
                Ok((acc.subst, ty, c, d))
            }
            // Runtime-only vectors: typed for completeness (the parser
            // never produces them). All components share a local type.
            ExprKind::Vector(es) => {
                let mut acc = Acc::new(self.locality);
                let alpha = self.gen.fresh_ty();
                let ia = acc.push(alpha, Constraint::True);
                let mut ds = Vec::new();
                for comp in es {
                    let envc = env.apply_subst(&acc.subst);
                    let (s, t, c, d) = self.w(&envc, comp)?;
                    acc.extend(&s);
                    let i = acc.push(t, c);
                    let u = self.unify_at(
                        acc.ty(ia),
                        acc.ty(i),
                        "parallel vector components",
                        comp.span,
                    )?;
                    acc.extend(&u);
                    ds.push(d);
                }
                let elem = acc.ty(ia).clone();
                let ty = Type::par(elem.clone());
                let c = Constraint::and(acc.all_constraints(), self.gate(Constraint::Loc(elem)));
                self.check("(Vector)", span, &c)?;
                let d = self.node("(Vector)", e, &ty, &c, ds);
                Ok((acc.subst, ty, c, d))
            }
            // — §6 extensions below —
            ExprKind::Inl(inner) => {
                let (s1, t1, c1, d1) = self.w(env, inner)?;
                let beta = self.gen.fresh_ty();
                let ty = Type::sum(t1, beta);
                let c = Constraint::and(self.gate(basic_constraint(&ty)), c1);
                self.check("(Inl)", span, &c)?;
                let d = self.node("(Inl)", e, &ty, &c, vec![d1]);
                Ok((s1, ty, c, d))
            }
            ExprKind::Inr(inner) => {
                let (s1, t1, c1, d1) = self.w(env, inner)?;
                let alpha = self.gen.fresh_ty();
                let ty = Type::sum(alpha, t1);
                let c = Constraint::and(self.gate(basic_constraint(&ty)), c1);
                self.check("(Inr)", span, &c)?;
                let d = self.node("(Inr)", e, &ty, &c, vec![d1]);
                Ok((s1, ty, c, d))
            }
            ExprKind::Case {
                scrutinee,
                left_var,
                left_body,
                right_var,
                right_body,
            } => {
                let (s1, ts, cs, d1) = self.w(env, scrutinee)?;
                let alpha = self.gen.fresh_ty();
                let beta = self.gen.fresh_ty();
                let mut acc = Acc::new(self.locality);
                acc.subst = s1;
                let is = acc.push(ts, cs);
                let ia = acc.push(alpha.clone(), Constraint::True);
                let ib = acc.push(beta.clone(), Constraint::True);
                let u1 = self.unify_at(
                    acc.ty(is),
                    &Type::sum(alpha, beta),
                    "`case` scrutinee",
                    scrutinee.span,
                )?;
                acc.extend(&u1);

                let env_l = env
                    .apply_subst(&acc.subst)
                    .extend(left_var.clone(), Scheme::mono(acc.ty(ia).clone()));
                let (s2, tl, cl, d2) = self.w(&env_l, left_body)?;
                acc.extend(&s2);
                let il = acc.push(tl, cl);

                let env_r = env
                    .apply_subst(&acc.subst)
                    .extend(right_var.clone(), Scheme::mono(acc.ty(ib).clone()));
                let (s3, tr, cr, d3) = self.w(&env_r, right_body)?;
                acc.extend(&s3);
                let ir = acc.push(tr, cr);

                let u2 = self.unify_at(acc.ty(il), acc.ty(ir), "`case` branches", span)?;
                acc.extend(&u2);

                let ty = acc.ty(il).clone();
                // Like (Let): a local result must not hide a global
                // scrutinee.
                let side = self.gate(Constraint::implies(
                    Constraint::Loc(ty.clone()),
                    Constraint::Loc(acc.ty(is).clone()),
                ));
                let c = Constraint::and(acc.all_constraints(), side);
                self.check("(Case)", span, &c)?;
                let d = self.node("(Case)", e, &ty, &c, vec![d1, d2, d3]);
                Ok((acc.subst, ty, c, d))
            }
            ExprKind::Nil => {
                let alpha = self.gen.fresh_ty();
                let ty = Type::list(alpha);
                let d = self.node("(Nil)", e, &ty, &Constraint::True, vec![]);
                Ok((Subst::new(), ty, Constraint::True, d))
            }
            ExprKind::Cons(h, t) => {
                let (s1, th, c1, d1) = self.w(env, h)?;
                let env1 = env.apply_subst(&s1);
                let (s2, tt, c2, d2) = self.w(&env1, t)?;

                let mut acc = Acc::new(self.locality);
                acc.subst = s1;
                let ih = acc.push(th, c1);
                acc.extend(&s2);
                let it = acc.push(tt, c2);
                let u = self.unify_at(
                    &Type::list(acc.ty(ih).clone()),
                    acc.ty(it),
                    "list cell",
                    span,
                )?;
                acc.extend(&u);

                let ty = acc.ty(it).clone();
                // List elements must be local (a list of vectors has
                // statically unknown parallel width).
                let elem = acc.ty(ih).clone();
                let c = Constraint::and(acc.all_constraints(), self.gate(Constraint::Loc(elem)));
                self.check("(Cons)", span, &c)?;
                let d = self.node("(Cons)", e, &ty, &c, vec![d1, d2]);
                Ok((acc.subst, ty, c, d))
            }
            ExprKind::MatchList {
                scrutinee,
                nil_body,
                head_var,
                tail_var,
                cons_body,
            } => {
                let (s1, ts, cs, d1) = self.w(env, scrutinee)?;
                let alpha = self.gen.fresh_ty();
                let mut acc = Acc::new(self.locality);
                acc.subst = s1;
                let is = acc.push(ts, cs);
                let ia = acc.push(alpha.clone(), Constraint::True);
                let u1 = self.unify_at(
                    acc.ty(is),
                    &Type::list(alpha),
                    "`match` scrutinee",
                    scrutinee.span,
                )?;
                acc.extend(&u1);

                let env_n = env.apply_subst(&acc.subst);
                let (s2, tn, cn, d2) = self.w(&env_n, nil_body)?;
                acc.extend(&s2);
                let in_ = acc.push(tn, cn);

                let elem = acc.ty(ia).clone();
                let env_c = env
                    .apply_subst(&acc.subst)
                    .extend(head_var.clone(), Scheme::mono(elem.clone()))
                    .extend(tail_var.clone(), Scheme::mono(Type::list(elem)));
                let (s3, tc, cc, d3) = self.w(&env_c, cons_body)?;
                acc.extend(&s3);
                let icb = acc.push(tc, cc);

                let u2 = self.unify_at(acc.ty(in_), acc.ty(icb), "`match` branches", span)?;
                acc.extend(&u2);

                let ty = acc.ty(in_).clone();
                let side = self.gate(Constraint::implies(
                    Constraint::Loc(ty.clone()),
                    Constraint::Loc(acc.ty(is).clone()),
                ));
                let c = Constraint::and(acc.all_constraints(), side);
                self.check("(Match)", span, &c)?;
                let d = self.node("(Match)", e, &ty, &c, vec![d1, d2, d3]);
                Ok((acc.subst, ty, c, d))
            }
        }
    }
}
