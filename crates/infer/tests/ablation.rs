//! The plain-Damas–Milner ablation (`with_locality(false)`): without
//! the paper's constraint machinery the checker behaves like
//! Objective Caml's, accepting every §2.1 counterexample at exactly
//! the (misleading) types the paper quotes.

use bsml_infer::{initial_env, Inferencer};
use bsml_syntax::parse;

fn plain(src: &str) -> Result<String, String> {
    let e = parse(src).expect("parse");
    Inferencer::new()
        .with_locality(false)
        .run(&initial_env(), &e)
        .map(|inf| inf.ty.to_string())
        .map_err(|err| err.to_string())
}

fn constrained(src: &str) -> bool {
    let e = parse(src).expect("parse");
    Inferencer::new().run(&initial_env(), &e).is_ok()
}

#[test]
fn ocaml_accepts_the_fourth_projection() {
    // §2.1: "Its type given by the Objective Caml system is int."
    assert_eq!(plain("fst (1, mkpar (fun i -> i))").as_deref(), Ok("int"));
    assert!(!constrained("fst (1, mkpar (fun i -> i))"));
}

#[test]
fn ocaml_accepts_example2_at_int_par() {
    // §2.1: "Its type is int par but its evaluation will lead to the
    // evaluation of the parallel vector this inside the outmost
    // parallel vector."
    let src = "mkpar (fun pid -> let this = mkpar (fun pid -> pid) in pid)";
    assert_eq!(plain(src).as_deref(), Ok("int par"));
    assert!(!constrained(src));
}

#[test]
fn ocaml_accepts_the_mismatched_barriers_program() {
    let src = "let vec1 = mkpar (fun pid -> pid) in
               let vec2 = put (mkpar (fun pid -> fun from -> 1 + from)) in
               let c1 = (vec1, 1) in
               let c2 = (vec2, 2) in
               mkpar (fun pid -> if pid < (bsp_p ()) / 2 then snd c1 else snd c2)";
    assert!(plain(src).is_ok());
    assert!(!constrained(src));
}

#[test]
fn ocaml_accepts_ifat_returning_locals() {
    let src = "if mkpar (fun i -> true) at 0 then 1 else 2";
    assert_eq!(plain(src).as_deref(), Ok("int"));
    assert!(!constrained(src));
}

#[test]
fn plain_mode_still_rejects_ordinary_type_errors() {
    // The ablation removes locality, not unification.
    assert!(plain("1 + true").is_err());
    assert!(plain("if 1 then 2 else 3").is_err());
    assert!(plain("fun x -> x x").is_err());
}

#[test]
fn both_modes_agree_on_well_typed_programs() {
    for src in [
        "mkpar (fun i -> i * 2)",
        "let f = fun x -> x in (f 1, f true)",
        "put (mkpar (fun j -> fun d -> j))",
        "fst (mkpar (fun i -> i), 1)",
    ] {
        let p = plain(src).unwrap_or_else(|e| panic!("plain `{src}`: {e}"));
        let e = parse(src).unwrap();
        let c = Inferencer::new()
            .run(&initial_env(), &e)
            .unwrap_or_else(|e| panic!("constrained `{src}`: {e}"));
        assert_eq!(p, c.ty.to_string(), "types differ on `{src}`");
    }
}
