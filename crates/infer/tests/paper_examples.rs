//! The paper's complete example corpus (§2.1 and §4, Figures 8–10):
//! every program the paper discusses, accepted or rejected exactly as
//! the paper says.

use bsml_infer::{infer, initial_env, Inferencer, TypeError};
use bsml_syntax::parse;

fn accepts(src: &str) -> String {
    let e = parse(src).expect("parse");
    match infer(&e) {
        Ok(inf) => inf.ty.to_string(),
        Err(err) => panic!("`{src}` rejected: {}", err.render(src)),
    }
}

fn rejects(src: &str) -> TypeError {
    let e = parse(src).expect("parse");
    match infer(&e) {
        Err(err) => err,
        Ok(inf) => panic!("`{src}` accepted at {}", inf.ty),
    }
}

/// The paper's §2.1 `bcast` program (adapted: the paper's version
/// uses a 3-argument send function folded over `apply`; ours uses the
/// equivalent explicit `apply` chain).
const BCAST: &str = "
    let replicate = fun x -> mkpar (fun pid -> x) in
    let bcast = fun n -> fun vec ->
      let tosend =
        apply (mkpar (fun i -> fun v -> fun dst ->
                        if i = n then v else nc ()),
               vec) in
      let recv = put tosend in
      apply (recv, replicate n)
    in bcast 2 (mkpar (fun i -> i * 10))";

#[test]
fn section2_bcast_types_at_par() {
    // bcast : int -> α par -> (α option-ish) par. In mini-BSML the
    // delivered value is still wrapped by the message function, so
    // the result of our variant is `int par`-shaped modulo nc.
    let ty = accepts(BCAST);
    assert!(ty.ends_with("par"), "got: {ty}");
}

#[test]
fn example1_nested_bcast_is_rejected() {
    // §2.1 example1: mkpar (fun pid -> bcast pid vec).
    let src = "
        let replicate = fun x -> mkpar (fun pid -> x) in
        let bcast = fun n -> fun vec ->
          let tosend =
            apply (mkpar (fun i -> fun v -> fun dst ->
                            if i = n then v else nc ()),
                   vec) in
          let recv = put tosend in
          apply (recv, replicate n)
        in
        let vec = mkpar (fun i -> i) in
        mkpar (fun pid -> bcast pid vec)";
    let err = rejects(src);
    assert!(
        matches!(err, TypeError::LocalityViolation { .. }),
        "got: {err}"
    );
}

#[test]
fn example2_hidden_nesting_is_rejected() {
    // §2.1 example2: the type is plain `int par`, the nesting is
    // invisible — only the (Let) side condition L(τ₂) ⇒ L(τ₁)
    // catches it. In our algorithmic presentation the condition is
    // recorded at the inner let as the residual L(α) ⇒ False and
    // becomes absurd when the outer mkpar instantiates α = int, so
    // the violation is *reported* at the application of mkpar.
    let err = rejects("mkpar (fun pid -> let this = mkpar (fun pid -> pid) in pid)");
    match err {
        TypeError::LocalityViolation { rule, .. } => {
            assert_eq!(rule, "(App)");
        }
        other => panic!("wrong error: {other}"),
    }
    // With pid's type fixed to int by context, the (Let) rule itself
    // fires — this is exactly Figure 8's judgment.
    let err = rejects("fun pid -> let this = mkpar (fun i -> i) in pid + 0");
    match err {
        TypeError::LocalityViolation { rule, .. } => assert_eq!(rule, "(Let)"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn figure8_abstracted_body_carries_the_residual_constraint() {
    // Standalone, `fun pid -> let this = mkpar … in pid` is typable
    // at [α → α / L(α) ⇒ False]: it may only ever be applied to a
    // global value. Figure 8's rejection materializes at any local
    // instantiation.
    let e = parse("fun pid -> let this = mkpar (fun i -> i) in pid").unwrap();
    let inf = infer(&e).unwrap();
    let s = inf.scheme().to_string();
    assert!(
        s.contains("L('a)") && s.contains("False"),
        "expected the residual L(α) ⇒ False, got: {s}"
    );
    // Local instantiation — Figure 8's actual judgment — is absurd.
    rejects("(fun pid -> let this = mkpar (fun i -> i) in pid) 7");
}

#[test]
fn the_four_projections_of_section_2_1() {
    // 1. two usual values.
    assert_eq!(accepts("fst (1, 2)"), "int");
    // 2. two parallel values.
    assert_eq!(
        accepts("fst (mkpar (fun i -> i), mkpar (fun i -> i))"),
        "int par"
    );
    // 3. parallel and usual (Figure 9).
    assert_eq!(accepts("fst (mkpar (fun i -> i), 1)"), "int par");
    // 4. usual and parallel (Figure 10) — rejected.
    let err = rejects("fst (1, mkpar (fun i -> i))");
    match err {
        TypeError::LocalityViolation { constraint, .. } => {
            // The accumulated constraint embeds L(int) ⇒ L(int par)
            // after substitution; check it solves to False (already
            // implied by rejection) and mentions a par type.
            assert!(constraint.to_string().contains("par"));
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn snd_is_symmetric() {
    assert_eq!(accepts("snd (1, mkpar (fun i -> i))"), "int par");
    rejects("snd (mkpar (fun i -> i), 1)");
}

#[test]
fn mismatched_barriers_example_is_rejected() {
    // §2.1's last example: choosing between a put-result and a
    // mkpar-result under a mkpar gives mismatched barriers.
    let src = "
        let vec1 = mkpar (fun pid -> pid) in
        let vec2 = put (mkpar (fun pid -> fun from -> 1 + from)) in
        let c1 = (vec1, 1) in
        let c2 = (vec2, 2) in
        mkpar (fun pid -> if pid < (bsp_p ()) / 2 then snd c1 else snd c2)";
    let err = rejects(src);
    assert!(
        matches!(err, TypeError::LocalityViolation { .. }),
        "got {err}"
    );
}

#[test]
fn parallel_identity_gets_the_paper_scheme() {
    // §4: [α → α / L(α) ⇒ False].
    let e = parse("fun x -> if mkpar (fun i -> true) at 0 then x else x").unwrap();
    let inf = infer(&e).unwrap();
    assert_eq!(inf.scheme().to_string(), "∀'a.['a -> 'a / L('a) ⇒ False]");
}

#[test]
fn parallel_identity_rejects_local_arguments() {
    // Applying the parallel identity to a usual value must fail …
    rejects("(fun x -> if mkpar (fun i -> true) at 0 then x else x) 1");
    // … and to a parallel vector must succeed.
    assert_eq!(
        accepts("(fun x -> if mkpar (fun i -> true) at 0 then x else x) (mkpar (fun i -> i))"),
        "int par"
    );
}

#[test]
fn figures_9_and_10_derivations_render() {
    let ok = parse("fst (mkpar (fun i -> i), 1)").unwrap();
    let inf = Inferencer::new()
        .with_derivation(true)
        .run(&initial_env(), &ok)
        .unwrap();
    let rendered = inf.derivation.unwrap().render();
    // Figure 9's key judgments (constraints included in brackets).
    assert!(
        rendered.contains("⊢ mkpar (fun i -> i) : [int par / L(int)]"),
        "{rendered}"
    );
    assert!(rendered.contains("⊢ 1 : int"), "{rendered}");
    assert!(
        rendered.contains("(mkpar (fun i -> i), 1) : [int par * int"),
        "{rendered}"
    );
    let last = rendered.lines().last().unwrap();
    assert!(
        last.starts_with("(App)") && last.contains(": [int par /"),
        "{rendered}"
    );
    // Figure 6's fst scheme shows its instantiated constraint
    // L(int par) ⇒ L(int) — the one that solves to True here and to
    // False in Figure 10.
    assert!(rendered.contains("L(int par) ⇒ L(int)"), "{rendered}");
}

#[test]
fn theorem1_example_constraint_weakens_under_reduction() {
    // After Theorem 1 the paper discusses
    // `let f = (fun a -> fun b -> a) in 1`: it types with a residual
    // constraint over the generalized variables, while its reduct `1`
    // types with no constraint at all (C' less constrained than C).
    let before = parse("let f = fun a -> fun b -> a in 1").unwrap();
    let after = parse("1").unwrap();
    let inf_before = infer(&before).unwrap();
    let inf_after = infer(&after).unwrap();
    assert_eq!(inf_before.ty.to_string(), "int");
    assert_eq!(inf_after.ty.to_string(), "int");
    // C' (True) is weaker than C (residual or True).
    assert_eq!(inf_after.solution, bsml_types::Solution::True);
    assert_ne!(
        inf_before.solution,
        bsml_types::Solution::False,
        "the let form must still be accepted"
    );
}

#[test]
fn put_of_mkpar_types_like_the_paper() {
    assert_eq!(
        accepts("put (mkpar (fun i -> fun dst -> i + dst))"),
        "(int -> int) par"
    );
}

#[test]
fn replicate_and_nosome() {
    // §2.1's helpers. noSome in mini-BSML uses isnc-based dispatch.
    assert_eq!(
        accepts("let replicate = fun x -> mkpar (fun pid -> x) in replicate 5"),
        "int par"
    );
    // A replicate of a vector is a nesting.
    rejects(
        "let replicate = fun x -> mkpar (fun pid -> x) in
         replicate (mkpar (fun i -> i))",
    );
}
