//! Rule-by-rule tests of the Figure 7 type system.

use bsml_infer::{infer, initial_env, Inferencer, TypeError};
use bsml_syntax::parse;
use bsml_types::Solution;

fn ty_of(src: &str) -> String {
    let e = parse(src).expect("parse");
    match infer(&e) {
        Ok(inf) => inf.ty.to_string(),
        Err(err) => panic!("`{src}` failed to type: {}", err.render(src)),
    }
}

fn scheme_of(src: &str) -> String {
    let e = parse(src).expect("parse");
    infer(&e)
        .unwrap_or_else(|err| panic!("`{src}`: {}", err.render(src)))
        .scheme()
        .to_string()
}

fn rejected_by(src: &str) -> String {
    let e = parse(src).expect("parse");
    match infer(&e) {
        Err(TypeError::LocalityViolation { rule, .. }) => rule.to_string(),
        Err(other) => panic!("`{src}` rejected, but not by locality: {other}"),
        Ok(inf) => panic!("`{src}` unexpectedly accepted at {}", inf.ty),
    }
}

#[test]
fn rule_const() {
    assert_eq!(ty_of("42"), "int");
    assert_eq!(ty_of("true"), "bool");
    assert_eq!(ty_of("()"), "unit");
}

#[test]
fn rule_op() {
    assert_eq!(ty_of("(+)"), "int * int -> int");
    assert_eq!(ty_of("bsp_p"), "unit -> int");
}

#[test]
fn rule_var_and_let_polymorphism() {
    assert_eq!(ty_of("let id = fun x -> x in id 1"), "int");
    // The binding is polymorphic: used at two types.
    assert_eq!(
        ty_of("let id = fun x -> x in (id 1, id true)"),
        "int * bool"
    );
}

#[test]
fn rule_fun() {
    assert_eq!(ty_of("fun x -> x + 1"), "int -> int");
    assert_eq!(scheme_of("fun x -> x"), "∀'a.['a -> 'a]");
    assert_eq!(
        scheme_of("fun f -> fun x -> f (f x)"),
        "∀'a.[('a -> 'a) -> 'a -> 'a]"
    );
}

#[test]
fn rule_app() {
    assert_eq!(ty_of("(fun x -> x * 2) 21"), "int");
    let e = parse("1 2").unwrap();
    assert!(matches!(infer(&e), Err(TypeError::Mismatch { .. })));
}

#[test]
fn rule_pair() {
    assert_eq!(ty_of("(1, true)"), "int * bool");
    assert_eq!(ty_of("(mkpar (fun i -> i), 1)"), "int par * int");
}

#[test]
fn rule_ifthenelse() {
    assert_eq!(ty_of("if 1 < 2 then 10 else 20"), "int");
    // Branch types must agree.
    let e = parse("if true then 1 else false").unwrap();
    assert!(matches!(infer(&e), Err(TypeError::Mismatch { .. })));
    // The condition must be bool.
    let e = parse("if 3 then 1 else 2").unwrap();
    assert!(matches!(infer(&e), Err(TypeError::Mismatch { .. })));
    // Branches may be global: if‥then‥else can return vectors.
    assert_eq!(
        ty_of("if true then mkpar (fun i -> i) else mkpar (fun i -> 0)"),
        "int par"
    );
}

#[test]
fn rule_ifat() {
    assert_eq!(
        ty_of("if mkpar (fun i -> true) at 0 then mkpar (fun i -> 1) else mkpar (fun i -> 2)"),
        "int par"
    );
    // A local return type is forbidden: L(τ) ⇒ False.
    assert_eq!(
        rejected_by("if mkpar (fun i -> true) at 0 then 1 else 2"),
        "(Ifat)"
    );
    // The vector must be bool par.
    let e = parse("if mkpar (fun i -> i) at 0 then mkpar (fun i -> 1) else mkpar (fun i -> 2)")
        .unwrap();
    assert!(matches!(infer(&e), Err(TypeError::Mismatch { .. })));
}

#[test]
fn parallel_identity_scheme_matches_the_paper() {
    // §4: fun x -> if (mkpar (fun i -> true)) at 0 then x else x
    // must get [α→α / L(α) ⇒ False].
    let e = parse("fun x -> if mkpar (fun i -> true) at 0 then x else x").unwrap();
    let inf = infer(&e).unwrap();
    let s = inf.scheme().to_string();
    assert!(
        s.contains("'a -> 'a") && s.contains("L('a) ⇒ False"),
        "got: {s}"
    );
    // And the constraint is residual, not absurd.
    assert!(matches!(inf.solution, Solution::Residual(_)));
}

#[test]
fn rule_let_side_condition() {
    // Binding a vector and returning a local hides a global
    // evaluation — rejected, even outside any mkpar.
    assert_eq!(rejected_by("let this = mkpar (fun i -> i) in 5"), "(Let)");
    // Returning the vector itself is fine.
    assert_eq!(ty_of("let v = mkpar (fun i -> i) in v"), "int par");
    // Chained global results are fine.
    assert_eq!(
        ty_of("let v = mkpar (fun i -> i) in apply (mkpar (fun i -> fun x -> x), v)"),
        "int par"
    );
}

#[test]
fn mkpar_demands_local_components() {
    assert_eq!(ty_of("mkpar (fun i -> i)"), "int par");
    assert_eq!(ty_of("mkpar (fun i -> (i, true))"), "(int * bool) par");
    // Vector of vectors — the paper's example1 shape.
    assert_eq!(
        rejected_by("mkpar (fun i -> mkpar (fun j -> i + j))"),
        "(App)"
    );
}

#[test]
fn apply_demands_local_elements() {
    assert_eq!(
        ty_of("apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i))"),
        "int par"
    );
    let bad = "apply (mkpar (fun i -> fun x -> x), mkpar (fun i -> mkpar (fun j -> j)))";
    let e = parse(bad).unwrap();
    assert!(infer(&e).is_err());
}

#[test]
fn put_types_as_in_figure6() {
    assert_eq!(
        ty_of("put (mkpar (fun j -> fun dst -> j + dst))"),
        "(int -> int) par"
    );
    // Sending vectors is absurd.
    let e = parse("put (mkpar (fun j -> fun dst -> mkpar (fun i -> i)))").unwrap();
    assert!(infer(&e).is_err());
}

#[test]
fn unbound_variables_are_reported() {
    let e = parse("x + 1").unwrap();
    match infer(&e) {
        Err(TypeError::Unbound { name, .. }) => assert_eq!(name.as_str(), "x"),
        other => panic!("expected unbound, got {other:?}"),
    }
}

#[test]
fn occurs_check_is_reported_as_mismatch() {
    let e = parse("fun x -> x x").unwrap();
    assert!(matches!(infer(&e), Err(TypeError::Mismatch { .. })));
}

#[test]
fn fix_and_recursion() {
    assert_eq!(
        ty_of("let rec fact n = if n = 0 then 1 else n * fact (n - 1) in fact"),
        "int -> int"
    );
    // fix of a constant-function builder is the polymorphic identity.
    assert_eq!(scheme_of("fix (fun f -> fun n -> n)"), "∀'a.['a -> 'a]");
    assert_eq!(ty_of("(fix (fun f -> fun n -> n)) 3"), "int");
}

#[test]
fn nc_isnc() {
    assert_eq!(scheme_of("nc ()"), "∀'a.['a]");
    assert_eq!(ty_of("isnc (nc ())"), "bool");
    assert_eq!(ty_of("isnc 3"), "bool");
    // isnc on a vector violates L(α).
    assert_eq!(rejected_by("isnc (mkpar (fun i -> i))"), "(App)");
}

#[test]
fn equality_is_local_only() {
    assert_eq!(ty_of("1 = 2"), "bool");
    assert_eq!(ty_of("(1, true) = (2, false)"), "bool");
    assert_eq!(
        rejected_by("mkpar (fun i -> i) = mkpar (fun i -> i)"),
        "(App)"
    );
}

#[test]
fn sums_extension() {
    assert_eq!(scheme_of("inl 1"), "∀'a.[int + 'a]");
    assert_eq!(scheme_of("inr 1"), "∀'a.['a + int]");
    assert_eq!(
        ty_of("case inl 1 of inl a -> a + 1 | inr b -> b - 1"),
        "int"
    );
    assert_eq!(
        scheme_of("fun s -> case s of inl a -> a | inr b -> b"),
        "∀'a.['a + 'a -> 'a]"
    );
    // A sum of a vector is a global value; eliminating it into a
    // local result is rejected like (Let).
    let bad = "case inl (mkpar (fun i -> i)) of inl v -> 1 | inr x -> x";
    assert_eq!(rejected_by(bad), "(Case)");
    // Eliminating into a global result is fine.
    assert_eq!(
        ty_of("case inl (mkpar (fun i -> i)) of inl v -> v | inr x -> x"),
        "int par"
    );
}

#[test]
fn lists_extension() {
    assert_eq!(ty_of("[1; 2; 3]"), "int list");
    assert_eq!(scheme_of("[]"), "∀'a.['a list]");
    assert_eq!(ty_of("match [1] with [] -> 0 | h :: t -> h"), "int");
    // The (Match) side condition leaves the residual fact L('a): a
    // list elimination with a local result demands local elements
    // (which lists always have — the fact is satisfiable noise).
    assert_eq!(
        scheme_of("fun xs -> match xs with [] -> 0 | h :: t -> 1"),
        "∀'a.['a list -> int / L('a)]"
    );
    // Lists of parallel vectors are rejected at the cons.
    assert_eq!(rejected_by("mkpar (fun i -> i) :: []"), "(Cons)");
}

#[test]
fn derivations_can_be_recorded() {
    let e = parse("fst (mkpar (fun i -> i), 1)").unwrap();
    let inf = Inferencer::new()
        .with_derivation(true)
        .run(&initial_env(), &e)
        .unwrap();
    let d = inf.derivation.expect("derivation recorded");
    let rendered = d.render();
    // The tree contains the key judgments of Figure 9.
    assert!(rendered.contains("(Op) ⊢ fst"), "got:\n{rendered}");
    assert!(rendered.contains("int par"), "got:\n{rendered}");
    assert!(rendered.lines().last().unwrap().starts_with("(App)"));
    assert!(d.size() >= 6);
}

#[test]
fn inference_is_deterministic() {
    let e = parse("let f = fun x -> (x, x) in f (mkpar (fun i -> i))").unwrap();
    let a = infer(&e).unwrap();
    let b = infer(&e).unwrap();
    assert_eq!(a.ty, b.ty);
    assert_eq!(a.constraint, b.constraint);
}

#[test]
fn polymorphism_with_constraints_propagates() {
    // A let-bound fst keeps its constraint; the bad use is caught at
    // the use site.
    let good = "let first = fun p -> fst p in first (mkpar (fun i -> i), 1)";
    assert_eq!(ty_of(good), "int par");
    let bad = "let first = fun p -> fst p in first (1, mkpar (fun i -> i))";
    let e = parse(bad).unwrap();
    assert!(infer(&e).is_err(), "polymorphic nesting escaped");
}

#[test]
fn deep_programs_type_in_reasonable_time() {
    // A deep chain of lets. Inference recursion is proportional to
    // nesting depth, so run on a thread with a generous stack (test
    // threads default to 2 MiB).
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let mut src = String::new();
            for i in 0..400 {
                src.push_str(&format!("let x{i} = {i} in "));
            }
            src.push_str("x0 + x399");
            assert_eq!(ty_of(&src), "int");
        })
        .expect("spawn")
        .join()
        .expect("join");
}
