//! Workspace-wide telemetry: structured spans, a metrics registry,
//! and exporters.
//!
//! The BSP cost model `W + H·g + S·l` is only credible when work,
//! communication, and barriers can be *observed*. This crate is the
//! observation layer every other crate reports into:
//!
//! * **Spans** — nested, timed, RAII-guarded regions carrying
//!   structured key–value [`FieldValue`] fields
//!   ([`Telemetry::span`]).
//! * **Metrics** — named monotonic counters and log₂-bucketed
//!   histograms ([`MetricsRegistry`]).
//! * **Exporters** — a human-readable span tree
//!   ([`Telemetry::render_tree`]), JSONL events
//!   ([`Telemetry::to_jsonl`]), and Chrome trace-event JSON loadable
//!   in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)
//!   ([`Telemetry::to_chrome_trace`]), with SPMD workers mapped to
//!   per-processor tracks.
//!
//! The **disabled** handle ([`Telemetry::disabled`]) is the default
//! everywhere and is allocation-free: every recording call bails on a
//! `None` before formatting, allocating, or locking, so instrumented
//! hot paths cost one branch when telemetry is off.
//!
//! ```
//! use bsml_obs::Telemetry;
//!
//! let tel = Telemetry::enabled_logical(); // deterministic clock
//! {
//!     let mut load = tel.span("load");
//!     load.set("phrases", 1u64);
//!     let _parse = tel.span("parse");
//! }
//! tel.counter_add("infer.unifications", 3);
//! assert!(tel.render_tree().contains("load"));
//! assert!(tel.to_chrome_trace().contains("\"traceEvents\""));
//! ```
//!
//! Two clocks are available: [`Telemetry::enabled`] uses the wall
//! clock (microseconds since the handle was created), while
//! [`Telemetry::enabled_logical`] uses a deterministic tick-per-query
//! clock — golden tests and reproducible traces use the latter.

pub mod env;
mod export;
mod flight;
mod metrics;
mod span;

pub use flight::{FlightEvent, FlightRecorder, TimedFlightEvent};
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use span::{FieldValue, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Identifies one horizontal track (≈ one thread / one BSP processor)
/// in the trace. Track 0 is the main track.
pub type TrackId = u32;

enum Clock {
    /// Microseconds since the epoch `Instant`.
    Wall(Instant),
    /// A deterministic counter: each query advances time by 1 µs.
    Logical(AtomicU64),
}

impl Clock {
    fn now_us(&self) -> u64 {
        match self {
            Clock::Wall(epoch) => u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            Clock::Logical(tick) => tick.fetch_add(1, Ordering::Relaxed),
        }
    }
}

pub(crate) struct Inner {
    clock: Clock,
    seq: AtomicU64,
    pub(crate) state: Mutex<State>,
}

impl Inner {
    /// Locks the sink state, recovering from poisoning: the protected
    /// data (plain vectors and counters) is valid at every instant, and
    /// telemetry — especially the exporters — must never panic inside
    /// an already-failing run, which would mask the original failure.
    pub(crate) fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

pub(crate) struct State {
    /// Track names; index is the [`TrackId`].
    pub(crate) tracks: Vec<String>,
    pub(crate) spans: Vec<SpanRecord>,
    pub(crate) metrics: MetricsRegistry,
    /// Cross-track causal arrows (message flows), in recording order.
    pub(crate) flows: Vec<FlowRecord>,
}

/// One causal arrow between two tracks — a message observed at both
/// ends. Rendered as a Chrome trace-event flow (`"s"` on the sending
/// track, `"f"` on the receiving one), which Perfetto draws as an
/// arrow between the rank tracks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// Flow identifier — ties the start and finish events together.
    /// Unique per flow within one sink.
    pub id: u64,
    /// Static flow name (e.g. `"put"`, `"ack"`).
    pub name: &'static str,
    /// The sending track.
    pub from_track: TrackId,
    /// The receiving track.
    pub to_track: TrackId,
    /// When the message was sent, µs in the sink's time base.
    pub start_us: u64,
    /// When it was received (clamped to ≥ `start_us`).
    pub end_us: u64,
}

/// A cheap, clonable, thread-safe handle to a telemetry sink — or to
/// nothing at all ([`Telemetry::disabled`]).
///
/// Each handle carries the track it records spans onto; [`Telemetry::track`]
/// derives a handle for another track (one per SPMD worker).
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    track: TrackId,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("track", &self.track)
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// The no-op handle: every recording method returns immediately,
    /// without locking or allocating.
    #[must_use]
    pub fn disabled() -> Telemetry {
        Telemetry {
            inner: None,
            track: 0,
        }
    }

    /// A live sink on the wall clock.
    #[must_use]
    pub fn enabled() -> Telemetry {
        Telemetry::with_clock(Clock::Wall(Instant::now()))
    }

    /// A live sink on a deterministic logical clock (1 µs per query):
    /// identical runs produce byte-identical exports.
    #[must_use]
    pub fn enabled_logical() -> Telemetry {
        Telemetry::with_clock(Clock::Logical(AtomicU64::new(0)))
    }

    fn with_clock(clock: Clock) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock,
                seq: AtomicU64::new(0),
                state: Mutex::new(State {
                    tracks: vec!["main".to_string()],
                    spans: Vec::new(),
                    metrics: MetricsRegistry::new(),
                    flows: Vec::new(),
                }),
            })),
            track: 0,
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The track this handle records spans onto.
    #[must_use]
    pub fn current_track(&self) -> TrackId {
        self.track
    }

    /// A handle recording onto the named track, registering the track
    /// if it is new. Disabled handles return themselves unchanged.
    #[must_use]
    pub fn track(&self, name: &str) -> Telemetry {
        let Some(inner) = &self.inner else {
            return self.clone();
        };
        let mut state = inner.state();
        let id = match state.tracks.iter().position(|t| t == name) {
            Some(i) => i,
            None => {
                state.tracks.push(name.to_string());
                state.tracks.len() - 1
            }
        };
        Telemetry {
            inner: self.inner.clone(),
            track: TrackId::try_from(id).unwrap_or(TrackId::MAX),
        }
    }

    fn next_seq(inner: &Inner) -> u64 {
        inner.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a named span on this handle's track; the span closes
    /// (and is recorded) when the guard drops.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_at(name, None)
    }

    /// Like [`Telemetry::span`], with a numeric index rendered after
    /// the name (`superstep 3`) — avoids formatting on the hot path.
    #[must_use]
    pub fn span_idx(&self, name: &'static str, index: u64) -> SpanGuard {
        self.span_at(name, Some(index))
    }

    fn span_at(&self, name: &'static str, index: Option<u64>) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::inactive(),
            Some(inner) => SpanGuard::open(
                Arc::clone(inner),
                self.track,
                name,
                index,
                inner.clock.now_us(),
                Telemetry::next_seq(inner),
            ),
        }
    }

    /// Records an already-timed span (used to replay logical
    /// schedules, e.g. per-superstep BSP cost records, into the
    /// trace). `start_us`/`end_us` are in this sink's time base.
    pub fn record_span(
        &self,
        track: TrackId,
        name: &'static str,
        index: Option<u64>,
        start_us: u64,
        end_us: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let start_seq = Telemetry::next_seq(inner);
        let end_seq = Telemetry::next_seq(inner);
        let mut state = inner.state();
        state.spans.push(SpanRecord {
            track,
            name,
            index,
            start_us,
            end_us: end_us.max(start_us),
            start_seq,
            end_seq,
            fields,
        });
    }

    /// The current time in this sink's base, for building
    /// [`Telemetry::record_span`] timestamps. Disabled handles
    /// return 0.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_us())
    }

    /// Records a causal arrow between two tracks (a message observed
    /// at both ends). `id` must be unique per flow within this sink;
    /// `end_us` is clamped to ≥ `start_us`.
    pub fn record_flow(
        &self,
        id: u64,
        name: &'static str,
        from_track: TrackId,
        to_track: TrackId,
        start_us: u64,
        end_us: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.state().flows.push(FlowRecord {
            id,
            name,
            from_track,
            to_track,
            start_us,
            end_us: end_us.max(start_us),
        });
    }

    /// Adds `n` to the named counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        inner.state().metrics.counter_add(name, n);
    }

    /// Records `value` into the named histogram.
    pub fn histogram_record(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner.state().metrics.histogram_record(name, value);
    }

    /// The value of a counter (0 if never written).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.state().metrics.counter_value(name))
    }

    /// A snapshot of all metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |inner| {
                inner.state().metrics.snapshot()
            })
    }

    /// All recorded spans, in recording order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.state().spans.clone())
    }

    /// All recorded flows, in recording order.
    #[must_use]
    pub fn flows(&self) -> Vec<FlowRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.state().flows.clone())
    }

    /// Registered track names, indexed by [`TrackId`].
    #[must_use]
    pub fn tracks(&self) -> Vec<String> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.state().tracks.clone())
    }

    /// The human-readable span tree + metrics table.
    #[must_use]
    pub fn render_tree(&self) -> String {
        export::render_tree(self)
    }

    /// One JSON object per line: spans, then counters, then
    /// histograms.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(self)
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object
    /// format), loadable in `chrome://tracing` and Perfetto. Spans
    /// become complete (`"X"`) events; tracks become named threads;
    /// counters become one final `"C"` event per counter.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        export::to_chrome_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let mut g = tel.span("x");
            g.set("k", 1u64);
        }
        tel.counter_add("c", 5);
        tel.histogram_record("h", 9);
        assert!(!tel.is_enabled());
        assert!(tel.spans().is_empty());
        assert_eq!(tel.counter_value("c"), 0);
        assert!(tel.metrics().counters.is_empty());
    }

    #[test]
    fn spans_nest_by_guard_order() {
        let tel = Telemetry::enabled_logical();
        {
            let _outer = tel.span("outer");
            let _inner = tel.span("inner");
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 2);
        // Inner drops first, so it is recorded first.
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert!(outer.start_seq < inner.start_seq);
        assert!(outer.end_seq > inner.end_seq);
        assert!(outer.start_us <= inner.start_us);
        assert!(outer.end_us >= inner.end_us);
    }

    #[test]
    fn tracks_are_registered_once() {
        let tel = Telemetry::enabled_logical();
        let p0 = tel.track("p0");
        let p0_again = tel.track("p0");
        let p1 = tel.track("p1");
        assert_eq!(p0.current_track(), p0_again.current_track());
        assert_ne!(p0.current_track(), p1.current_track());
        assert_eq!(tel.tracks(), vec!["main", "p0", "p1"]);
        drop(p1.span("work"));
        assert_eq!(tel.spans()[0].track, 2);
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let tel = Telemetry::enabled_logical();
        tel.counter_add("ops", 2);
        tel.counter_add("ops", 3);
        tel.histogram_record("lat", 10);
        tel.histogram_record("lat", 1000);
        assert_eq!(tel.counter_value("ops"), 5);
        let m = tel.metrics();
        let h = &m.histograms["lat"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 1000);
    }

    #[test]
    fn logical_clock_is_monotonic_and_deterministic() {
        let a = Telemetry::enabled_logical();
        let b = Telemetry::enabled_logical();
        for tel in [&a, &b] {
            let _x = tel.span("x");
            let _y = tel.span("y");
        }
        let (sa, sb) = (a.spans(), b.spans());
        assert_eq!(sa.len(), sb.len());
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!((x.start_us, x.end_us), (y.start_us, y.end_us));
            assert!(x.start_us <= x.end_us);
        }
    }

    #[test]
    fn record_span_clamps_and_stores_fields() {
        let tel = Telemetry::enabled_logical();
        tel.record_span(
            0,
            "superstep",
            Some(1),
            10,
            5, // end before start: clamped
            vec![("w", FieldValue::U64(42))],
        );
        let s = &tel.spans()[0];
        assert_eq!(s.end_us, 10);
        assert_eq!(s.index, Some(1));
        assert_eq!(s.fields, vec![("w", FieldValue::U64(42))]);
    }

    #[test]
    fn shared_across_threads() {
        let tel = Telemetry::enabled();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let t = tel.track(&format!("p{i}"));
                scope.spawn(move || {
                    let _s = t.span("work");
                    t.counter_add("thread_ops", 1);
                });
            }
        });
        assert_eq!(tel.spans().len(), 4);
        assert_eq!(tel.counter_value("thread_ops"), 4);
    }
}
