//! The metrics registry: named counters and log₂-bucketed histograms.

use std::collections::BTreeMap;

/// Number of log₂ buckets: values up to `2^63` land in a bucket.
const BUCKETS: usize = 64;

/// A registry of named monotonic counters and histograms.
///
/// Keys are plain strings (`infer.unifications`,
/// `bsp.barrier_wait_us`, …); dotted prefixes group related series by
/// subsystem. The registry itself is not synchronized — the
/// [`crate::Telemetry`] handle wraps it in the sink's lock.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Clone, Debug)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// `buckets[i]` counts values whose bit length is `i`, i.e.
    /// values in `[2^(i-1), 2^i)` (bucket 0 is the value 0).
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket.min(BUCKETS - 1)] += 1;
    }

    /// Upper bound of the bucket holding the q-quantile (0 ≤ q ≤ 1).
    fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        self.max
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50_bound: self.quantile_bound(0.50),
            p95_bound: self.quantile_bound(0.95),
        }
    }
}

/// Point-in-time summary of one histogram. Quantiles are upper
/// bucket bounds (powers of two), not exact order statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Upper bound of the median's bucket.
    pub p50_bound: u64,
    /// Upper bound of the 95th percentile's bucket.
    pub p95_bound: u64,
}

impl HistogramSummary {
    /// Mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }
}

/// Point-in-time snapshot of a whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries, sorted by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to a counter, creating it at zero if new.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(n),
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Reads a counter (0 if never written).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a value into a histogram, creating it if new.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Snapshots every series.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Merges another registry into this one (counters add; histogram
    /// streams concatenate).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.counter_add(k, *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => {
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                    for (a, b) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                }
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_saturate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", 2);
        m.counter_add("x", 3);
        assert_eq!(m.counter_value("x"), 5);
        assert_eq!(m.counter_value("missing"), 0);
        m.counter_add("x", u64::MAX);
        assert_eq!(m.counter_value("x"), u64::MAX);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let mut m = MetricsRegistry::new();
        for v in [3u64, 9, 1000, 0] {
            m.histogram_record("lat", v);
        }
        let s = m.snapshot().histograms["lat"];
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1012);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 253.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_bounds_bracket_the_data() {
        let mut m = MetricsRegistry::new();
        for _ in 0..99 {
            m.histogram_record("lat", 10);
        }
        m.histogram_record("lat", 100_000);
        let s = m.snapshot().histograms["lat"];
        // Median bucket bound covers 10, not the outlier.
        assert!(s.p50_bound >= 10 && s.p50_bound < 100, "{s:?}");
        assert!(s.p95_bound < 100_000);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn merge_combines_both_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.histogram_record("h", 4);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.counter_add("only_b", 7);
        b.histogram_record("h", 16);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), 3);
        assert_eq!(a.counter_value("only_b"), 7);
        let s = a.snapshot().histograms["h"];
        assert_eq!((s.count, s.min, s.max), (2, 4, 16));
    }
}
