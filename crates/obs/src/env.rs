//! Centralized `BSML_*` environment-knob parsing.
//!
//! Every knob in the workspace is read through these helpers so that
//! malformed values are handled one way, everywhere: the knob falls
//! back to its default **and the rejection is counted** — once per
//! knob name per process — under the `config.bad_env_values` counter
//! instead of being silently swallowed.
//!
//! Two sinks receive the warning:
//!
//! * a process-global tally, readable via [`bad_env_values`] /
//!   [`bad_env_names`] (knob parsing often happens at machine
//!   construction, before any [`Telemetry`] handle is enabled);
//! * the [`Telemetry`] handle passed to the call, when one is
//!   available and enabled (no-op otherwise).
//!
//! The consolidated registry of every knob — names, defaults,
//! meanings — lives in `bsml-core::knobs`; this module is the parsing
//! *mechanism* and sits in `bsml-obs` because it is the one crate
//! below every knob consumer in the dependency graph.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

use crate::Telemetry;

/// The counter name bumped when a set-but-malformed knob is rejected.
pub const BAD_ENV_COUNTER: &str = "config.bad_env_values";

static BAD_VALUES: AtomicU64 = AtomicU64::new(0);

fn warned() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// How many distinct malformed knob values this process has rejected
/// so far (at most one per knob name).
#[must_use]
pub fn bad_env_values() -> u64 {
    BAD_VALUES.load(Ordering::Relaxed)
}

/// The knob names whose values were rejected, sorted.
#[must_use]
pub fn bad_env_names() -> Vec<String> {
    warned()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .cloned()
        .collect()
}

/// Records one malformed knob. First rejection of each name bumps the
/// process-global tally; every call forwards to `telemetry` (no-op
/// when disabled) so servers with an enabled sink see the counter in
/// their own metrics.
fn note_bad(name: &str, raw: &str, telemetry: &Telemetry) {
    let fresh = warned()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(name.to_string());
    if fresh {
        BAD_VALUES.fetch_add(1, Ordering::Relaxed);
        eprintln!("warning: ignoring malformed {name}={raw:?}; using the default");
    }
    telemetry.counter_add(BAD_ENV_COUNTER, 1);
}

/// Reads an environment knob parsed with [`FromStr`], falling back to
/// `default` when unset, and to `default` **with a counted warning**
/// when set but malformed. Leading/trailing whitespace is tolerated.
pub fn parse_knob<T: FromStr>(name: &str, default: T, telemetry: &Telemetry) -> T {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse::<T>() {
            Ok(v) => v,
            Err(_) => {
                note_bad(name, &raw, telemetry);
                default
            }
        },
    }
}

/// Like [`parse_knob`] but with no default: `None` when unset *or*
/// malformed (malformed still counts a warning).
pub fn parse_knob_opt<T: FromStr>(name: &str, telemetry: &Telemetry) -> Option<T> {
    match std::env::var(name) {
        Err(_) => None,
        Ok(raw) => match raw.trim().parse::<T>() {
            Ok(v) => Some(v),
            Err(_) => {
                note_bad(name, &raw, telemetry);
                None
            }
        },
    }
}

/// A duration knob expressed in milliseconds.
#[must_use]
pub fn duration_ms_knob(name: &str, default: Duration, telemetry: &Telemetry) -> Duration {
    Duration::from_millis(parse_knob(
        name,
        u64::try_from(default.as_millis()).unwrap_or(u64::MAX),
        telemetry,
    ))
}

/// A path knob. Any set value is accepted verbatim (paths have no
/// malformed form worth rejecting at parse time).
#[must_use]
pub fn path_knob(name: &str) -> Option<PathBuf> {
    std::env::var_os(name).map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole module: the warned-set and the
    // global tally are process-wide, so splitting into several #[test]
    // functions would race on them.
    #[test]
    fn knob_parsing_defaults_counts_and_warns_once() {
        let tel = Telemetry::enabled_logical();

        std::env::remove_var("BSML_TEST_KNOB_A");
        assert_eq!(parse_knob("BSML_TEST_KNOB_A", 7u64, &tel), 7);
        assert_eq!(tel.counter_value(BAD_ENV_COUNTER), 0);

        std::env::set_var("BSML_TEST_KNOB_A", " 42 ");
        assert_eq!(parse_knob("BSML_TEST_KNOB_A", 7u64, &tel), 42);
        assert_eq!(tel.counter_value(BAD_ENV_COUNTER), 0);

        let before = bad_env_values();
        std::env::set_var("BSML_TEST_KNOB_A", "soon");
        assert_eq!(parse_knob("BSML_TEST_KNOB_A", 7u64, &tel), 7);
        assert_eq!(bad_env_values(), before + 1);
        assert!(bad_env_names().contains(&"BSML_TEST_KNOB_A".to_string()));
        // A second malformed read of the same knob does not grow the
        // process tally (warn once), but the telemetry sink still sees
        // each rejection.
        assert_eq!(parse_knob("BSML_TEST_KNOB_A", 7u64, &tel), 7);
        assert_eq!(bad_env_values(), before + 1);
        assert_eq!(tel.counter_value(BAD_ENV_COUNTER), 2);

        std::env::set_var("BSML_TEST_KNOB_B", "99");
        assert_eq!(parse_knob_opt::<u64>("BSML_TEST_KNOB_B", &tel), Some(99));
        std::env::set_var("BSML_TEST_KNOB_B", "nope");
        assert_eq!(parse_knob_opt::<u64>("BSML_TEST_KNOB_B", &tel), None);

        std::env::set_var("BSML_TEST_KNOB_C", "250");
        assert_eq!(
            duration_ms_knob("BSML_TEST_KNOB_C", Duration::from_millis(1), &tel),
            Duration::from_millis(250)
        );

        std::env::set_var("BSML_TEST_KNOB_D", "/tmp/somewhere");
        assert_eq!(
            path_knob("BSML_TEST_KNOB_D"),
            Some(PathBuf::from("/tmp/somewhere"))
        );
        std::env::remove_var("BSML_TEST_KNOB_D");
        assert_eq!(path_knob("BSML_TEST_KNOB_D"), None);

        for name in ["BSML_TEST_KNOB_A", "BSML_TEST_KNOB_B", "BSML_TEST_KNOB_C"] {
            std::env::remove_var(name);
        }
    }
}
