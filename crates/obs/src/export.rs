//! Exporters: human-readable span tree, JSONL events, and Chrome
//! trace-event JSON.

use std::fmt::Write as _;

use crate::span::{FieldValue, SpanRecord};
use crate::Telemetry;

// ---------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------

/// Renders spans as an indented tree per track, followed by a metrics
/// table.
pub fn render_tree(tel: &Telemetry) -> String {
    let mut out = String::new();
    let tracks = tel.tracks();
    let mut spans = tel.spans();
    spans.sort_by_key(|s| s.start_seq);

    for (track_id, track_name) in tracks.iter().enumerate() {
        let on_track: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.track as usize == track_id)
            .collect();
        if on_track.is_empty() {
            continue;
        }
        let _ = writeln!(out, "[{track_name}]");
        let mut stack: Vec<&SpanRecord> = Vec::new();
        for span in on_track {
            while let Some(top) = stack.last() {
                if top.encloses(span) {
                    break;
                }
                stack.pop();
            }
            let indent = "  ".repeat(stack.len() + 1);
            let _ = write!(out, "{indent}{} — {} µs", span.label(), span.duration_us());
            if !span.fields.is_empty() {
                let fields: Vec<String> = span
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let _ = write!(out, "  [{}]", fields.join(" "));
            }
            out.push('\n');
            stack.push(span);
        }
    }

    let metrics = tel.metrics();
    if !metrics.counters.is_empty() {
        let _ = writeln!(out, "[counters]");
        for (name, value) in &metrics.counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    if !metrics.histograms.is_empty() {
        let _ = writeln!(out, "[histograms]");
        for (name, h) in &metrics.histograms {
            let _ = writeln!(
                out,
                "  {name}: n={} sum={} min={} max={} mean={:.1} p50≤{} p95≤{}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50_bound,
                h.p95_bound,
            );
        }
    }
    out
}

// ---------------------------------------------------------------
// JSON plumbing (zero-dependency)
// ---------------------------------------------------------------

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

fn push_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) => push_json_str(out, s),
    }
}

fn push_fields_object(out: &mut String, fields: &[(&'static str, FieldValue)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_field_value(out, v);
    }
    out.push('}');
}

// ---------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------

/// One JSON object per line: spans (in start order), then counters,
/// then histogram summaries.
pub fn to_jsonl(tel: &Telemetry) -> String {
    let tracks = tel.tracks();
    let mut spans = tel.spans();
    spans.sort_by_key(|s| (s.start_us, s.start_seq));
    let mut out = String::new();
    for s in &spans {
        let track = tracks.get(s.track as usize).map_or("?", String::as_str);
        out.push_str("{\"type\":\"span\",\"name\":");
        push_json_str(&mut out, &s.label());
        let _ = write!(
            out,
            ",\"track\":\"{track}\",\"start_us\":{},\"end_us\":{},\"fields\":",
            s.start_us, s.end_us
        );
        push_fields_object(&mut out, &s.fields);
        out.push_str("}\n");
    }
    let metrics = tel.metrics();
    for (name, value) in &metrics.counters {
        out.push_str("{\"type\":\"counter\",\"name\":");
        push_json_str(&mut out, name);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (name, h) in &metrics.histograms {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        push_json_str(&mut out, name);
        let _ = writeln!(
            out,
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50_bound\":{},\"p95_bound\":{}}}",
            h.count, h.sum, h.min, h.max, h.p50_bound, h.p95_bound
        );
    }
    out
}

// ---------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------

/// The Chrome trace-event "JSON object format": thread-name metadata
/// per track, one complete (`"X"`) event per span — timestamps
/// monotonic within the output — flow start/finish (`"s"`/`"f"`)
/// pairs per recorded flow (Perfetto draws them as arrows between the
/// tracks), and one final counter (`"C"`) event per counter. Loadable
/// in `chrome://tracing` and Perfetto.
pub fn to_chrome_trace(tel: &Telemetry) -> String {
    let tracks = tel.tracks();
    let mut spans = tel.spans();
    spans.sort_by_key(|s| (s.start_us, s.start_seq));

    let mut events: Vec<String> = Vec::new();

    for (tid, name) in tracks.iter().enumerate() {
        let mut e = String::from("{\"ph\":\"M\",\"pid\":0,\"name\":\"thread_name\",\"tid\":");
        let _ = write!(e, "{tid},\"args\":{{\"name\":");
        push_json_str(&mut e, name);
        e.push_str("}}");
        events.push(e);
    }

    for s in &spans {
        let mut e = String::from("{\"ph\":\"X\",\"pid\":0,\"tid\":");
        let _ = write!(
            e,
            "{},\"ts\":{},\"dur\":{},",
            s.track,
            s.start_us,
            s.duration_us()
        );
        e.push_str("\"cat\":\"bsml\",\"name\":");
        push_json_str(&mut e, &s.label());
        e.push_str(",\"args\":");
        push_fields_object(&mut e, &s.fields);
        e.push('}');
        events.push(e);
    }

    let mut flows = tel.flows();
    flows.sort_by_key(|f| (f.start_us, f.id));
    for f in &flows {
        let mut s = String::from("{\"ph\":\"s\",\"pid\":0,\"tid\":");
        let _ = write!(s, "{},\"ts\":{},\"id\":{},", f.from_track, f.start_us, f.id);
        s.push_str("\"cat\":\"bsml.flow\",\"name\":");
        push_json_str(&mut s, f.name);
        s.push('}');
        events.push(s);
        // "bp":"e" binds the finish to the enclosing slice, which is
        // what makes Perfetto draw the arrow into the receiving span.
        let mut e = String::from("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":");
        let _ = write!(e, "{},\"ts\":{},\"id\":{},", f.to_track, f.end_us, f.id);
        e.push_str("\"cat\":\"bsml.flow\",\"name\":");
        push_json_str(&mut e, f.name);
        e.push('}');
        events.push(e);
    }

    let end_ts = spans.iter().map(|s| s.end_us).max().unwrap_or(0);
    let metrics = tel.metrics();
    for (name, value) in &metrics.counters {
        let mut e = String::from("{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
        let _ = write!(e, "{end_ts},\"name\":");
        push_json_str(&mut e, name);
        let _ = write!(e, ",\"args\":{{\"value\":{value}}}}}");
        events.push(e);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Telemetry {
        let tel = Telemetry::enabled_logical();
        {
            let mut outer = tel.span("load");
            outer.set("phrases", 2u64);
            let mut inner = tel.span("parse");
            inner.set("bytes", 11u64);
            inner.set("kind", "module");
        }
        let p0 = tel.track("p0");
        drop(p0.span_idx("superstep", 1));
        tel.counter_add("eval.puts", 1);
        tel.histogram_record("barrier_wait_us", 12);
        tel
    }

    #[test]
    fn tree_shows_nesting_tracks_and_metrics() {
        let tree = sample().render_tree();
        assert!(tree.contains("[main]"), "{tree}");
        assert!(tree.contains("[p0]"), "{tree}");
        // parse is nested one level under load.
        assert!(tree.contains("\n    parse"), "{tree}");
        assert!(tree.contains("superstep 1"), "{tree}");
        assert!(tree.contains("eval.puts = 1"), "{tree}");
        assert!(tree.contains("barrier_wait_us: n=1"), "{tree}");
        assert!(tree.contains("[bytes=11 kind=module]"), "{tree}");
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let jsonl = sample().to_jsonl();
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert_eq!(jsonl.lines().count(), 3 + 1 + 1);
        assert!(jsonl.contains("\"type\":\"span\""));
        assert!(jsonl.contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"type\":\"histogram\""));
    }

    #[test]
    fn chrome_trace_is_monotonic_and_names_tracks() {
        let trace = sample().to_chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"name\":\"p0\""));
        // ts values of "X" events are non-decreasing.
        let mut last = 0u64;
        for line in trace.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
            let ts: u64 = line
                .split("\"ts\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|n| n.parse().ok())
                .expect("ts parses");
            assert!(ts >= last, "ts regressed in {line}");
            last = ts;
        }
        // Counter event present.
        assert!(trace.contains("\"ph\":\"C\""));
    }

    #[test]
    fn chrome_trace_emits_flow_pairs() {
        let tel = Telemetry::enabled_logical();
        let p0 = tel.track("p0");
        let p1 = tel.track("p1");
        tel.record_flow(7, "put", p0.current_track(), p1.current_track(), 3, 9);
        let trace = tel.to_chrome_trace();
        let start = trace
            .lines()
            .find(|l| l.contains("\"ph\":\"s\""))
            .expect("flow start event");
        assert!(start.contains("\"id\":7"), "{start}");
        assert!(start.contains("\"ts\":3"), "{start}");
        assert!(start.contains("\"tid\":1"), "{start}");
        let finish = trace
            .lines()
            .find(|l| l.contains("\"ph\":\"f\""))
            .expect("flow finish event");
        assert!(finish.contains("\"bp\":\"e\""), "{finish}");
        assert!(finish.contains("\"id\":7"), "{finish}");
        assert!(finish.contains("\"ts\":9"), "{finish}");
        assert!(finish.contains("\"tid\":2"), "{finish}");
    }

    #[test]
    fn json_strings_are_escaped() {
        let tel = Telemetry::enabled_logical();
        {
            let mut s = tel.span("odd");
            s.set("msg", "a\"b\\c\nd");
        }
        let jsonl = tel.to_jsonl();
        assert!(jsonl.contains(r#""msg":"a\"b\\c\nd""#), "{jsonl}");
    }

    #[test]
    fn disabled_exports_are_empty_but_valid() {
        let tel = Telemetry::disabled();
        assert_eq!(tel.render_tree(), "");
        assert_eq!(tel.to_jsonl(), "");
        assert!(tel.to_chrome_trace().contains("\"traceEvents\":[\n]"));
    }
}
