//! Spans: RAII-guarded timed regions with structured fields.

use std::sync::Arc;

use crate::{Inner, Telemetry, TrackId};

/// A structured field value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, words, work units).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text. Prefer the numeric variants on hot paths.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident via $conv:expr),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                #[allow(clippy::redundant_closure_call)]
                FieldValue::$variant(($conv)(v))
            }
        }
    )*};
}

impl_field_from! {
    u64 => U64 via (|v| v),
    u32 => U64 via u64::from,
    usize => U64 via (|v| v as u64),
    i64 => I64 via (|v| v),
    i32 => I64 via i64::from,
    f64 => F64 via (|v| v),
    bool => Bool via (|v| v),
    String => Str via (|v| v),
    &str => Str via str::to_string,
}

/// One closed span, as stored in the sink.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// The track (≈ thread / BSP processor) the span ran on.
    pub track: TrackId,
    /// Static span name.
    pub name: &'static str,
    /// Optional numeric suffix (`superstep 3`).
    pub index: Option<u64>,
    /// Start time, µs in the sink's time base.
    pub start_us: u64,
    /// End time, µs (≥ `start_us`).
    pub end_us: u64,
    /// Global open order — with `end_seq`, gives exact nesting.
    pub start_seq: u64,
    /// Global close order.
    pub end_seq: u64,
    /// Structured fields, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// The span's display label.
    #[must_use]
    pub fn label(&self) -> String {
        match self.index {
            Some(i) => format!("{} {i}", self.name),
            None => self.name.to_string(),
        }
    }

    /// The span's duration in µs.
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// `true` iff `self` strictly encloses `other` (by guard order).
    #[must_use]
    pub fn encloses(&self, other: &SpanRecord) -> bool {
        self.track == other.track
            && self.start_seq < other.start_seq
            && self.end_seq > other.end_seq
    }

    /// Looks up a field by key.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// An open span; closes and records itself on drop. Obtained from
/// [`Telemetry::span`]. Guards from a disabled handle are inert.
pub struct SpanGuard {
    active: Option<OpenSpan>,
}

struct OpenSpan {
    inner: Arc<Inner>,
    track: TrackId,
    name: &'static str,
    index: Option<u64>,
    start_us: u64,
    start_seq: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    pub(crate) fn inactive() -> SpanGuard {
        SpanGuard { active: None }
    }

    pub(crate) fn open(
        inner: Arc<Inner>,
        track: TrackId,
        name: &'static str,
        index: Option<u64>,
        start_us: u64,
        start_seq: u64,
    ) -> SpanGuard {
        SpanGuard {
            active: Some(OpenSpan {
                inner,
                track,
                name,
                index,
                start_us,
                start_seq,
                fields: Vec::new(),
            }),
        }
    }

    /// Attaches a field. No-op (the value is never even converted) on
    /// an inert guard.
    pub fn set(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(open) = &mut self.active {
            open.fields.push((key, value.into()));
        }
    }

    /// Whether this guard records anything.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.active.take() else {
            return;
        };
        let end_us = open.inner.clock.now_us().max(open.start_us);
        let end_seq = Telemetry::next_seq(&open.inner);
        // Ignore-poison lock: this Drop may run during a panic unwind
        // (a failing rank dropping its span guards); a second panic
        // here would abort the whole process and mask the original
        // failure.
        let mut state = open.inner.state();
        state.spans.push(SpanRecord {
            track: open.track,
            name: open.name,
            index: open.index,
            start_us: open.start_us,
            end_us,
            start_seq: open.start_seq,
            end_seq,
            fields: open.fields,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_values_convert_and_display() {
        assert_eq!(FieldValue::from(3u64).to_string(), "3");
        assert_eq!(FieldValue::from(-2i64).to_string(), "-2");
        assert_eq!(FieldValue::from(7u32), FieldValue::U64(7));
        assert_eq!(FieldValue::from(9usize), FieldValue::U64(9));
        assert_eq!(FieldValue::from(true).to_string(), "true");
        assert_eq!(FieldValue::from("put").to_string(), "put");
        assert_eq!(FieldValue::from(1.5f64).to_string(), "1.5");
    }

    #[test]
    fn labels_and_lookup() {
        let r = SpanRecord {
            track: 0,
            name: "superstep",
            index: Some(4),
            start_us: 0,
            end_us: 10,
            start_seq: 0,
            end_seq: 1,
            fields: vec![("w", FieldValue::U64(42))],
        };
        assert_eq!(r.label(), "superstep 4");
        assert_eq!(r.duration_us(), 10);
        assert_eq!(r.field("w"), Some(&FieldValue::U64(42)));
        assert_eq!(r.field("h"), None);
    }

    #[test]
    fn inert_guard_is_harmless() {
        let mut g = SpanGuard::inactive();
        assert!(!g.is_active());
        g.set("k", "v");
        drop(g);
    }
}
