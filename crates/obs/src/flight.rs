//! The crash-time **flight recorder**: a fixed-capacity per-rank ring
//! buffer of protocol-level events, each stamped with the rank's
//! Lamport clock (DESIGN.md §12).
//!
//! The recorder is the black box of a distributed attempt. Every rank
//! records what its reliable-exchange engine and barrier discipline
//! did — frames sent/received/acked/retransmitted/corrupt-rejected,
//! barrier enter/exit, checkpoint stage/commit, fault firings,
//! backpressure waits — at a cost of one short mutex-protected push
//! per event. When the buffer is full the *oldest* event is evicted
//! (and counted), so a long healthy run keeps only its recent past:
//! exactly what a postmortem wants. On attempt failure the supervisor
//! drains all ranks' recorders into a checksummed postmortem bundle;
//! on success the events are simply dropped.
//!
//! ```
//! use bsml_obs::{FlightEvent, FlightRecorder};
//!
//! let rec = FlightRecorder::new(2);
//! rec.record(1, FlightEvent::BarrierEnter { superstep: 0 });
//! rec.record(2, FlightEvent::BarrierExit { superstep: 0 });
//! rec.record(3, FlightEvent::FaultFired { superstep: 1, kind: 0 });
//! // Capacity 2: the oldest event was evicted and counted.
//! assert_eq!(rec.dropped(), 1);
//! let events = rec.drain();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].lamport, 2);
//! ```

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One protocol-level event of a distributed attempt, as seen by one
/// rank. All fields are logical (ranks, sequence numbers, Lamport
/// stamps, word/byte counts) — no wall-clock time — so a seeded run
/// records a bit-identical event stream every time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlightEvent {
    /// A data frame was stamped and handed to the exchange engine.
    /// `bytes` is the encoded frame size (what travels on the wire).
    FrameSent {
        /// Destination rank.
        to: u64,
        /// Per-link sequence number.
        seq: u64,
        /// The sender's superstep.
        superstep: u64,
        /// Encoded frame size in bytes.
        bytes: u64,
    },
    /// A data frame was accepted (exact expected sequence number).
    FrameReceived {
        /// Source rank.
        from: u64,
        /// Per-link sequence number.
        seq: u64,
        /// The *sender's* superstep, from the frame header.
        superstep: u64,
        /// The sender's Lamport stamp, from the frame header — the
        /// analyzer checks `lamport > sent_lamport` (no receive before
        /// its send).
        sent_lamport: u64,
    },
    /// An acknowledgement frame was sent for a received data frame.
    AckSent {
        /// The rank being acknowledged.
        to: u64,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// An acknowledgement for one of our in-flight data frames
    /// arrived.
    AckReceived {
        /// The acknowledging rank.
        from: u64,
        /// The acknowledged sequence number.
        seq: u64,
        /// Exchange-loop poll iterations between first transmission
        /// and this ack (the logical round-trip time).
        polls: u64,
    },
    /// An unacked data frame was retransmitted (original stamp, new
    /// transmission).
    FrameRetransmitted {
        /// Destination rank.
        to: u64,
        /// Per-link sequence number.
        seq: u64,
    },
    /// The wire decoder rejected an incoming frame (checksum,
    /// truncation, bad tag) — treated as lost, repaired by
    /// retransmission.
    CorruptRejected,
    /// `try_send` was refused by a full peer mailbox.
    BackpressureWait {
        /// The rank whose mailbox was full.
        to: u64,
    },
    /// This rank arrived at the superstep's exit barrier.
    BarrierEnter {
        /// The superstep being completed.
        superstep: u64,
    },
    /// The exit barrier released this rank.
    BarrierExit {
        /// The superstep just completed.
        superstep: u64,
    },
    /// One superstep's local accounting, measured at its exit: the
    /// fuel this rank burned and the words it exchanged since the
    /// previous superstep boundary — what the postmortem analyzer
    /// compares against the lockstep cost model's per-superstep
    /// `(w, h)` figures.
    SuperstepEnd {
        /// The superstep just completed.
        superstep: u64,
        /// Evaluator steps (fuel) this rank burned this superstep.
        work: u64,
        /// Words this rank sent this superstep (self-messages
        /// excluded).
        sent_words: u64,
        /// Words this rank received this superstep.
        received_words: u64,
    },
    /// This rank staged a checkpoint frame for the given generation.
    CheckpointStaged {
        /// The staged generation (completed-superstep count).
        generation: u64,
    },
    /// The generation was committed at the exit barrier (a
    /// consistent cut: every rank records this after the barrier
    /// releases it).
    CheckpointCommitted {
        /// The committed generation.
        generation: u64,
    },
    /// A planned fault fired on this rank (crash, panic, stall or
    /// message drop — see `kind`).
    FaultFired {
        /// The superstep the fault was keyed on.
        superstep: u64,
        /// The fault kind's wire code (see `bsml_bsp::faults`).
        kind: u64,
    },
    /// A rank↔coordinator control link was lost (read error, EOF, or
    /// heartbeat silence) and healing began. Recorded by whichever
    /// side noticed.
    LinkDown {
        /// The rank whose link dropped.
        rank: u64,
        /// Supersteps that rank had completed when the link dropped.
        superstep: u64,
    },
    /// The control link was healed: the rejoin handshake completed and
    /// the egress buffers were replayed.
    LinkUp {
        /// The rank whose link healed.
        rank: u64,
        /// Supersteps that rank had completed at the heal.
        superstep: u64,
    },
}

/// A [`FlightEvent`] with the Lamport stamp it was recorded at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedFlightEvent {
    /// The recording rank's Lamport clock at the event.
    pub lamport: u64,
    /// What happened.
    pub event: FlightEvent,
}

/// A fixed-capacity ring buffer of [`TimedFlightEvent`]s. Records are
/// kept in insertion order (which is causal order for a single rank:
/// the Lamport stamps are non-decreasing); when full, the oldest
/// record is evicted and counted in [`FlightRecorder::dropped`].
///
/// The buffer is internally locked so the supervisor can drain it
/// after the rank's thread is gone — including a thread that
/// *panicked* while holding nothing of ours (poisoning is ignored; the
/// protected data is a plain event queue, valid at every instant).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TimedFlightEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events. Capacity 0 is
    /// legal: every event is immediately dropped (but still counted) —
    /// a recorder that measures overhead without retaining anything.
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            state: Mutex::new(Ring {
                // A huge configured capacity must not pre-allocate:
                // the queue grows to the high-water mark actually hit.
                events: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Ring> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event at the given Lamport stamp.
    pub fn record(&self, lamport: u64, event: FlightEvent) {
        let mut ring = self.lock();
        if self.capacity == 0 {
            ring.dropped += 1;
            return;
        }
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TimedFlightEvent { lamport, event });
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events evicted (or refused, at capacity 0) so far. A non-zero
    /// count tells the postmortem analyzer the record is a *suffix* of
    /// the rank's history, so a missing send for an observed receive
    /// is inconclusive rather than a causality violation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Removes and returns all buffered events, oldest first (the
    /// rank's causal order). The dropped count is preserved.
    #[must_use]
    pub fn drain(&self) -> Vec<TimedFlightEvent> {
        self.lock().events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(i, FlightEvent::BarrierEnter { superstep: i });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let events = rec.drain();
        assert_eq!(
            events.iter().map(|e| e.lamport).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(rec.len(), 0);
        assert!(rec.is_empty());
        // Dropped survives the drain — it describes history, not the
        // current buffer.
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn capacity_zero_counts_but_keeps_nothing() {
        let rec = FlightRecorder::new(0);
        rec.record(1, FlightEvent::CorruptRejected);
        rec.record(2, FlightEvent::CorruptRejected);
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 2);
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn capacity_one_keeps_the_newest() {
        let rec = FlightRecorder::new(1);
        rec.record(7, FlightEvent::BarrierEnter { superstep: 0 });
        rec.record(9, FlightEvent::BarrierExit { superstep: 0 });
        let events = rec.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].lamport, 9);
        assert_eq!(events[0].event, FlightEvent::BarrierExit { superstep: 0 });
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn survives_a_poisoned_lock() {
        let rec = std::sync::Arc::new(FlightRecorder::new(4));
        let r2 = std::sync::Arc::clone(&rec);
        let _ = std::thread::spawn(move || {
            let _guard = r2.state.lock().expect("first lock");
            panic!("poison the recorder");
        })
        .join();
        rec.record(1, FlightEvent::CorruptRejected);
        assert_eq!(rec.len(), 1);
    }
}
