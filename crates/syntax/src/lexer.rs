//! The mini-BSML lexer.
//!
//! Supports OCaml-style nested comments `(* … *)`, decimal integer
//! literals, keywords, identifiers and the symbolic operators used by
//! the parser.

use bsml_ast::Span;

use crate::error::ParseError;
use crate::token::{keyword, Token, TokenKind};

/// Tokenizes `source` into a vector ending with an
/// [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`ParseError`] on an unknown character, an unterminated
/// comment, or an integer literal out of `i64` range.
///
/// # Example
///
/// ```
/// use bsml_syntax::{tokenize, TokenKind};
///
/// let toks = tokenize("fun x -> x + 1")?;
/// assert_eq!(toks.len(), 7); // fun, x, ->, x, +, 1, eof
/// assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
/// # Ok::<(), bsml_syntax::ParseError>(())
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested comment.
                let mut depth = 1;
                i += 2;
                while depth > 0 {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::new(
                            "unterminated comment",
                            span(start, bytes.len()),
                        ));
                    }
                    if bytes[i] == b'(' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes[i + 1] == b')' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| {
                    ParseError::new(
                        format!("integer literal `{text}` out of range"),
                        span(start, i),
                    )
                })?;
                tokens.push(Token::new(TokenKind::Int(value), span(start, i)));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let kind = keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()));
                tokens.push(Token::new(kind, span(start, i)));
            }
            _ => {
                let (kind, len) = match (b, bytes.get(i + 1)) {
                    (b'-', Some(b'>')) => (TokenKind::Arrow, 2),
                    (b':', Some(b':')) => (TokenKind::ColonColon, 2),
                    (b':', Some(b'=')) => (TokenKind::ColonEq, 2),
                    (b'<', Some(b'=')) => (TokenKind::Le, 2),
                    (b'>', Some(b'=')) => (TokenKind::Ge, 2),
                    (b'&', Some(b'&')) => (TokenKind::AmpAmp, 2),
                    (b';', Some(b';')) => (TokenKind::SemiSemi, 2),
                    (b'|', Some(b'|')) => (TokenKind::BarBar, 2),
                    (b'(', _) => (TokenKind::LParen, 1),
                    (b')', _) => (TokenKind::RParen, 1),
                    (b'[', _) => (TokenKind::LBracket, 1),
                    (b']', _) => (TokenKind::RBracket, 1),
                    (b',', _) => (TokenKind::Comma, 1),
                    (b';', _) => (TokenKind::Semi, 1),
                    (b'|', _) => (TokenKind::Bar, 1),
                    (b'!', _) => (TokenKind::Bang, 1),
                    (b'=', _) => (TokenKind::Equal, 1),
                    (b'<', _) => (TokenKind::Lt, 1),
                    (b'>', _) => (TokenKind::Gt, 1),
                    (b'+', _) => (TokenKind::Plus, 1),
                    (b'-', _) => (TokenKind::Minus, 1),
                    (b'*', _) => (TokenKind::Star, 1),
                    (b'/', _) => (TokenKind::Slash, 1),
                    _ => {
                        // `start` is always a char boundary (every
                        // multi-byte character reaches this arm on its
                        // first byte), but the character may span
                        // several bytes — slicing `start..start + 1`
                        // would panic on non-ASCII input.
                        let ch = source[start..]
                            .chars()
                            .next()
                            .expect("start lies on a char boundary");
                        return Err(ParseError::new(
                            format!("unexpected character `{ch}`"),
                            span(start, start + ch.len_utf8()),
                        ));
                    }
                };
                i += len;
                tokens.push(Token::new(kind, span(start, i)));
            }
        }
    }
    tokens.push(Token::new(TokenKind::Eof, span(i, i)));
    Ok(tokens)
}

fn span(start: usize, end: usize) -> Span {
    Span::new(start as u32, end as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("fun funny let letter"),
            vec![
                TokenKind::Fun,
                TokenKind::Ident("funny".into()),
                TokenKind::Let,
                TokenKind::Ident("letter".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn primes_and_underscores_in_identifiers() {
        assert_eq!(
            kinds("x' foo_bar _tmp"),
            vec![
                TokenKind::Ident("x'".into()),
                TokenKind::Ident("foo_bar".into()),
                TokenKind::Ident("_tmp".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 007"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn number_overflow_is_an_error() {
        let err = tokenize("99999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            kinds("-> :: <= >= && || < > = -"),
            vec![
                TokenKind::Arrow,
                TokenKind::ColonColon,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AmpAmp,
                TokenKind::BarBar,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Equal,
                TokenKind::Minus,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lone_colon_is_an_error() {
        // `:` alone is not part of the language.
        let err = tokenize(": x").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn multibyte_characters_error_instead_of_panicking() {
        // Regression (found by `tests/frontend_fuzz.rs`): the
        // unexpected-character path used to slice one *byte*, which
        // panicked mid-character on non-ASCII input.
        for src in ["⟨1⟩", "é", "🦀", "x ⟩", "日本語"] {
            let err = tokenize(src).unwrap_err();
            assert!(err.message.contains("unexpected character"), "{src}");
        }
        let err = tokenize("⟨").unwrap_err();
        assert!(err.message.contains('⟨'));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 (* hello *) 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn nested_comments() {
        assert_eq!(
            kinds("1 (* a (* b *) c *) 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        let err = tokenize("1 (* oops").unwrap_err();
        assert!(err.message.contains("unterminated comment"));
    }

    #[test]
    fn imperative_tokens() {
        assert_eq!(
            kinds("while do done for to ; ;; ! :="),
            vec![
                TokenKind::While,
                TokenKind::Do,
                TokenKind::Done,
                TokenKind::For,
                TokenKind::To,
                TokenKind::Semi,
                TokenKind::SemiSemi,
                TokenKind::Bang,
                TokenKind::ColonEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_are_accurate() {
        let toks = tokenize("let x = 10").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 5));
        assert_eq!(toks[2].span, Span::new(6, 7));
        assert_eq!(toks[3].span, Span::new(8, 10));
    }

    #[test]
    fn star_and_comment_disambiguation() {
        assert_eq!(
            kinds("a * b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Star,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
        // `(*)` opens a comment in OCaml; we follow suit, so the
        // multiplication section must be written `( * )`. Check that
        // the lexer treats `( * )` as three tokens.
        assert_eq!(
            kinds("( * )"),
            vec![
                TokenKind::LParen,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }
}
