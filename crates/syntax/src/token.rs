//! Tokens of the concrete mini-BSML syntax.

use std::fmt;

use bsml_ast::Span;

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier.
    Ident(String),
    /// `fun`
    Fun,
    /// `let`
    Let,
    /// `rec`
    Rec,
    /// `in`
    In,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `at`
    At,
    /// `true`
    True,
    /// `false`
    False,
    /// `case`
    Case,
    /// `of`
    Of,
    /// `inl`
    Inl,
    /// `inr`
    Inr,
    /// `match`
    Match,
    /// `with`
    With,
    /// `mod`
    Mod,
    /// `while`
    While,
    /// `do`
    Do,
    /// `done`
    Done,
    /// `for`
    For,
    /// `to`
    To,
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `;;` (toplevel declaration terminator)
    SemiSemi,
    /// `|`
    Bar,
    /// `::`
    ColonColon,
    /// `:=`
    ColonEq,
    /// `!`
    Bang,
    /// `=`
    Equal,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&&`
    AmpAmp,
    /// `||`
    BarBar,
    /// End of input (always the last token).
    Eof,
}

impl TokenKind {
    /// A short human-readable description for diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Int(n) => return write!(f, "{n}"),
            TokenKind::Ident(s) => return f.write_str(s),
            TokenKind::Fun => "fun",
            TokenKind::Let => "let",
            TokenKind::Rec => "rec",
            TokenKind::In => "in",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Else => "else",
            TokenKind::At => "at",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Case => "case",
            TokenKind::Of => "of",
            TokenKind::Inl => "inl",
            TokenKind::Inr => "inr",
            TokenKind::Match => "match",
            TokenKind::With => "with",
            TokenKind::Mod => "mod",
            TokenKind::While => "while",
            TokenKind::Do => "do",
            TokenKind::Done => "done",
            TokenKind::For => "for",
            TokenKind::To => "to",
            TokenKind::Arrow => "->",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::SemiSemi => ";;",
            TokenKind::Bar => "|",
            TokenKind::ColonColon => "::",
            TokenKind::ColonEq => ":=",
            TokenKind::Bang => "!",
            TokenKind::Equal => "=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::AmpAmp => "&&",
            TokenKind::BarBar => "||",
            TokenKind::Eof => "<eof>",
        };
        f.write_str(s)
    }
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

impl Token {
    /// Pairs a kind with a span.
    #[must_use]
    pub fn new(kind: TokenKind, span: Span) -> Token {
        Token { kind, span }
    }
}

/// Looks up the keyword for an identifier-shaped word, if any.
#[must_use]
pub fn keyword(word: &str) -> Option<TokenKind> {
    Some(match word {
        "fun" => TokenKind::Fun,
        "let" => TokenKind::Let,
        "rec" => TokenKind::Rec,
        "in" => TokenKind::In,
        "if" => TokenKind::If,
        "then" => TokenKind::Then,
        "else" => TokenKind::Else,
        "at" => TokenKind::At,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        "case" => TokenKind::Case,
        "of" => TokenKind::Of,
        "inl" => TokenKind::Inl,
        "inr" => TokenKind::Inr,
        "match" => TokenKind::Match,
        "with" => TokenKind::With,
        "mod" => TokenKind::Mod,
        "while" => TokenKind::While,
        "do" => TokenKind::Do,
        "done" => TokenKind::Done,
        "for" => TokenKind::For,
        "to" => TokenKind::To,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(keyword("fun"), Some(TokenKind::Fun));
        assert_eq!(keyword("mkpar"), None); // operators stay identifiers
        assert_eq!(keyword("x"), None);
    }

    #[test]
    fn display() {
        assert_eq!(TokenKind::Arrow.to_string(), "->");
        assert_eq!(TokenKind::Int(7).to_string(), "7");
        assert_eq!(TokenKind::Ident("foo".into()).to_string(), "foo");
    }

    #[test]
    fn describe() {
        assert_eq!(TokenKind::Int(7).describe(), "integer `7`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
    }
}
