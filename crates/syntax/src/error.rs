//! Parse diagnostics.

use std::fmt;

use bsml_ast::Span;

/// A lexing or parsing error with a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Creates an error.
    #[must_use]
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with the offending source line and a caret
    /// marker, e.g.:
    ///
    /// ```text
    /// parse error at 1:9: expected `->`, found `=`
    ///   let f x = = 1 in f
    ///           ^
    /// ```
    #[must_use]
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let mut out = format!("parse error at {line}:{col}: {}", self.message);
        if let Some(text) = source.lines().nth(line - 1) {
            out.push_str(&format!("\n  {text}\n  "));
            out.push_str(&" ".repeat(col.saturating_sub(1)));
            let width = (self.span.len() as usize).clamp(1, text.len() + 1 - col.min(text.len()));
            out.push_str(&"^".repeat(width));
        }
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_span_and_message() {
        let e = ParseError::new("unexpected `)`", Span::new(3, 4));
        assert_eq!(e.to_string(), "parse error at 3..4: unexpected `)`");
    }

    #[test]
    fn render_points_at_the_offence() {
        let src = "let x = )";
        let e = ParseError::new("unexpected `)`", Span::new(8, 9));
        let rendered = e.render(src);
        assert!(rendered.contains("1:9"));
        assert!(rendered.contains("let x = )"));
        assert!(rendered.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn render_multiline_source() {
        let src = "1 +\n2 +\n)";
        let e = ParseError::new("unexpected `)`", Span::new(8, 9));
        let rendered = e.render(src);
        assert!(rendered.contains("3:1"), "got: {rendered}");
    }
}
