//! Toplevel programs (modules): sequences of `let` declarations with
//! an optional final expression, OCaml-style.
//!
//! ```text
//! let replicate x = mkpar (fun pid -> x) ;;
//! let rec fact n = if n = 0 then 1 else n * fact (n - 1) ;;
//! replicate (fact 5)
//! ```
//!
//! `;;` terminators are optional before a following `let`. A
//! declaration `let x = e` at the toplevel (no `in`) binds `x` for
//! the rest of the module; `let x = e in …` is an ordinary
//! expression.

use std::fmt;

use bsml_ast::{Expr, Ident, Span};

use crate::error::ParseError;
use crate::parser::Parser;
use crate::token::TokenKind;

/// One toplevel declaration `let name = expr`.
#[derive(Clone, Debug, Eq)]
pub struct Decl {
    /// The bound name.
    pub name: Ident,
    /// The bound expression (parameters already desugared to
    /// lambdas, `let rec` already desugared through `fix`).
    pub expr: Expr,
    /// Source range of the declaration.
    pub span: Span,
}

// Structural equality, like `Expr`: spans are ignored.
impl PartialEq for Decl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.expr == other.expr
    }
}

/// A toplevel program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Module {
    /// The declarations, in order.
    pub decls: Vec<Decl>,
    /// The optional final expression.
    pub body: Option<Expr>,
}

impl Module {
    /// The module converted to a single expression: the declarations
    /// folded into nested `let`s around the body.
    ///
    /// Returns `None` if the module has no final expression.
    #[must_use]
    pub fn to_expr(&self) -> Option<Expr> {
        let body = self.body.clone()?;
        Some(self.decls.iter().rev().fold(body, |acc, d| {
            Expr::new(
                bsml_ast::ExprKind::Let(d.name.clone(), Box::new(d.expr.clone()), Box::new(acc)),
                d.span,
            )
        }))
    }

    /// `true` when the module has neither declarations nor a body.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty() && self.body.is_none()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.decls {
            writeln!(f, "let {} = {} ;;", d.name, d.expr)?;
        }
        if let Some(body) = &self.body {
            writeln!(f, "{body}")?;
        }
        Ok(())
    }
}

/// Parses a toplevel program.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic errors.
///
/// # Example
///
/// ```
/// use bsml_syntax::parse_module;
///
/// let m = parse_module(
///     "let double x = x * 2 ;;
///      let rec iter n f x = if n = 0 then x else iter (n - 1) f (f x) ;;
///      iter 5 double 1")?;
/// assert_eq!(m.decls.len(), 2);
/// assert!(m.body.is_some());
/// # Ok::<(), bsml_syntax::ParseError>(())
/// ```
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    parse_module_with(source, &bsml_obs::Telemetry::disabled())
}

/// [`parse_module`] under a telemetry `parse` span recording the
/// source size, token count, and declaration count.
///
/// # Errors
///
/// Same as [`parse_module`].
pub fn parse_module_with(
    source: &str,
    telemetry: &bsml_obs::Telemetry,
) -> Result<Module, ParseError> {
    let mut sp = telemetry.span("parse");
    sp.set("bytes", source.len());
    let mut p = Parser::new(source)?;
    sp.set("tokens", p.token_count());
    let mut module = Module::default();
    loop {
        // Optional `;;` separators.
        while p.eat_kind(&TokenKind::SemiSemi) {}
        if p.at_eof() {
            break;
        }
        if p.peek_kind() == &TokenKind::Let {
            let checkpoint = p.checkpoint();
            match p.parse_toplevel_let()? {
                Some(decl) => {
                    module.decls.push(decl);
                    continue;
                }
                None => {
                    // It was `let … in …`: re-parse as the final
                    // expression.
                    p.rewind(checkpoint);
                }
            }
        }
        let body = p.parse_full_expr()?;
        while p.eat_kind(&TokenKind::SemiSemi) {}
        p.expect_eof()?;
        module.body = Some(body);
        break;
    }
    sp.set("decls", module.decls.len());
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_ast::build as b;

    #[test]
    fn empty_module() {
        let m = parse_module("").unwrap();
        assert!(m.is_empty());
        assert!(m.to_expr().is_none());
    }

    #[test]
    fn single_declaration() {
        let m = parse_module("let x = 41 + 1").unwrap();
        assert_eq!(m.decls.len(), 1);
        assert_eq!(m.decls[0].name.as_str(), "x");
        assert_eq!(m.decls[0].expr, b::add(b::int(41), b::int(1)));
        assert!(m.body.is_none());
    }

    #[test]
    fn declarations_with_params_and_rec() {
        let m = parse_module(
            "let double x = x * 2 ;;
             let rec fact n = if n = 0 then 1 else n * fact (n - 1) ;;",
        )
        .unwrap();
        assert_eq!(m.decls.len(), 2);
        assert_eq!(
            m.decls[0].expr,
            b::fun_("x", b::mul(b::var("x"), b::int(2)))
        );
        // let rec desugars through fix.
        assert!(m.decls[1].expr.to_string().starts_with("fix"));
    }

    #[test]
    fn final_expression() {
        let m = parse_module("let x = 1 ;; x + 1").unwrap();
        assert_eq!(m.decls.len(), 1);
        assert_eq!(m.body, Some(b::add(b::var("x"), b::int(1))));
        let folded = m.to_expr().unwrap();
        assert_eq!(
            folded,
            b::let_("x", b::int(1), b::add(b::var("x"), b::int(1)))
        );
    }

    #[test]
    fn let_in_is_an_expression_not_a_decl() {
        let m = parse_module("let x = 1 in x + 1").unwrap();
        assert!(m.decls.is_empty());
        assert_eq!(
            m.body,
            Some(b::let_("x", b::int(1), b::add(b::var("x"), b::int(1))))
        );
    }

    #[test]
    fn semisemi_is_optional_before_let() {
        let a = parse_module("let x = 1 ;; let y = 2 ;; x + y").unwrap();
        let b_ = parse_module("let x = 1 let y = 2 x + y");
        // Without `;;`, `let y = …` would greedily be parsed as
        // parameters of the binding? No: `x = 1 let` is a syntax
        // error — the separator is required between a value binding
        // and a following `let` only when ambiguous; keep the
        // explicit form working.
        assert_eq!(a.decls.len(), 2);
        assert!(b_.is_err() || b_.unwrap().decls.len() == 2);
    }

    #[test]
    fn display_round_trips() {
        let src = "let x = 1 ;; let f y = y + x ;; f 41";
        let m = parse_module(src).unwrap();
        let printed = m.to_string();
        let again = parse_module(&printed).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_module("let x = 1 ;; 5 )").is_err());
    }

    #[test]
    fn mixed_expression_after_decls() {
        let m = parse_module(
            "let v = mkpar (fun i -> i) ;;
             apply (mkpar (fun i -> fun x -> x + 1), v)",
        )
        .unwrap();
        assert_eq!(m.decls.len(), 1);
        assert!(m.body.is_some());
        assert!(m.to_expr().unwrap().is_closed());
    }
}
