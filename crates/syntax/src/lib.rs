//! Concrete syntax for mini-BSML: lexer, parser and diagnostics.
//!
//! The grammar follows the paper's Figure 3 with an OCaml-flavoured
//! concrete syntax, plus the §6 extensions (sums and lists) and a few
//! conveniences (`let f x y = …`, `let rec`, infix operators,
//! `(* comments *)`).
//!
//! ```
//! use bsml_syntax::parse;
//!
//! let e = parse("let x = 1 + 2 in mkpar (fun pid -> pid * x)")?;
//! assert!(e.is_closed());
//! # Ok::<(), bsml_syntax::ParseError>(())
//! ```
//!
//! Parallel vector literals `⟨…⟩` are *runtime-only* extended
//! expressions (paper §3): the parser deliberately has no syntax for
//! them, so source programs can only create vectors through `mkpar`.

pub mod error;
pub mod lexer;
pub mod module;
pub mod parser;
pub mod token;

pub use error::ParseError;
pub use lexer::tokenize;
pub use module::{parse_module, parse_module_with, Decl, Module};
pub use parser::{parse, parse_with};
pub use token::{Token, TokenKind};
