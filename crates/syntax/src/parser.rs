//! Recursive-descent parser for mini-BSML.
//!
//! Precedence, loosest first:
//!
//! ```text
//! fun / let / if / case / match        (prefix forms)
//! ||                                   left
//! &&                                   left
//! = < <= > >=                          non-associative
//! ::                                   right
//! + -                                  left
//! * / mod                              left
//! application                          left
//! atoms
//! ```
//!
//! The BSP primitives (`mkpar`, `apply`, `put`, …) are *reserved
//! operator names*: they parse as operators and cannot be rebound.

use bsml_ast::{Const, Expr, ExprKind, Ident, Op, Span};

use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parses a complete mini-BSML expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic errors, including
/// trailing input after a complete expression.
///
/// # Example
///
/// ```
/// use bsml_syntax::parse;
///
/// let e = parse("apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i))")?;
/// assert!(e.mentions_parallelism());
/// # Ok::<(), bsml_syntax::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(source)?;
    let e = p.expr()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

/// [`parse`] under a telemetry `parse` span recording the source size
/// and token count. With a disabled handle this is exactly [`parse`].
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_with(source: &str, telemetry: &bsml_obs::Telemetry) -> Result<Expr, ParseError> {
    let mut sp = telemetry.span("parse");
    sp.set("bytes", source.len());
    let mut p = Parser::new(source)?;
    sp.set("tokens", p.token_count());
    let e = p.expr()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(source: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: tokenize(source)?,
            pos: 0,
        })
    }

    /// Number of tokens, excluding the trailing `Eof`.
    pub(crate) fn token_count(&self) -> usize {
        self.tokens.len().saturating_sub(1)
    }

    /// The current position, for backtracking.
    pub(crate) fn checkpoint(&self) -> usize {
        self.pos
    }

    /// Returns to a previously saved position.
    pub(crate) fn rewind(&mut self, checkpoint: usize) {
        self.pos = checkpoint;
    }

    pub(crate) fn peek_kind(&self) -> &TokenKind {
        self.peek()
    }

    pub(crate) fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        self.eat(kind)
    }

    pub(crate) fn at_eof(&self) -> bool {
        self.peek() == &TokenKind::Eof
    }

    pub(crate) fn expect_eof(&mut self) -> Result<(), ParseError> {
        self.expect(&TokenKind::Eof).map(|_| ())
    }

    pub(crate) fn parse_full_expr(&mut self) -> Result<Expr, ParseError> {
        self.expr()
    }

    /// Parses `let [rec] name params* = expr` at the toplevel.
    /// Returns `None` (for the caller to rewind) when the binding
    /// continues with `in` — i.e. it was an expression after all.
    pub(crate) fn parse_toplevel_let(&mut self) -> Result<Option<crate::module::Decl>, ParseError> {
        let start = self.expect(&TokenKind::Let)?.span;
        let recursive = self.eat(&TokenKind::Rec);
        let name = self.expect_binder()?;
        let mut params = Vec::new();
        while matches!(self.peek(), TokenKind::Ident(_)) {
            params.push(self.expect_binder()?);
        }
        self.expect(&TokenKind::Equal)?;
        let mut bound = self.expr()?;
        if self.peek() == &TokenKind::In {
            return Ok(None);
        }
        let span = start.join(bound.span);
        for p in params.into_iter().rev() {
            bound = Expr::new(ExprKind::Fun(p, Box::new(bound)), span);
        }
        if recursive {
            let lam = Expr::new(ExprKind::Fun(name.clone(), Box::new(bound)), span);
            bound = Expr::new(
                ExprKind::App(
                    Box::new(Expr::new(ExprKind::Op(Op::Fix), span)),
                    Box::new(lam),
                ),
                span,
            );
        }
        Ok(Some(crate::module::Decl {
            name,
            expr: bound,
            span,
        }))
    }
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!("expected `{kind}`, found {}", self.peek().describe()),
                self.peek_span(),
            ))
        }
    }

    fn expect_binder(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                if Op::from_name(&name).is_some() {
                    return Err(ParseError::new(
                        format!("`{name}` is a reserved operator name and cannot be bound"),
                        self.peek_span(),
                    ));
                }
                self.bump();
                Ok(Ident::new(name))
            }
            other => Err(ParseError::new(
                format!("expected an identifier, found {}", other.describe()),
                self.peek_span(),
            )),
        }
    }

    /// Top-level expression: a `;`-sequence of phrases. `e₁; e₂`
    /// desugars to `let _ = e₁ in e₂` (imperative sequencing for the
    /// §6 references extension). List literals parse their items
    /// below this level, so `[1; 2]` keeps its meaning.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.expr_no_seq()?;
        if self.peek() != &TokenKind::Semi {
            return Ok(first);
        }
        self.bump();
        let rest = self.expr()?; // right associative
        let span = first.span.join(rest.span);
        Ok(Expr::new(
            ExprKind::Let(Ident::new("_"), Box::new(first), Box::new(rest)),
            span,
        ))
    }

    /// An expression that does not swallow `;` (list items, and the
    /// operand level of sequencing itself).
    fn expr_no_seq(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Fun => self.fun(),
            TokenKind::Let => self.let_(),
            TokenKind::If => self.if_(),
            TokenKind::Case => self.case(),
            TokenKind::Match => self.match_(),
            TokenKind::While => self.while_(),
            TokenKind::For => self.for_(),
            _ => self.assign_expr(),
        }
    }

    /// `while c do body done` — desugars through `fix`:
    /// `fix (fun loop -> fun u -> if c then (body; loop ()) else ()) ()`.
    fn while_(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&TokenKind::While)?.span;
        let cond = self.expr()?;
        self.expect(&TokenKind::Do)?;
        let body = self.expr()?;
        let end = self.expect(&TokenKind::Done)?.span;
        let span = start.join(end);
        Ok(desugar_loop(span, cond, body))
    }

    /// `for x = a to b do body done` — desugars through `fix` with a
    /// reference-free counter passed as the loop argument.
    fn for_(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&TokenKind::For)?.span;
        let var = self.expect_binder()?;
        self.expect(&TokenKind::Equal)?;
        let from = self.expr()?;
        self.expect(&TokenKind::To)?;
        let to = self.expr()?;
        self.expect(&TokenKind::Do)?;
        let body = self.expr()?;
        let end = self.expect(&TokenKind::Done)?.span;
        let span = start.join(end);
        Ok(desugar_for(span, var, from, to, body))
    }

    /// `e1 := e2` (right associative, loosest infix level).
    fn assign_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.or_expr()?;
        if self.eat(&TokenKind::ColonEq) {
            // Right associative, allows prefix forms, but binds
            // tighter than `;` (`c := 5; …` sequences two phrases).
            let rhs = self.expr_no_seq()?;
            Ok(binop(Op::Assign, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn fun(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&TokenKind::Fun)?.span;
        let mut params = vec![self.expect_binder()?];
        while matches!(self.peek(), TokenKind::Ident(_)) {
            params.push(self.expect_binder()?);
        }
        self.expect(&TokenKind::Arrow)?;
        let body = self.expr()?;
        let span = start.join(body.span);
        Ok(params.into_iter().rev().fold(body, |acc, p| {
            Expr::new(ExprKind::Fun(p, Box::new(acc)), span)
        }))
    }

    fn let_(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&TokenKind::Let)?.span;
        let recursive = self.eat(&TokenKind::Rec);
        let name = self.expect_binder()?;
        let mut params = Vec::new();
        while matches!(self.peek(), TokenKind::Ident(_)) {
            params.push(self.expect_binder()?);
        }
        self.expect(&TokenKind::Equal)?;
        let mut bound = self.expr()?;
        self.expect(&TokenKind::In)?;
        let body = self.expr()?;
        let span = start.join(body.span);

        // `let f x y = e` sugar.
        for p in params.into_iter().rev() {
            bound = Expr::new(ExprKind::Fun(p, Box::new(bound)), span);
        }
        // `let rec f … = e` desugars through the fix operator:
        // let f = fix (fun f -> …) in body.
        if recursive {
            let lam = Expr::new(ExprKind::Fun(name.clone(), Box::new(bound)), span);
            bound = Expr::new(
                ExprKind::App(
                    Box::new(Expr::new(ExprKind::Op(Op::Fix), span)),
                    Box::new(lam),
                ),
                span,
            );
        }
        Ok(Expr::new(
            ExprKind::Let(name, Box::new(bound), Box::new(body)),
            span,
        ))
    }

    fn if_(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&TokenKind::If)?.span;
        let cond = self.expr()?;
        if self.eat(&TokenKind::At) {
            let at = self.expr()?;
            self.expect(&TokenKind::Then)?;
            let then = self.expr()?;
            self.expect(&TokenKind::Else)?;
            let els = self.expr()?;
            let span = start.join(els.span);
            Ok(Expr::new(
                ExprKind::IfAt(Box::new(cond), Box::new(at), Box::new(then), Box::new(els)),
                span,
            ))
        } else {
            self.expect(&TokenKind::Then)?;
            let then = self.expr()?;
            self.expect(&TokenKind::Else)?;
            let els = self.expr()?;
            let span = start.join(els.span);
            Ok(Expr::new(
                ExprKind::If(Box::new(cond), Box::new(then), Box::new(els)),
                span,
            ))
        }
    }

    fn case(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&TokenKind::Case)?.span;
        let scrutinee = self.expr()?;
        self.expect(&TokenKind::Of)?;
        self.eat(&TokenKind::Bar); // optional leading bar
        self.expect(&TokenKind::Inl)?;
        let left_var = self.expect_binder()?;
        self.expect(&TokenKind::Arrow)?;
        let left_body = self.expr()?;
        self.expect(&TokenKind::Bar)?;
        self.expect(&TokenKind::Inr)?;
        let right_var = self.expect_binder()?;
        self.expect(&TokenKind::Arrow)?;
        let right_body = self.expr()?;
        let span = start.join(right_body.span);
        Ok(Expr::new(
            ExprKind::Case {
                scrutinee: Box::new(scrutinee),
                left_var,
                left_body: Box::new(left_body),
                right_var,
                right_body: Box::new(right_body),
            },
            span,
        ))
    }

    fn match_(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&TokenKind::Match)?.span;
        let scrutinee = self.expr()?;
        self.expect(&TokenKind::With)?;
        self.eat(&TokenKind::Bar); // optional leading bar
        self.expect(&TokenKind::LBracket)?;
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Arrow)?;
        let nil_body = self.expr()?;
        self.expect(&TokenKind::Bar)?;
        let head_var = self.expect_binder()?;
        self.expect(&TokenKind::ColonColon)?;
        let tail_var = self.expect_binder()?;
        if head_var == tail_var {
            return Err(ParseError::new(
                format!("pattern binds `{head_var}` twice"),
                self.peek_span(),
            ));
        }
        self.expect(&TokenKind::Arrow)?;
        let cons_body = self.expr()?;
        let span = start.join(cons_body.span);
        Ok(Expr::new(
            ExprKind::MatchList {
                scrutinee: Box::new(scrutinee),
                nil_body: Box::new(nil_body),
                head_var,
                tail_var,
                cons_body: Box::new(cons_body),
            },
            span,
        ))
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::BarBar) {
            let rhs = self.and_expr()?;
            lhs = binop(Op::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AmpAmp) {
            let rhs = self.cmp_expr()?;
            lhs = binop(Op::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.cons_expr()?;
        let op = match self.peek() {
            TokenKind::Equal => Op::Eq,
            TokenKind::Lt => Op::Lt,
            TokenKind::Le => Op::Le,
            TokenKind::Gt => Op::Gt,
            TokenKind::Ge => Op::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.cons_expr()?;
        Ok(binop(op, lhs, rhs))
    }

    fn cons_expr(&mut self) -> Result<Expr, ParseError> {
        let head = self.add_expr()?;
        if self.eat(&TokenKind::ColonColon) {
            let tail = self.cons_expr()?; // right associative
            let span = head.span.join(tail.span);
            Ok(Expr::new(
                ExprKind::Cons(Box::new(head), Box::new(tail)),
                span,
            ))
        } else {
            Ok(head)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => Op::Add,
                TokenKind::Minus => Op::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.app_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => Op::Mul,
                TokenKind::Slash => Op::Div,
                TokenKind::Mod => Op::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.app_expr()?;
            lhs = binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn app_expr(&mut self) -> Result<Expr, ParseError> {
        // Prefix forms.
        match self.peek() {
            TokenKind::Inl | TokenKind::Inr => {
                let tok = self.bump();
                let arg = self.atom()?;
                let span = tok.span.join(arg.span);
                let kind = if tok.kind == TokenKind::Inl {
                    ExprKind::Inl(Box::new(arg))
                } else {
                    ExprKind::Inr(Box::new(arg))
                };
                // Keep consuming an application chain: `inl x y`
                // parses as `(inl x) y`.
                let mut f = Expr::new(kind, span);
                while self.starts_atom() {
                    let arg = self.atom()?;
                    let span = f.span.join(arg.span);
                    f = Expr::new(ExprKind::App(Box::new(f), Box::new(arg)), span);
                }
                return Ok(f);
            }
            TokenKind::Minus => {
                // Unary minus: a negative literal when applied to an
                // integer constant, otherwise `0 - e`.
                let tok = self.bump();
                let arg = self.atom()?;
                let span = tok.span.join(arg.span);
                if let ExprKind::Const(Const::Int(n)) = arg.kind {
                    return Ok(Expr::new(ExprKind::Const(Const::Int(-n)), span));
                }
                let zero = Expr::new(ExprKind::Const(Const::Int(0)), tok.span);
                return Ok(Expr::new(
                    ExprKind::App(
                        Box::new(Expr::new(ExprKind::Op(Op::Sub), tok.span)),
                        Box::new(Expr::new(
                            ExprKind::Pair(Box::new(zero), Box::new(arg)),
                            span,
                        )),
                    ),
                    span,
                ));
            }
            _ => {}
        }
        let mut f = self.atom()?;
        while self.starts_atom() {
            let arg = self.atom()?;
            let span = f.span.join(arg.span);
            f = Expr::new(ExprKind::App(Box::new(f), Box::new(arg)), span);
        }
        Ok(f)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Int(_)
                | TokenKind::Ident(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::Bang
        )
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let tok = self.bump();
        let span = tok.span;
        match tok.kind {
            TokenKind::Int(n) => Ok(Expr::new(ExprKind::Const(Const::Int(n)), span)),
            TokenKind::True => Ok(Expr::new(ExprKind::Const(Const::Bool(true)), span)),
            TokenKind::False => Ok(Expr::new(ExprKind::Const(Const::Bool(false)), span)),
            TokenKind::Ident(name) => {
                if let Some(op) = Op::from_name(&name) {
                    Ok(Expr::new(ExprKind::Op(op), span))
                } else {
                    Ok(Expr::new(ExprKind::Var(Ident::new(name)), span))
                }
            }
            TokenKind::LParen => self.paren_tail(span),
            TokenKind::LBracket => self.bracket_tail(span),
            TokenKind::Bang => {
                // `!e` — dereference; binds like an atom.
                let arg = self.atom()?;
                let full = span.join(arg.span);
                Ok(Expr::new(
                    ExprKind::App(
                        Box::new(Expr::new(ExprKind::Op(Op::Deref), span)),
                        Box::new(arg),
                    ),
                    full,
                ))
            }
            other => Err(ParseError::new(
                format!("expected an expression, found {}", other.describe()),
                span,
            )),
        }
    }

    /// After `(`: unit, an operator section, a grouped expression or a
    /// pair.
    fn paren_tail(&mut self, start: Span) -> Result<Expr, ParseError> {
        // `()`
        if self.peek() == &TokenKind::RParen {
            let end = self.bump().span;
            return Ok(Expr::new(ExprKind::Const(Const::Unit), start.join(end)));
        }
        // Operator section `(+)`, `( * )`, `(=)`, `(mod)`, …
        let section = match self.peek() {
            TokenKind::Plus => Some(Op::Add),
            TokenKind::Minus => Some(Op::Sub),
            TokenKind::Star => Some(Op::Mul),
            TokenKind::Slash => Some(Op::Div),
            TokenKind::Mod => Some(Op::Mod),
            TokenKind::Equal => Some(Op::Eq),
            TokenKind::Lt => Some(Op::Lt),
            TokenKind::Le => Some(Op::Le),
            TokenKind::Gt => Some(Op::Gt),
            TokenKind::Ge => Some(Op::Ge),
            TokenKind::AmpAmp => Some(Op::And),
            TokenKind::BarBar => Some(Op::Or),
            TokenKind::ColonEq => Some(Op::Assign),
            TokenKind::Bang => Some(Op::Deref),
            _ => None,
        };
        if let Some(op) = section {
            // Only a section when immediately closed: `(+)` yes,
            // `(+ 1)` no (and `(+ 1)` is a syntax error anyway).
            if self.tokens[self.pos + 1].kind == TokenKind::RParen {
                self.bump();
                let end = self.bump().span;
                return Ok(Expr::new(ExprKind::Op(op), start.join(end)));
            }
        }
        let first = self.expr()?;
        if self.eat(&TokenKind::Comma) {
            let second = self.expr()?;
            let end = self.expect(&TokenKind::RParen)?.span;
            Ok(Expr::new(
                ExprKind::Pair(Box::new(first), Box::new(second)),
                start.join(end),
            ))
        } else {
            self.expect(&TokenKind::RParen)?;
            Ok(first)
        }
    }

    /// After `[`: nil or a list literal `[e; e; …]`.
    fn bracket_tail(&mut self, start: Span) -> Result<Expr, ParseError> {
        if self.peek() == &TokenKind::RBracket {
            let end = self.bump().span;
            return Ok(Expr::new(ExprKind::Nil, start.join(end)));
        }
        let mut items = vec![self.expr_no_seq()?];
        while self.eat(&TokenKind::Semi) {
            items.push(self.expr_no_seq()?);
        }
        let end = self.expect(&TokenKind::RBracket)?.span;
        let span = start.join(end);
        let mut list = Expr::new(ExprKind::Nil, span);
        for item in items.into_iter().rev() {
            list = Expr::new(ExprKind::Cons(Box::new(item), Box::new(list)), span);
        }
        Ok(list)
    }
}

/// `while`/`for` desugar through `fix`. The synthesized binders
/// (`_wloop`, `_wu`, `_wto`) are ordinary identifiers; shadowing them
/// in the loop body is possible but perverse.
fn desugar_loop(span: Span, cond: Expr, body: Expr) -> Expr {
    let at = |kind: ExprKind| Expr::new(kind, span);
    // fix (fun _wloop -> fun _wu ->
    //        if cond then (let _ = body in _wloop ()) else ()) ()
    let recall = at(ExprKind::App(
        Box::new(at(ExprKind::Var(Ident::new("_wloop")))),
        Box::new(at(ExprKind::Const(Const::Unit))),
    ));
    let then = at(ExprKind::Let(
        Ident::new("_"),
        Box::new(body),
        Box::new(recall),
    ));
    let if_ = at(ExprKind::If(
        Box::new(cond),
        Box::new(then),
        Box::new(at(ExprKind::Const(Const::Unit))),
    ));
    let lam = at(ExprKind::Fun(
        Ident::new("_wloop"),
        Box::new(at(ExprKind::Fun(Ident::new("_wu"), Box::new(if_)))),
    ));
    let fixed = at(ExprKind::App(
        Box::new(at(ExprKind::Op(Op::Fix))),
        Box::new(lam),
    ));
    at(ExprKind::App(
        Box::new(fixed),
        Box::new(at(ExprKind::Const(Const::Unit))),
    ))
}

/// `for x = a to b do body done` — the bound is evaluated once, the
/// counter travels as the loop argument (no references needed).
fn desugar_for(span: Span, var: Ident, from: Expr, to: Expr, body: Expr) -> Expr {
    let at = |kind: ExprKind| Expr::new(kind, span);
    // let _wto = to in
    // (fix (fun _wloop -> fun x ->
    //    if x <= _wto then (let _ = body in _wloop (x + 1)) else ())) from
    let next = at(ExprKind::App(
        Box::new(at(ExprKind::Op(Op::Add))),
        Box::new(at(ExprKind::Pair(
            Box::new(at(ExprKind::Var(var.clone()))),
            Box::new(at(ExprKind::Const(Const::Int(1)))),
        ))),
    ));
    let recall = at(ExprKind::App(
        Box::new(at(ExprKind::Var(Ident::new("_wloop")))),
        Box::new(next),
    ));
    let then = at(ExprKind::Let(
        Ident::new("_"),
        Box::new(body),
        Box::new(recall),
    ));
    let cond = at(ExprKind::App(
        Box::new(at(ExprKind::Op(Op::Le))),
        Box::new(at(ExprKind::Pair(
            Box::new(at(ExprKind::Var(var.clone()))),
            Box::new(at(ExprKind::Var(Ident::new("_wto")))),
        ))),
    ));
    let if_ = at(ExprKind::If(
        Box::new(cond),
        Box::new(then),
        Box::new(at(ExprKind::Const(Const::Unit))),
    ));
    let lam = at(ExprKind::Fun(
        Ident::new("_wloop"),
        Box::new(at(ExprKind::Fun(var, Box::new(if_)))),
    ));
    let fixed = at(ExprKind::App(
        Box::new(at(ExprKind::Op(Op::Fix))),
        Box::new(lam),
    ));
    let looped = at(ExprKind::App(Box::new(fixed), Box::new(from)));
    at(ExprKind::Let(
        Ident::new("_wto"),
        Box::new(to),
        Box::new(looped),
    ))
}

fn binop(op: Op, lhs: Expr, rhs: Expr) -> Expr {
    let span = lhs.span.join(rhs.span);
    Expr::new(
        ExprKind::App(
            Box::new(Expr::new(ExprKind::Op(op), span)),
            Box::new(Expr::new(
                ExprKind::Pair(Box::new(lhs), Box::new(rhs)),
                span,
            )),
        ),
        span,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_ast::build as b;

    fn p(src: &str) -> Expr {
        parse(src).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn literals() {
        assert_eq!(p("42"), b::int(42));
        assert_eq!(p("true"), b::bool_(true));
        assert_eq!(p("()"), b::unit());
        assert_eq!(p("[]"), b::nil());
        assert_eq!(p("x"), b::var("x"));
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(
            p("1 + 2 * 3"),
            b::add(b::int(1), b::mul(b::int(2), b::int(3)))
        );
        assert_eq!(
            p("(1 + 2) * 3"),
            b::mul(b::add(b::int(1), b::int(2)), b::int(3))
        );
        assert_eq!(
            p("10 - 2 - 3"),
            b::sub(b::sub(b::int(10), b::int(2)), b::int(3))
        );
        assert_eq!(p("7 mod 2"), b::modulo(b::int(7), b::int(2)));
    }

    #[test]
    fn unary_minus() {
        assert_eq!(p("-5"), b::int(-5));
        assert_eq!(p("1 - -5"), b::sub(b::int(1), b::int(-5)));
        assert_eq!(p("f (-1)"), b::app(b::var("f"), b::int(-1)));
        assert_eq!(p("-x"), b::sub(b::int(0), b::var("x")));
    }

    #[test]
    fn comparisons_and_booleans() {
        assert_eq!(p("1 < 2"), b::lt(b::int(1), b::int(2)));
        assert_eq!(
            p("1 < 2 && true || false"),
            b::binop(
                Op::Or,
                b::binop(Op::And, b::lt(b::int(1), b::int(2)), b::bool_(true)),
                b::bool_(false)
            )
        );
        assert_eq!(p("not true"), b::app(b::op(Op::Not), b::bool_(true)));
    }

    #[test]
    fn application_chains() {
        assert_eq!(p("f x y"), b::apps(b::var("f"), [b::var("x"), b::var("y")]));
        assert_eq!(
            p("f (g x)"),
            b::app(b::var("f"), b::app(b::var("g"), b::var("x")))
        );
        // Application binds tighter than *.
        assert_eq!(
            p("f x * 2"),
            b::mul(b::app(b::var("f"), b::var("x")), b::int(2))
        );
    }

    #[test]
    fn lambdas() {
        assert_eq!(p("fun x -> x"), b::fun_("x", b::var("x")));
        assert_eq!(
            p("fun x y -> x + y"),
            b::funs(&["x", "y"], b::add(b::var("x"), b::var("y")))
        );
    }

    #[test]
    fn lets_and_sugar() {
        assert_eq!(p("let x = 1 in x"), b::let_("x", b::int(1), b::var("x")));
        assert_eq!(
            p("let f x = x in f"),
            b::let_("f", b::fun_("x", b::var("x")), b::var("f"))
        );
        assert_eq!(
            p("let rec f x = f x in f"),
            b::let_(
                "f",
                b::fix(b::fun_("f", b::fun_("x", b::app(b::var("f"), b::var("x"))))),
                b::var("f")
            )
        );
    }

    #[test]
    fn conditionals() {
        assert_eq!(
            p("if true then 1 else 2"),
            b::if_(b::bool_(true), b::int(1), b::int(2))
        );
        assert_eq!(
            p("if v at 0 then 1 else 2"),
            b::ifat(b::var("v"), b::int(0), b::int(1), b::int(2))
        );
    }

    #[test]
    fn bsp_primitives_are_reserved_operators() {
        assert_eq!(
            p("mkpar (fun pid -> pid)"),
            b::mkpar(b::fun_("pid", b::var("pid")))
        );
        assert_eq!(p("put f"), b::put(b::var("f")));
        assert_eq!(p("apply (f, v)"), b::apply(b::var("f"), b::var("v")));
        assert_eq!(p("bsp_p ()"), b::nprocs());
        assert!(parse("fun mkpar -> mkpar").is_err());
        assert!(parse("let put = 1 in put").is_err());
    }

    #[test]
    fn pairs_and_sections() {
        assert_eq!(p("(1, 2)"), b::pair(b::int(1), b::int(2)));
        assert_eq!(p("(+)"), b::op(Op::Add));
        assert_eq!(p("( * )"), b::op(Op::Mul));
        assert_eq!(p("(mod)"), b::op(Op::Mod));
        assert_eq!(p("(+) (1, 2)"), b::add(b::int(1), b::int(2)));
    }

    #[test]
    fn lists() {
        assert_eq!(
            p("[1; 2; 3]"),
            b::list(vec![b::int(1), b::int(2), b::int(3)])
        );
        assert_eq!(p("1 :: 2 :: []"), b::list(vec![b::int(1), b::int(2)]));
        // :: binds looser than +.
        assert_eq!(
            p("1 + 2 :: []"),
            b::cons(b::add(b::int(1), b::int(2)), b::nil())
        );
    }

    #[test]
    fn sums_and_case() {
        assert_eq!(p("inl 1"), b::inl(b::int(1)));
        assert_eq!(p("inr (f x)"), b::inr(b::app(b::var("f"), b::var("x"))));
        assert_eq!(
            p("case s of inl l -> l | inr r -> r"),
            b::case(b::var("s"), "l", b::var("l"), "r", b::var("r"))
        );
        // Optional leading bar.
        assert_eq!(
            p("case s of | inl l -> l | inr r -> r"),
            b::case(b::var("s"), "l", b::var("l"), "r", b::var("r"))
        );
    }

    #[test]
    fn match_list() {
        assert_eq!(
            p("match xs with [] -> 0 | h :: t -> h"),
            b::match_list(b::var("xs"), b::int(0), "h", "t", b::var("h"))
        );
        assert!(parse("match xs with [] -> 0 | h :: h -> h").is_err());
    }

    #[test]
    fn the_paper_bcast_parses() {
        let src = "
            let replicate = fun x -> mkpar (fun pid -> x) in
            let noSome = fun o -> o in
            let bcast = fun n -> fun vec ->
              let tosend = mkpar (fun i -> fun v -> fun dst ->
                  if i = n then v else nc ()) in
              let recv = put (apply (apply (tosend, mkpar (fun i -> i)), vec)) in
              apply (recv, replicate n)
            in bcast";
        assert!(p(src).is_closed());
    }

    #[test]
    fn errors_carry_spans() {
        let err = parse("let x = in x").unwrap_err();
        assert!(!err.span.is_dummy());
        assert!(err.message.contains("expected an expression"));
        let err = parse("1 +").unwrap_err();
        assert!(err.message.contains("expected an expression"));
        // `1 2` parses as application (a type error, not a syntax
        // error); trailing keywords are syntax errors.
        let err = parse("1 in").unwrap_err();
        assert!(err.message.contains("expected `<eof>`"), "{err}");
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse("1 )").is_err());
        assert!(parse("(1").is_err());
    }

    #[test]
    fn comments_anywhere() {
        assert_eq!(
            p("1 (* one *) + (* plus *) 2"),
            b::add(b::int(1), b::int(2))
        );
    }

    #[test]
    fn spans_cover_constructs() {
        let src = "let x = 1 in x";
        let e = p(src);
        assert_eq!(e.span.slice(src), Some(src));
    }

    #[test]
    fn pretty_print_round_trips_paper_examples() {
        for src in [
            "mkpar (fun pid -> pid)",
            "fun x -> if mkpar (fun i -> true) at 0 then x else x",
            "fst (1, mkpar (fun i -> i))",
            "let fst' = fun p -> fst p in fst' (mkpar (fun i -> i), 1)",
            "put (mkpar (fun i -> fun dst -> i + dst))",
            "match [1; 2] with [] -> 0 | h :: t -> h",
            "case inl 3 of inl a -> a + 1 | inr b -> b - 1",
        ] {
            let e1 = p(src);
            let printed = e1.to_string();
            let e2 = parse(&printed)
                .unwrap_or_else(|err| panic!("re-parse failed on `{printed}`: {err}"));
            assert_eq!(e1, e2, "round trip changed `{src}` → `{printed}`");
        }
    }
}
