//! Property: pretty-printing any source-level expression and parsing
//! it back yields the same AST (paper Figure 3 — the concrete syntax
//! faithfully covers the grammar).

use bsml_ast::build as b;
use bsml_ast::{Expr, Op};
use bsml_syntax::parse;
use proptest::prelude::*;

/// Identifiers that are not reserved words or operator names.
fn ident_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("z".to_string()),
        Just("f".to_string()),
        Just("acc".to_string()),
        Just("pid".to_string()),
        Just("v'".to_string()),
        Just("long_name".to_string()),
    ]
}

fn leaf_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(b::int),
        any::<bool>().prop_map(b::bool_),
        Just(b::unit()),
        Just(b::nil()),
        ident_strategy().prop_map(b::var),
        prop_oneof![
            Just(Op::Add),
            Just(Op::Sub),
            Just(Op::Mul),
            Just(Op::Eq),
            Just(Op::Not),
            Just(Op::Fst),
            Just(Op::Snd),
            Just(Op::Mkpar),
            Just(Op::Apply),
            Just(Op::Put),
            Just(Op::Fix),
            Just(Op::Nc),
            Just(Op::Isnc),
            Just(Op::BspP),
        ]
        .prop_map(b::op),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_strategy().prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (ident_strategy(), inner.clone()).prop_map(|(x, e)| b::fun_(x, e)),
            (inner.clone(), inner.clone()).prop_map(|(f, a)| b::app(f, a)),
            (ident_strategy(), inner.clone(), inner.clone())
                .prop_map(|(x, e1, e2)| b::let_(x, e1, e2)),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| b::pair(a, c)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| b::if_(c, t, e)),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(v, n, t, e)| b::ifat(v, n, t, e)),
            (inner.clone(), inner.clone()).prop_map(|(h, t)| b::cons(h, t)),
            inner.clone().prop_map(b::inl),
            inner.clone().prop_map(b::inr),
            (
                inner.clone(),
                ident_strategy(),
                inner.clone(),
                ident_strategy(),
                inner.clone()
            )
                .prop_map(|(s, l, lb, r, rb)| b::case(s, l, lb, r, rb)),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(s, nb, cb)| b::match_list(s, nb, "hd", "tl", cb)),
            // binary operator sugar
            (any::<u8>(), Just(())).prop_map(|_| b::int(0)), // keep arity
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pretty_then_parse_is_identity(e in expr_strategy()) {
        let printed = e.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse `{printed}`: {err}"));
        prop_assert_eq!(&reparsed, &e, "printed form: `{}`", printed);
    }

    #[test]
    fn parse_never_panics_on_random_ascii(s in "[ -~]{0,60}") {
        let _ = parse(&s);
    }

    #[test]
    fn spans_cover_whole_parsed_source(e in expr_strategy()) {
        let printed = e.to_string();
        if let Ok(reparsed) = parse(&printed) {
            // The top-level span covers the full (trimmed) input.
            let sliced = reparsed.span.slice(&printed);
            prop_assert!(sliced.is_some());
        }
    }
}

#[test]
fn binop_sugar_round_trips() {
    for op in [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Mod,
        Op::Eq,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::And,
        Op::Or,
    ] {
        let e = b::binop(op, b::var("x"), b::var("y"));
        let printed = e.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|err| panic!("failed on `{printed}`: {err}"));
        assert_eq!(reparsed, e, "op {op:?} printed as `{printed}`");
    }
}
