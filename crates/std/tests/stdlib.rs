//! End-to-end checks of the standard library: every workload
//! typechecks and computes the right answer on the evaluator; every
//! corpus entry gets the paper's verdict.

use bsml_eval::eval_closed;
use bsml_infer::infer;
use bsml_std::{paper_corpus, workloads, Verdict};

#[test]
fn every_workload_typechecks() {
    for w in workloads::all_basic() {
        let ast = w.ast();
        if let Err(err) = infer(&ast) {
            panic!("workload `{}` rejected:\n{}", w.name, err.render(&w.source));
        }
    }
}

#[test]
fn every_workload_runs_on_several_machine_sizes() {
    for w in workloads::all_basic() {
        for p in [1, 2, 3, 4, 7, 8] {
            let ast = w.ast();
            if let Err(err) = eval_closed(&ast, p) {
                panic!("workload `{}` failed at p={p}: {err}", w.name);
            }
        }
    }
}

#[test]
fn corpus_verdicts_match_the_paper() {
    for entry in paper_corpus() {
        let ast = entry.ast();
        let result = infer(&ast);
        match entry.verdict {
            Verdict::Accept => {
                if let Err(err) = result {
                    panic!(
                        "corpus `{}` ({}) should be accepted:\n{}",
                        entry.name,
                        entry.paper_ref,
                        err.render(&entry.source)
                    );
                }
            }
            Verdict::Reject => {
                if let Ok(inf) = result {
                    panic!(
                        "corpus `{}` ({}) should be rejected, got {}",
                        entry.name, entry.paper_ref, inf.ty
                    );
                }
            }
        }
    }
}

#[test]
fn bcast_direct_broadcasts_the_root_value() {
    let p = 4;
    let w = workloads::bcast_direct(2);
    let v = eval_closed(&w.ast(), p).unwrap();
    // Root holds 2*7+1 = 15; everyone ends with 15.
    assert_eq!(v.to_string(), "<|15, 15, 15, 15|>");
}

#[test]
fn bcast_log_agrees_with_bcast_direct() {
    for p in [1, 2, 3, 4, 5, 8] {
        let direct = eval_closed(&workloads::bcast_direct(0).ast(), p).unwrap();
        // bcast_direct broadcasts i*7+1 from 0 → value 1 everywhere.
        let log = eval_closed(&workloads::bcast_log_payload(1).ast(), p).unwrap();
        // bcast_log broadcasts make_list 1 0 = [0] from process 0.
        assert_eq!(
            direct.to_string(),
            format!("<|{}|>", vec!["1"; p].join(", ")),
        );
        assert_eq!(
            log.to_string(),
            format!("<|{}|>", vec!["[0]"; p].join(", ")),
        );
    }
}

#[test]
fn shift_rotates() {
    let v = eval_closed(&workloads::shift().ast(), 4).unwrap();
    // Value of processor (i−1) mod p arrives at i.
    assert_eq!(v.to_string(), "<|300, 0, 100, 200|>");
}

#[test]
fn total_exchange_gathers_everything() {
    let v = eval_closed(&workloads::total_exchange().ast(), 3).unwrap();
    assert_eq!(v.to_string(), "<|[1; 2; 3], [1; 2; 3], [1; 2; 3]|>");
}

#[test]
fn fold_plus_sums() {
    let v = eval_closed(&workloads::fold_plus().ast(), 4).unwrap();
    // 1+2+3+4 = 10, replicated.
    assert_eq!(v.to_string(), "<|10, 10, 10, 10|>");
}

#[test]
fn scans_agree_and_are_prefix_sums() {
    for p in [1, 2, 3, 4, 6, 8] {
        let direct = eval_closed(&workloads::scan_plus_direct().ast(), p).unwrap();
        let log = eval_closed(&workloads::scan_plus_log().ast(), p).unwrap();
        let expected: Vec<String> = (0..p)
            .map(|i| ((i + 1) * (i + 2) / 2).to_string())
            .collect();
        let expected = format!("<|{}|>", expected.join(", "));
        assert_eq!(direct.to_string(), expected, "direct at p={p}");
        assert_eq!(log.to_string(), expected, "log at p={p}");
    }
}

#[test]
fn ping_rounds_rotates_n_times() {
    let v = eval_closed(&workloads::ping_rounds(3).ast(), 4).unwrap();
    // Each round moves values right by one; 3 rounds ⇒ value (i−3) mod 4.
    assert_eq!(v.to_string(), "<|1, 2, 3, 0|>");
}

#[test]
fn inner_product_matches_sequential() {
    let chunk = 8;
    let p = 4;
    let v = eval_closed(&workloads::inner_product(chunk).ast(), p).unwrap();
    // xs = 0..32 (chunked), ys = all lists [1+0, 1+1, …]? No: make_list
    // chunk 1 yields [1, 2, …, chunk] on every processor.
    let ys: Vec<i64> = (0..chunk as i64).map(|j| 1 + j).collect();
    let mut expected = 0i64;
    for i in 0..p as i64 {
        for j in 0..chunk as i64 {
            expected += (i * chunk as i64 + j) * ys[j as usize];
        }
    }
    let expected = format!("<|{}|>", vec![expected.to_string(); p].join(", "));
    assert_eq!(v.to_string(), expected);
}
