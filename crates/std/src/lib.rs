//! A BSMLlib-style standard library of mini-BSML programs.
//!
//! Three layers:
//!
//! * [`combinators`] — the reusable algorithm definitions (the
//!   paper's §2.1 `replicate`/`bcast` first, then the classic BSP
//!   collectives: logarithmic & two-phase broadcast, shift, total
//!   exchange, folds and scans), provided as a `let`-chain prelude
//!   that programs can be built on;
//! * [`workloads`] — complete, runnable, machine-size-independent
//!   programs exercising the combinators (the benchmark inputs);
//! * [`corpus`] — every accept/reject example discussed in the paper,
//!   with its expected verdict (the type-system test corpus).
//!
//! ```
//! use bsml_std::workloads;
//! use bsml_infer::infer;
//!
//! let program = workloads::bcast_direct(2);
//! let ast = program.ast();
//! assert!(infer(&ast).is_ok());
//! ```

pub mod algorithms;
pub mod combinators;
pub mod corpus;
pub mod workloads;

pub use corpus::{paper_corpus, CorpusEntry, Verdict};
pub use workloads::Program;
