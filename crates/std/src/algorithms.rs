//! Full BSP applications written in mini-BSML — the kind of
//! direct-mode algorithms the BSP literature (and the paper's
//! introduction) motivates: a parallel sample sort (PSRS) and a
//! distributed matrix–vector product.
//!
//! These stress every part of the stack at once: deep local
//! recursion, higher-order local functions under `mkpar`, list
//! messages through `put`, and multi-superstep structure.

use crate::combinators::{self, TOTAL_EXCHANGE_DEF};
use crate::workloads::Program;

/// Local list helpers shared by the algorithms (insertion sort,
/// length, nth, append, concat).
pub const LIST_TOOLBOX_DEF: &str = "\
let rec insert_sorted x xs =
  match xs with
    [] -> [x]
  | h :: t -> if x <= h then x :: h :: t else h :: insert_sorted x t in
let rec isort xs =
  match xs with [] -> [] | h :: t -> insert_sorted h (isort t) in
let rec len xs = match xs with [] -> 0 | h :: t -> 1 + len t in
let rec nth xs n =
  match xs with [] -> 0 - 1 | h :: t -> if n = 0 then h else nth t (n - 1) in
let rec append a b = match a with [] -> b | h :: t -> h :: append t b in
let rec concat xss =
  match xss with [] -> [] | h :: t -> append h (concat t)";

/// Parallel sort by regular sampling (PSRS), simplified to one
/// splitter per processor:
///
/// 1. sort locally (superstep 0, asynchronous),
/// 2. every processor publishes its median — one total exchange —
///    and all processors sort the p samples into a common splitter
///    list (superstep 1),
/// 3. every processor routes each element to the bucket owning its
///    splitter rank — one `put` of list messages (superstep 2),
/// 4. every processor sorts what it received.
///
/// `psrs : int list par → int list par`; afterwards processor k holds
/// the k-th sorted block of the global data.
pub const PSRS_DEF: &str = "\
let psrs = fun vec ->
  let sorted = apply (mkpar (fun i -> isort), vec) in
  let medians = apply (mkpar (fun i -> fun xs ->
                   if len xs = 0 then 0 else nth xs (len xs / 2)),
                 sorted) in
  let splitters = apply (mkpar (fun i -> isort), total_exchange medians) in
  let rec rank s x =
    match s with [] -> 0 | h :: t -> if h < x then 1 + rank t x else rank t x in
  let dest_of = fun s -> fun x ->
    let r = rank s x in
    let cap = bsp_p () - 1 in
    if r > cap then cap else r in
  let rec bucket xs s k =
    match xs with
      [] -> []
    | h :: t -> if dest_of s h = k then h :: bucket t s k else bucket t s k in
  let routed = put (apply (apply (mkpar (fun i -> fun xs -> fun s -> fun dst ->
                     bucket xs s dst),
                   sorted), splitters)) in
  let rec gather f j =
    if j >= bsp_p () then [] else append (f j) (gather f (j + 1)) in
  apply (mkpar (fun i -> fun f -> isort (gather f 0)), routed)";

/// Distributed matrix–vector product. The matrix is distributed by
/// row blocks (each processor holds its rows as a list of lists);
/// the vector is distributed by chunks. One total exchange assembles
/// the full vector everywhere, then each processor computes its block
/// of the result locally:
/// `matvec : (int list) list par → int list par → int list par`.
pub const MATVEC_DEF: &str = "\
let matvec = fun rows_v -> fun chunk_v ->
  let xs_everywhere =
    apply (mkpar (fun i -> fun chunks -> concat chunks),
           total_exchange chunk_v) in
  let rec dot r xs =
    match r with
      [] -> 0
    | a :: r' ->
      (match xs with [] -> 0 | b :: xs' -> a * b + dot r' xs') in
  let rec map_rows rows xs =
    match rows with [] -> [] | r :: rest -> dot r xs :: map_rows rest xs in
  apply (apply (mkpar (fun i -> fun rows -> fun xs -> map_rows rows xs),
                rows_v),
         xs_everywhere)";

/// A PSRS workload: processor `i` starts with a pseudo-random block
/// of `n` values; result is the globally sorted distribution.
#[must_use]
pub fn psrs_sort(n: usize) -> Program {
    let body = format!(
        "let rec gen j seed =
           if j = 0 then []
           else (seed * 37 + j * 71) mod 1000 :: gen (j - 1) (seed + j) in
         psrs (mkpar (fun i -> gen {n} (i * 13 + 5)))"
    );
    Program::new(
        "psrs-sort",
        format!("parallel sample sort of {n} pseudo-random ints per processor"),
        combinators::prelude(&[TOTAL_EXCHANGE_DEF, LIST_TOOLBOX_DEF, PSRS_DEF], &body),
    )
}

/// A matrix–vector workload: an `(r·p) × (c·p)` matrix with
/// `A[i][j] = i + 2j`, times the vector `x[j] = j + 1`, distributed
/// with `r` rows and `c` vector entries per processor.
#[must_use]
pub fn matvec(rows_per_proc: usize, cols_per_proc: usize) -> Program {
    let body = format!(
        "let r = {rows_per_proc} in
         let c = {cols_per_proc} in
         let cols = c * bsp_p () in
         let rec build_row i j =
           if j >= cols then [] else (i + 2 * j) :: build_row i (j + 1) in
         let rec build_rows i k =
           if k = 0 then [] else build_row i 0 :: build_rows (i + 1) (k - 1) in
         let rec build_chunk j k =
           if k = 0 then [] else (j + 1) :: build_chunk (j + 1) (k - 1) in
         let rows_v = mkpar (fun p -> build_rows (p * r) r) in
         let chunk_v = mkpar (fun p -> build_chunk (p * c) c) in
         matvec rows_v chunk_v"
    );
    Program::new(
        "matvec",
        format!(
            "distributed matrix-vector product, {rows_per_proc} rows and \
             {cols_per_proc} vector entries per processor"
        ),
        combinators::prelude(&[TOTAL_EXCHANGE_DEF, LIST_TOOLBOX_DEF, MATVEC_DEF], &body),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_syntax::parse;

    #[test]
    fn algorithm_sources_parse() {
        for w in [psrs_sort(8), matvec(2, 2)] {
            let ast = w.ast();
            assert!(ast.is_closed(), "{} has free variables", w.name);
        }
        // The raw definitions parse standalone too.
        for def in [LIST_TOOLBOX_DEF, PSRS_DEF, MATVEC_DEF] {
            let src = combinators::prelude(&[TOTAL_EXCHANGE_DEF, LIST_TOOLBOX_DEF], def);
            let full = format!("{src} in 0");
            parse(&full).unwrap_or_else(|e| panic!("{}", e.render(&full)));
        }
    }
}
