//! Complete runnable programs over the combinator prelude — the
//! benchmark and experiment workloads.
//!
//! Every workload is machine-size independent (it reads `bsp_p ()` at
//! run time) and evaluates to a parallel vector.

use bsml_ast::Expr;
use bsml_syntax::parse;

use crate::combinators;

/// A named, self-contained mini-BSML program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Short identifier, e.g. `"bcast-direct"`.
    pub name: String,
    /// What the program computes.
    pub description: String,
    /// The full source text.
    pub source: String,
}

impl Program {
    /// Builds a program.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        source: impl Into<String>,
    ) -> Program {
        Program {
            name: name.into(),
            description: description.into(),
            source: source.into(),
        }
    }

    /// Parses the program.
    ///
    /// # Panics
    ///
    /// Panics if the source does not parse — workload sources are
    /// library constants, so a failure is a library bug.
    #[must_use]
    pub fn ast(&self) -> Expr {
        parse(&self.source).unwrap_or_else(|err| {
            panic!(
                "workload `{}` failed to parse: {}",
                self.name,
                err.render(&self.source)
            )
        })
    }
}

/// Direct broadcast (paper §2.1, equation (1)) of one word from
/// process `root`.
#[must_use]
pub fn bcast_direct(root: usize) -> Program {
    Program::new(
        "bcast-direct",
        format!("direct one-superstep broadcast of an int from process {root}"),
        combinators::prelude(
            &[combinators::REPLICATE_DEF, combinators::BCAST_DIRECT_DEF],
            &format!("bcast {root} (mkpar (fun i -> i * 7 + 1))"),
        ),
    )
}

/// Direct broadcast of an `s`-word payload (a list of `s` ints) from
/// process `root` — the equation (1) sweep workload.
#[must_use]
pub fn bcast_direct_payload(root: usize, s: usize) -> Program {
    Program::new(
        "bcast-direct-payload",
        format!("direct broadcast of a {s}-element list from process {root}"),
        combinators::prelude(
            &[
                combinators::REPLICATE_DEF,
                combinators::BCAST_DIRECT_DEF,
                combinators::MAKE_LIST_DEF,
            ],
            &format!("bcast {root} (mkpar (fun i -> make_list {s} i))"),
        ),
    )
}

/// Binary-tree broadcast of an `s`-word payload from process 0.
#[must_use]
pub fn bcast_log_payload(s: usize) -> Program {
    Program::new(
        "bcast-log-payload",
        format!("logarithmic broadcast of a {s}-element list from process 0"),
        combinators::prelude(
            &[combinators::BCAST_LOG_DEF, combinators::MAKE_LIST_DEF],
            &format!("bcast_log (mkpar (fun i -> make_list {s} i))"),
        ),
    )
}

/// Two-phase (scatter + all-gather) broadcast of an `s`-element list
/// from process `root` — the large-payload rival of equation (1).
#[must_use]
pub fn bcast_two_phase_payload(root: usize, s: usize) -> Program {
    Program::new(
        "bcast-two-phase-payload",
        format!("two-phase broadcast of a {s}-element list from process {root}"),
        combinators::prelude(
            &[
                combinators::REPLICATE_DEF,
                combinators::REV_APP_DEF,
                combinators::TAKE_DEF,
                combinators::DROP_DEF,
                combinators::LENGTH_DEF,
                combinators::APP2_DEF,
                combinators::SCATTER_DEF,
                combinators::BCAST_TWO_PHASE_DEF,
                combinators::MAKE_LIST_DEF,
            ],
            &format!("bcast_two_phase {root} (mkpar (fun i -> make_list {s} i))"),
        ),
    )
}

/// Gather of every processor's value at a root.
#[must_use]
pub fn gather(root: usize) -> Program {
    Program::new(
        "gather",
        format!("gather one int per processor at process {root}"),
        combinators::prelude(
            &[combinators::GATHER_DEF],
            &format!("gather {root} (mkpar (fun i -> i * i))"),
        ),
    )
}

/// Scatter of a root-held list into balanced chunks.
#[must_use]
pub fn scatter(root: usize, s: usize) -> Program {
    Program::new(
        "scatter",
        format!("scatter a {s}-element list from process {root}"),
        combinators::prelude(
            &[
                combinators::REPLICATE_DEF,
                combinators::REV_APP_DEF,
                combinators::TAKE_DEF,
                combinators::DROP_DEF,
                combinators::LENGTH_DEF,
                combinators::SCATTER_DEF,
                combinators::MAKE_LIST_DEF,
            ],
            &format!("scatter {root} (mkpar (fun i -> make_list {s} (i * 100)))"),
        ),
    )
}

/// Pointwise map via BSMLlib's `parfun`.
#[must_use]
pub fn parfun_square() -> Program {
    Program::new(
        "parfun-square",
        "pointwise squaring through parfun (replicate + apply)",
        combinators::prelude(
            &[combinators::REPLICATE_DEF, combinators::PARFUN_DEF],
            "parfun (fun x -> x * x) (mkpar (fun i -> i + 1))",
        ),
    )
}

/// Cyclic shift of each processor's value to its right neighbour.
#[must_use]
pub fn shift() -> Program {
    Program::new(
        "shift",
        "cyclic shift by one (a 1-relation superstep)",
        combinators::prelude(
            &[combinators::SHIFT_DEF],
            "shift (mkpar (fun i -> i * 100))",
        ),
    )
}

/// Total exchange: every processor ends with the list of all values.
#[must_use]
pub fn total_exchange() -> Program {
    Program::new(
        "total-exchange",
        "all-to-all exchange into per-processor lists",
        combinators::prelude(
            &[combinators::TOTAL_EXCHANGE_DEF],
            "total_exchange (mkpar (fun i -> i + 1))",
        ),
    )
}

/// Replicated sum of all components (direct reduction).
#[must_use]
pub fn fold_plus() -> Program {
    Program::new(
        "fold-plus",
        "replicated sum of one int per processor",
        combinators::prelude(
            &[combinators::FOLD_PLUS_DEF],
            "fold_plus (mkpar (fun i -> i + 1))",
        ),
    )
}

/// Direct (one-superstep) inclusive prefix sums.
#[must_use]
pub fn scan_plus_direct() -> Program {
    Program::new(
        "scan-direct",
        "inclusive prefix sums, direct one-superstep method",
        combinators::prelude(
            &[combinators::SCAN_PLUS_DEF],
            "scan_plus (mkpar (fun i -> i + 1))",
        ),
    )
}

/// Logarithmic (Hillis–Steele) inclusive prefix sums.
#[must_use]
pub fn scan_plus_log() -> Program {
    Program::new(
        "scan-log",
        "inclusive prefix sums, logarithmic method",
        combinators::prelude(
            &[combinators::SCAN_PLUS_LOG_DEF],
            "scan_plus_log (mkpar (fun i -> i + 1))",
        ),
    )
}

/// `rounds` successive shift supersteps (the superstep-count
/// scaling workload: `S = rounds`).
#[must_use]
pub fn ping_rounds(rounds: usize) -> Program {
    Program::new(
        "ping-rounds",
        format!("{rounds} successive 1-relation supersteps"),
        combinators::prelude(
            &[combinators::SHIFT_DEF],
            &format!(
                "let rec go n v = if n = 0 then v else go (n - 1) (shift v) in
                 go {rounds} (mkpar (fun i -> i))"
            ),
        ),
    )
}

/// Distributed inner product: each processor holds an `n/p`-chunk of
/// two vectors (as lists), computes its local dot product, and the
/// partial results are summed by `fold_plus`.
#[must_use]
pub fn inner_product(chunk: usize) -> Program {
    Program::new(
        "inner-product",
        format!("dot product with {chunk} elements per processor"),
        combinators::prelude(
            &[combinators::FOLD_PLUS_DEF, combinators::MAKE_LIST_DEF],
            &format!(
                "let dot = fun xs -> fun ys ->
                   let rec go a b = match a with
                       [] -> 0
                     | h :: t ->
                       (match b with [] -> 0 | h2 :: t2 -> h * h2 + go t t2) in
                   go xs ys in
                 let xs = mkpar (fun i -> make_list {chunk} (i * {chunk})) in
                 let ys = mkpar (fun i -> make_list {chunk} 1) in
                 let partials = apply (apply (mkpar (fun i -> dot), xs), ys) in
                 fold_plus partials"
            ),
        ),
    )
}

/// All parameter-free workloads (for exhaustive test sweeps).
#[must_use]
pub fn all_basic() -> Vec<Program> {
    vec![
        bcast_direct(0),
        bcast_direct_payload(1, 4),
        bcast_log_payload(4),
        bcast_two_phase_payload(0, 8),
        gather(1),
        scatter(0, 9),
        parfun_square(),
        shift(),
        total_exchange(),
        fold_plus(),
        scan_plus_direct(),
        scan_plus_log(),
        ping_rounds(3),
        inner_product(8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_parse_and_are_closed() {
        for w in all_basic() {
            let ast = w.ast();
            assert!(ast.is_closed(), "{} has free variables", w.name);
            assert!(ast.mentions_parallelism(), "{} is not parallel", w.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all_basic().into_iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all_basic().len());
    }
}
