//! The paper's accept/reject example corpus (§2.1 and §4).
//!
//! Used by the type-system tests, the examples and the benchmarks:
//! each entry records the program and the verdict the paper assigns.

use bsml_ast::Expr;
use bsml_syntax::parse;

use crate::combinators;

/// What the type system must decide for a corpus entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The program is well-typed.
    Accept,
    /// The program must be rejected (locality violation).
    Reject,
}

/// One paper example with its expected verdict.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Identifier used in test names and reports.
    pub name: &'static str,
    /// Where in the paper the example appears.
    pub paper_ref: &'static str,
    /// The program source.
    pub source: String,
    /// The expected verdict.
    pub verdict: Verdict,
}

impl CorpusEntry {
    /// Parses the entry.
    ///
    /// # Panics
    ///
    /// Panics on a parse failure (corpus sources are constants).
    #[must_use]
    pub fn ast(&self) -> Expr {
        parse(&self.source)
            .unwrap_or_else(|err| panic!("corpus `{}`: {}", self.name, err.render(&self.source)))
    }
}

/// Every example program the paper discusses.
#[must_use]
pub fn paper_corpus() -> Vec<CorpusEntry> {
    let bcast_prelude = |body: &str| {
        combinators::prelude(
            &[combinators::REPLICATE_DEF, combinators::BCAST_DIRECT_DEF],
            body,
        )
    };
    vec![
        CorpusEntry {
            name: "bcast",
            paper_ref: "§2.1 (the bcast program, equation (1))",
            source: bcast_prelude("bcast 2 (mkpar (fun i -> i * 10))"),
            verdict: Verdict::Accept,
        },
        CorpusEntry {
            name: "example1-nested-bcast",
            paper_ref: "§2.1 example1",
            source: bcast_prelude(
                "let vec = mkpar (fun i -> i) in mkpar (fun pid -> bcast pid vec)",
            ),
            verdict: Verdict::Reject,
        },
        CorpusEntry {
            name: "example2-hidden-nesting",
            paper_ref: "§2.1 example2 / Figure 8",
            source: "mkpar (fun pid -> let this = mkpar (fun pid -> pid) in pid)".to_string(),
            verdict: Verdict::Reject,
        },
        CorpusEntry {
            name: "fst-two-usual",
            paper_ref: "§2.1 projection case 1",
            source: "fst (1, 2)".to_string(),
            verdict: Verdict::Accept,
        },
        CorpusEntry {
            name: "fst-two-parallel",
            paper_ref: "§2.1 projection case 2",
            source: "fst (mkpar (fun i -> i), mkpar (fun i -> i))".to_string(),
            verdict: Verdict::Accept,
        },
        CorpusEntry {
            name: "fst-parallel-usual",
            paper_ref: "§2.1 projection case 3 / Figure 9",
            source: "fst (mkpar (fun i -> i), 1)".to_string(),
            verdict: Verdict::Accept,
        },
        CorpusEntry {
            name: "fst-usual-parallel",
            paper_ref: "§2.1 projection case 4 / Figure 10",
            source: "fst (1, mkpar (fun i -> i))".to_string(),
            verdict: Verdict::Reject,
        },
        CorpusEntry {
            name: "mismatched-barriers",
            paper_ref: "§2.1 (vec1/vec2 under mkpar)",
            source: "let vec1 = mkpar (fun pid -> pid) in
                     let vec2 = put (mkpar (fun pid -> fun from -> 1 + from)) in
                     let c1 = (vec1, 1) in
                     let c2 = (vec2, 2) in
                     mkpar (fun pid -> if pid < (bsp_p ()) / 2 then snd c1 else snd c2)"
                .to_string(),
            verdict: Verdict::Reject,
        },
        CorpusEntry {
            name: "parallel-identity",
            paper_ref: "§4 (the ifat identity, scheme [α→α / L(α)⇒False])",
            source: "fun x -> if mkpar (fun i -> true) at 0 then x else x".to_string(),
            verdict: Verdict::Accept,
        },
        CorpusEntry {
            name: "parallel-identity-on-local",
            paper_ref: "§4 (instantiating the ifat identity at a usual value)",
            source: "(fun x -> if mkpar (fun i -> true) at 0 then x else x) 1".to_string(),
            verdict: Verdict::Reject,
        },
        CorpusEntry {
            name: "parallel-identity-on-global",
            paper_ref: "§4 (instantiating the ifat identity at a vector)",
            source: "(fun x -> if mkpar (fun i -> true) at 0 then x else x) \
                     (mkpar (fun i -> i))"
                .to_string(),
            verdict: Verdict::Accept,
        },
        CorpusEntry {
            name: "ifat-local-return",
            paper_ref: "§4 rule (Ifat), side condition L(τ) ⇒ False",
            source: "if mkpar (fun i -> i = 0) at 0 then 1 else 2".to_string(),
            verdict: Verdict::Reject,
        },
        CorpusEntry {
            name: "theorem1-weakening",
            paper_ref: "§4 after Theorem 1 (let f = fun a -> fun b -> a in 1)",
            source: "let f = fun a -> fun b -> a in 1".to_string(),
            verdict: Verdict::Accept,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_names_are_unique() {
        let corpus = paper_corpus();
        assert!(corpus.len() >= 12);
        let mut names: Vec<&str> = corpus.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
        for entry in &corpus {
            let _ = entry.ast();
        }
    }

    #[test]
    fn corpus_has_both_verdicts() {
        let corpus = paper_corpus();
        assert!(corpus.iter().any(|c| c.verdict == Verdict::Accept));
        assert!(corpus.iter().any(|c| c.verdict == Verdict::Reject));
    }
}
