//! The combinator prelude: BSP collectives written in mini-BSML.
//!
//! Each `*_DEF` constant is one `let` binding (without the trailing
//! `in`); [`prelude`] chains the requested definitions in dependency
//! order in front of a program body.
//!
//! All combinators return parallel vectors (global values): the
//! paper's *(Let)* side condition `L(τ₂) ⇒ L(τ₁)` means a program
//! that binds one of these (global-typed) functions must itself end
//! in a global value — which BSP programs naturally do.

/// `replicate : α → α par` (paper §2.1).
pub const REPLICATE_DEF: &str = "let replicate = fun x -> mkpar (fun pid -> x)";

/// `bcast : int → α par → α par` — the paper's direct broadcast
/// (§2.1), cost `p + (p−1)·s·g + l` (equation (1)).
pub const BCAST_DIRECT_DEF: &str = "\
let bcast = fun n -> fun vec ->
  let tosend = apply (mkpar (fun i -> fun v -> fun dst ->
                        if i = n then v else nc ()),
                      vec) in
  let recv = put tosend in
  apply (recv, replicate n)";

/// `bcast_log : α par → α par` — binary-tree broadcast from process
/// 0 in `⌈log₂ p⌉` supersteps (cost `log p · (s·g + l)`).
pub const BCAST_LOG_DEF: &str = "\
let bcast_log = fun vec ->
  let state0 = apply (mkpar (fun i -> fun v -> (i = 0, v)), vec) in
  let rec go k st =
    if k >= bsp_p () then st else
    let msgs = put (apply (mkpar (fun i -> fun s -> fun dst ->
                             if fst s && dst = i + k then snd s else nc ()),
                           st)) in
    let probe = apply (msgs, mkpar (fun i -> i - k)) in
    let st2 = apply (apply (mkpar (fun i -> fun s -> fun m ->
                              if isnc m then s else (true, m)),
                            st),
                     probe) in
    go (k * 2) st2 in
  apply (mkpar (fun i -> fun s -> snd s), go 1 state0)";

/// `shift : α par → α par` — cyclic shift by one: process `i`'s value
/// moves to process `(i+1) mod p`; one 1-relation superstep.
pub const SHIFT_DEF: &str = "\
let shift = fun vec ->
  let msgs = put (apply (mkpar (fun i -> fun v -> fun dst ->
                           if dst = (i + 1) mod (bsp_p ()) then v else nc ()),
                         vec)) in
  apply (msgs, mkpar (fun i -> (i + (bsp_p ()) - 1) mod (bsp_p ())))";

/// `total_exchange : α par → (α list) par` — everyone receives
/// everyone's value, as a p-length list; one `(p−1)`-relation.
pub const TOTAL_EXCHANGE_DEF: &str = "\
let total_exchange = fun vec ->
  let msgs = put (apply (mkpar (fun i -> fun v -> fun dst -> v), vec)) in
  apply (mkpar (fun i -> fun f ->
           let rec collect j = if j >= bsp_p () then [] else f j :: collect (j + 1) in
           collect 0),
         msgs)";

/// `fold_plus : int par → int par` — replicated sum of all components
/// (direct: one total exchange, then local sums).
pub const FOLD_PLUS_DEF: &str = "\
let fold_plus = fun vec ->
  let msgs = put (apply (mkpar (fun i -> fun v -> fun dst -> v), vec)) in
  apply (mkpar (fun i -> fun f ->
           let rec sum j = if j >= bsp_p () then 0 else f j + sum (j + 1) in
           sum 0),
         msgs)";

/// `scan_plus : int par → int par` — inclusive prefix sums, direct
/// method: process `i` receives the values of `0‥i` and folds
/// locally; one superstep (cost shape of equation (1)).
pub const SCAN_PLUS_DEF: &str = "\
let scan_plus = fun vec ->
  let msgs = put (apply (mkpar (fun i -> fun v -> fun dst ->
                           if i <= dst then v else nc ()),
                         vec)) in
  apply (mkpar (fun i -> fun f ->
           let rec sum j = if j > i then 0 else f j + sum (j + 1) in
           sum 0),
         msgs)";

/// `scan_plus_log : int par → int par` — logarithmic prefix sums
/// (Hillis–Steele): `⌈log₂ p⌉` supersteps of 1-relations.
pub const SCAN_PLUS_LOG_DEF: &str = "\
let scan_plus_log = fun vec ->
  let rec go k st =
    if k >= bsp_p () then st else
    let msgs = put (apply (mkpar (fun i -> fun v -> fun dst ->
                             if dst = i + k then v else nc ()),
                           st)) in
    let probe = apply (msgs, mkpar (fun i -> i - k)) in
    let st2 = apply (apply (mkpar (fun i -> fun v -> fun m ->
                              if isnc m then v else v + m),
                            st),
                     probe) in
    go (k * 2) st2 in
  go 1 vec";

/// `parfun : (α → β) → α par → β par` — BSMLlib's pointwise map:
/// `apply` of a replicated function.
pub const PARFUN_DEF: &str = "\
let parfun = fun f -> fun v -> apply (replicate f, v)";

/// `rev_app : α list → α list → α list` — reverse-append, the
/// tail-recursive workhorse of the list helpers.
pub const REV_APP_DEF: &str = "\
let rec rev_app a b = match a with [] -> b | h :: t -> rev_app t (h :: b)";

/// `take : int → α list → α list` (tail-recursive via [`REV_APP_DEF`]).
pub const TAKE_DEF: &str = "\
let take = fun n -> fun xs ->
  let rec take_rev acc k ys =
    if k = 0 then acc else
    match ys with [] -> acc | h :: t -> take_rev (h :: acc) (k - 1) t in
  rev_app (take_rev [] n xs) []";

/// `drop : int → α list → α list`.
pub const DROP_DEF: &str = "\
let rec drop n xs =
  if n = 0 then xs else
  match xs with [] -> [] | h :: t -> drop (n - 1) t";

/// `length : α list → int` (tail-recursive).
pub const LENGTH_DEF: &str = "\
let length = fun xs ->
  let rec go acc ys = match ys with [] -> acc | h :: t -> go (acc + 1) t in
  go 0 xs";

/// `app2 : α list → α list → α list` — append, tail-recursive via two
/// reversals.
pub const APP2_DEF: &str = "\
let app2 = fun a -> fun b -> rev_app (rev_app a []) b";

/// The tail-recursive list helper suite, in dependency order.
pub const LIST_HELPERS: [&str; 5] = [REV_APP_DEF, TAKE_DEF, DROP_DEF, LENGTH_DEF, APP2_DEF];

/// `scatter : int → (int list) par → (int list) par` — the root's
/// list is split into `p` balanced chunks, chunk `k` delivered to
/// processor `k`; one superstep.
pub const SCATTER_DEF: &str = "\
let scatter = fun root -> fun xs_v ->
  let msgs = put (apply (mkpar (fun i -> fun xs -> fun dst ->
                    if i = root
                    then
                      let csz = (length xs + bsp_p () - 1) / bsp_p () in
                      take csz (drop (dst * csz) xs)
                    else nc ()),
                  xs_v)) in
  apply (msgs, replicate root)";

/// `gather : int → α par → (α list) par` — every value travels to
/// `root`, which ends with the list `[v₀; …; v_{p−1}]`; the other
/// processors end with `[]`. One superstep.
pub const GATHER_DEF: &str = "\
let gather = fun root -> fun v ->
  let msgs = put (apply (mkpar (fun i -> fun x -> fun dst ->
                    if dst = root then x else nc ()),
                  v)) in
  apply (mkpar (fun i -> fun f ->
           if i = root
           then
             let rec g j = if j >= bsp_p () then [] else f j :: g (j + 1) in
             g 0
           else []),
         msgs)";

/// `bcast_two_phase : int → (int list) par → (int list) par` — the
/// BSP-optimal broadcast for large payloads (Barnett et al. style):
/// scatter the root's list into chunks, then all-gather the chunks.
/// Two supersteps, `H ≈ 2·(p−1)·⌈s/p⌉` instead of `(p−1)·s`.
pub const BCAST_TWO_PHASE_DEF: &str = "\
let bcast_two_phase = fun root -> fun xs_v ->
  let chunks = scatter root xs_v in
  let msgs = put (apply (mkpar (fun i -> fun ch -> fun dst -> ch), chunks)) in
  apply (mkpar (fun i -> fun f ->
           let rec g j = if j >= bsp_p () then [] else app2 (f j) (g (j + 1)) in
           g 0),
         msgs)";

/// `make_list : int → int → int list` — a local helper building the
/// list `[seed; seed+1; …]` of a given length (payload generator for
/// the cost experiments).
pub const MAKE_LIST_DEF: &str = "\
let make_list = fun len -> fun seed ->
  let rec build acc j =
    if j = 0 then acc else build ((seed + j - 1) :: acc) (j - 1) in
  build [] len";

/// `sum_list : int list → int` — local list sum.
pub const SUM_LIST_DEF: &str = "\
let sum_list = fun xs ->
  let rec go acc ys = match ys with [] -> acc | h :: t -> go (acc + h) t in
  go 0 xs";

/// All definitions in dependency order.
pub const ALL_DEFS: [&str; 19] = [
    REPLICATE_DEF,
    PARFUN_DEF,
    BCAST_DIRECT_DEF,
    BCAST_LOG_DEF,
    SHIFT_DEF,
    TOTAL_EXCHANGE_DEF,
    FOLD_PLUS_DEF,
    SCAN_PLUS_DEF,
    SCAN_PLUS_LOG_DEF,
    REV_APP_DEF,
    TAKE_DEF,
    DROP_DEF,
    LENGTH_DEF,
    APP2_DEF,
    SCATTER_DEF,
    GATHER_DEF,
    BCAST_TWO_PHASE_DEF,
    MAKE_LIST_DEF,
    SUM_LIST_DEF,
];

/// Chains the given definitions (in the order given) in front of
/// `body`:
/// `let d₁ in let d₂ in … body`.
#[must_use]
pub fn prelude(defs: &[&str], body: &str) -> String {
    let mut out = String::new();
    for d in defs {
        out.push_str(d);
        out.push_str(" in\n");
    }
    out.push_str(body);
    out
}

/// The full prelude in front of `body`.
#[must_use]
pub fn with_full_prelude(body: &str) -> String {
    prelude(&ALL_DEFS, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_syntax::parse;

    #[test]
    fn every_definition_parses() {
        for def in ALL_DEFS {
            let src = format!("{def} in 0");
            parse(&src).unwrap_or_else(|e| panic!("{def}\n{}", e.render(&src)));
        }
    }

    #[test]
    fn full_prelude_parses_and_is_closed() {
        let src = with_full_prelude("mkpar (fun i -> i)");
        let e = parse(&src).unwrap_or_else(|err| panic!("{}", err.render(&src)));
        assert!(e.is_closed());
    }

    #[test]
    fn prelude_respects_order() {
        let src = prelude(&[REPLICATE_DEF], "replicate 1");
        assert!(src.starts_with("let replicate"));
        assert!(src.ends_with("replicate 1"));
    }
}
