//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// A strategy producing `Vec`s whose length is drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors of values from `element` with length in `len`
/// (half-open, like the real crate's `SizeRange` from a `Range`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = self.len.start + rng.below(span);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Just;

    #[test]
    fn lengths_respect_the_range() {
        let s = vec(Just(7u8), 1..4);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..4).contains(&v.len()), "len = {}", v.len());
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
