//! Tiny character-class pattern generator backing `&str` strategies.
//!
//! Supports the regex subset the workspace's tests use: literal
//! characters, classes `[a-z0-9_']` (ranges and singletons), and the
//! repetitions `{n}`, `{m,n}`, `?`, `*`, `+` (star/plus capped at 8).
//! Anything fancier is a panic, not a silent wrong answer.

use crate::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    /// A literal character.
    Lit(char),
    /// A character class: the expanded set of candidate chars.
    Class(Vec<char>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
#[must_use]
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = piece.max - piece.min + 1;
        let n = piece.min + (rng.next_u64() % u64::from(span)) as u32;
        for _ in 0..n {
            match &piece.atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(cs) => out.push(cs[rng.below(cs.len())]),
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let set = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                i += 1;
                Atom::Lit(unescape(c))
            }
            '.' => {
                i += 1;
                Atom::Class((' '..='~').collect())
            }
            c => {
                assert!(
                    !"(){}|^$*+?".contains(c),
                    "unsupported pattern construct `{c}` in `{pattern}`"
                );
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (u32, u32) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse_n = |s: &str| {
                s.trim()
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad repeat `{{{body}}}` in `{pattern}`"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class `[]` in pattern `{pattern}`");
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        let c = if body[j] == '\\' {
            j += 1;
            unescape(
                *body
                    .get(j)
                    .unwrap_or_else(|| panic!("dangling `\\` in class of pattern `{pattern}`")),
            )
        } else {
            body[j]
        };
        if body.get(j + 1) == Some(&'-') && j + 2 < body.len() {
            let hi = body[j + 2];
            assert!(c <= hi, "inverted range `{c}-{hi}` in pattern `{pattern}`");
            set.extend(c..=hi);
            j += 3;
        } else {
            set.push(c);
            j += 1;
        }
    }
    set
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("pattern-tests", 0)
    }

    #[test]
    fn printable_ascii_class_with_counted_repeat() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[ -~]{0,60}", &mut r);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literal_runs_pass_through() {
        assert_eq!(generate("abc", &mut rng()), "abc");
    }

    #[test]
    fn classes_mix_ranges_and_singletons() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-c_']{4}", &mut r);
            assert_eq!(s.len(), 4);
            assert!(s.chars().all(|c| "abc_'".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn question_star_plus() {
        let mut r = rng();
        for _ in 0..50 {
            assert!(generate("x?", &mut r).len() <= 1);
            assert!(generate("x*", &mut r).len() <= 8);
            let p = generate("x+", &mut r).len();
            assert!((1..=8).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported pattern construct")]
    fn alternation_is_rejected_loudly() {
        generate("a|b", &mut rng());
    }
}
