//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest's API its property tests use:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * strategies: integer/size ranges, tuples, [`Just`], `any::<T>()`,
//!   `&str` character-class patterns, [`collection::vec`],
//!   [`strategy::Union`] (behind [`prop_oneof!`]);
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case reports its seed and debug
//!   value; re-running is deterministic, which replaces persistence
//!   files.
//! * **Deterministic RNG.** Each test derives its stream from the
//!   test body's name, so runs are reproducible across machines.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

pub mod collection;
pub mod pattern;

// ---------------------------------------------------------------
// RNG
// ---------------------------------------------------------------

/// The deterministic RNG driving generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary byte string (e.g. the
    /// test name) and a case index.
    #[must_use]
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: generation is a
/// single function of the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `depth` levels of `recurse` stacked on
    /// this leaf strategy. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility; depth alone bounds the
    /// generated trees here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(cur).boxed();
            // Mix the leaf back in so expected sizes stay tame.
            cur = Union::weighted(vec![(1, leaf.clone()), (3, branch)]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.new_value(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed alternatives (behind [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// A uniform union.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// A weighted union.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % u64::from(self.total)) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in constructor")
    }
}

// ---------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128 % span;
                (self.start as i128 + x as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// `&str` strategies interpret the string as a character-class
/// pattern (see [`pattern`]), e.g. `"[ -~]{0,60}"`.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical full-range strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Full-range integer generation.
struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                FullRange::<$t>(std::marker::PhantomData).boxed()
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        struct B;
        impl Strategy for B {
            type Value = bool;
            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
        B.boxed()
    }
}

// ---------------------------------------------------------------
// Runner
// ---------------------------------------------------------------

/// Why a single test case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

/// Result type the [`proptest!`] body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property: generates up to `10 × cases` inputs, needing
/// `cases` accepted runs; panics on the first failure with the
/// offending case index (deterministically re-runnable).
///
/// # Panics
///
/// Panics if the property fails or if too many cases are rejected.
pub fn run_property<V, S, F>(name: &str, config: &ProptestConfig, strategy: &S, body: F)
where
    S: Strategy<Value = V>,
    V: fmt::Debug,
    F: Fn(V) -> TestCaseResult,
{
    let mut accepted = 0u32;
    let mut case = 0u64;
    let budget = u64::from(config.cases) * 10;
    while accepted < config.cases && case < budget {
        let mut rng = TestRng::for_case(name, case);
        let value = strategy.new_value(&mut rng);
        let desc = format!("{value:?}");
        match body(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case #{case}: {msg}\n\
                     input: {desc}"
                );
            }
        }
        case += 1;
    }
    assert!(
        accepted >= config.cases.min(1),
        "property `{name}`: all {budget} generated cases were rejected by prop_assume!"
    );
}

pub mod prelude {
    //! Everything the property tests import.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

pub mod strategy {
    //! Strategy combinator types.
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

// ---------------------------------------------------------------
// Macros
// ---------------------------------------------------------------

/// Uniform (or `weight => arm` weighted) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts inside a [`proptest!`] body; returns a
/// [`TestCaseError::Fail`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &config,
                &strategy,
                |($($pat,)+)| -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("t", 0);
        for _ in 0..500 {
            let v = (-5i64..5).new_value(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::TestRng::for_case("u", 1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.new_value(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::for_case("r", 2);
        for _ in 0..100 {
            assert!(depth(&strat.new_value(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(a in 0i64..50, b in 0i64..50) {
            prop_assume!(a != b);
            prop_assert!(a + b < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn the_macro_itself_works_is_a_plain_fn() {
        the_macro_itself_works();
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_case_info() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(5),
            &(0i64..10),
            |_| Err(TestCaseError::Fail("nope".to_string())),
        );
    }
}
