//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *tiny* slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over primitive integer ranges, and
//! [`Rng::gen_bool`]. The generator is SplitMix64 — statistically
//! fine for test-case generation, deterministic by construction
//! (there is deliberately no `from_entropy`).

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges (and other distributions) a value can be drawn from,
/// mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128 % span;
                (self.start as i128 + x as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value uniformly distributed over `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        // 53 high bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard test RNG: SplitMix64.
    ///
    /// Not the cryptographic ChaCha generator the real `rand`
    /// ships — this stand-in only feeds property-test generators.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y: usize = rng.gen_range(0..3usize);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }
}
