//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace's
//! benches run on this minimal wall-clock harness exposing the same
//! API shape: [`Criterion`], [`criterion_group!`]/[`criterion_main!`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`] and
//! `Bencher::iter`. Each benchmark is warmed up, sampled, and its
//! median / min / max per-iteration time printed — good enough to
//! compare hot paths across commits, with none of criterion's
//! statistics, plots, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented in the stand-in.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.warm_up, self.measurement, self.sample_size, &mut f);
        print_report(&id.to_string(), &report, None);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Declares input throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let report = run_bench(
            self.criterion.warm_up,
            self.criterion.measurement,
            samples,
            &mut |b| f(b, input),
        );
        let label = format!("{}/{}", self.name, id);
        print_report(&label, &report, self.throughput.as_ref());
        self
    }

    /// Benches `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let report = run_bench(
            self.criterion.warm_up,
            self.criterion.measurement,
            samples,
            &mut f,
        );
        let label = format!("{}/{}", self.name, id);
        print_report(&label, &report, self.throughput.as_ref());
        self
    }

    /// Ends the group (formatting no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, `function/parameter` style.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Input volume per iteration, used to derive throughput lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing callback target.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    mode: BenchMode,
}

enum BenchMode {
    /// Estimate how many iterations fit in one sample window.
    Calibrate(Duration),
    /// Record `samples.capacity()` samples.
    Measure,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Calibrate(window) => {
                // Double iterations until one batch costs >= window/8,
                // so each sample is long enough to time reliably.
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    let took = start.elapsed();
                    if took >= window / 8 || iters >= 1 << 20 {
                        self.iters_per_sample = iters;
                        break;
                    }
                    iters *= 2;
                }
            }
            BenchMode::Measure => {
                let n = self.samples.capacity();
                for _ in 0..n {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        std::hint::black_box(routine());
                    }
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

struct Report {
    median: Duration,
    min: Duration,
    max: Duration,
}

fn run_bench<F>(warm_up: Duration, measurement: Duration, samples: usize, f: &mut F) -> Report
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration pass.
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: BenchMode::Calibrate(warm_up.max(Duration::from_millis(1))),
    };
    f(&mut b);
    let iters = b.iters_per_sample;

    // Measurement pass: split the window over the requested samples.
    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(samples),
        mode: BenchMode::Measure,
    };
    let _ = measurement; // window is implied by samples × calibrated batch
    f(&mut b);

    let mut per_iter: Vec<Duration> = b
        .samples
        .iter()
        .map(|d| *d / u32::try_from(iters).unwrap_or(u32::MAX))
        .collect();
    per_iter.sort_unstable();
    let fallback = Duration::ZERO;
    Report {
        median: per_iter
            .get(per_iter.len() / 2)
            .copied()
            .unwrap_or(fallback),
        min: per_iter.first().copied().unwrap_or(fallback),
        max: per_iter.last().copied().unwrap_or(fallback),
    }
}

fn print_report(label: &str, report: &Report, throughput: Option<&Throughput>) {
    let rate = throughput.map_or(String::new(), |t| {
        let secs = report.median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(n) => {
                format!("  {:.1} MiB/s", *n as f64 / secs / (1024.0 * 1024.0))
            }
            Throughput::Elements(n) => format!("  {:.0} elem/s", *n as f64 / secs),
        }
    });
    println!(
        "{label:<50} median {:>12?}  (min {:?}, max {:?}){rate}",
        report.median, report.min, report.max
    );
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching `criterion::black_box` (prefer
/// `std::hint::black_box` in new code).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_compose_ids_and_throughput() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(4))
            .sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("f", 1), &41u64, |b, &x| {
            b.iter(|| x + 1);
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 1).to_string(), "f/1");
        assert_eq!(BenchmarkId::from_parameter("p8").to_string(), "p8");
    }
}
