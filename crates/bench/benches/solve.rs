//! `Solve` scaling: unit propagation over growing Horn constraint
//! sets, the three outcome classes, and the brute-force fallback.

use bsml_types::{Constraint, Solution, Type};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// `L(a₀) ∧ (L(a₀) ⇒ L(a₁)) ∧ … ∧ (L(a_{n−1}) ⇒ L(aₙ))` — a full
/// propagation chain ending in all-facts residual.
fn chain(n: u32) -> Constraint {
    let mut c = Constraint::loc(Type::var(0));
    for i in 0..n {
        c = Constraint::and(
            c,
            Constraint::Implies(
                Box::new(Constraint::loc(Type::var(i))),
                Box::new(Constraint::loc(Type::var(i + 1))),
            ),
        );
    }
    c
}

/// Like [`chain`] but ending in `⇒ False`: solves to `False` after
/// full propagation.
fn absurd_chain(n: u32) -> Constraint {
    Constraint::and(
        chain(n),
        Constraint::Implies(
            Box::new(Constraint::loc(Type::var(n))),
            Box::new(Constraint::False),
        ),
    )
}

/// Independent residual clauses (no propagation possible).
fn residual_clauses(n: u32) -> Constraint {
    Constraint::conj((0..n).map(|i| {
        Constraint::Implies(
            Box::new(Constraint::loc(Type::var(2 * i))),
            Box::new(Constraint::loc(Type::var(2 * i + 1))),
        )
    }))
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    for n in [8u32, 64, 256] {
        for (shape, constraint, expect_false) in [
            ("propagation-chain", chain(n), false),
            ("absurd-chain", absurd_chain(n), true),
            ("residual", residual_clauses(n), false),
        ] {
            group.bench_with_input(BenchmarkId::new(shape, n), &constraint, |b, constraint| {
                b.iter(|| {
                    let s = black_box(constraint).solve();
                    assert_eq!(s == Solution::False, expect_false);
                    s
                });
            });
        }
    }
    group.finish();
}

fn bench_locality_expansion(c: &mut Criterion) {
    // Deep type: L over a big type tree.
    fn deep_type(n: u32) -> Type {
        (0..n).fold(Type::var(0), |t, i| Type::pair(t, Type::var(i + 1)))
    }
    let mut group = c.benchmark_group("solve/locality-expansion");
    for n in [16u32, 128] {
        let t = deep_type(n);
        let constraint =
            Constraint::implies(Constraint::loc(t.clone()), Constraint::loc(Type::var(0)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &constraint, |b, cst| {
            b.iter(|| black_box(cst).solve());
        });
    }
    group.finish();
}

fn bench_brute_force_fallback(c: &mut Criterion) {
    // Non-Horn formula with k variables: exercises the 2^k fallback.
    fn non_horn(k: u32) -> Constraint {
        let inner = Constraint::Implies(
            Box::new(Constraint::conj(
                (0..k).map(|i| Constraint::loc(Type::var(i))),
            )),
            Box::new(Constraint::False),
        );
        Constraint::Implies(Box::new(inner), Box::new(Constraint::False))
    }
    let mut group = c.benchmark_group("solve/brute-force");
    for k in [4u32, 10, 16] {
        let cst = non_horn(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &cst, |b, cst| {
            b.iter(|| black_box(cst).solve());
        });
    }
    group.finish();
}

/// Short measurement windows: the series are for shape comparisons,
/// not microarchitectural precision, and the full suite must run in
/// minutes.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_solve,
    bench_locality_expansion,
    bench_brute_force_fallback
}
criterion_main!(benches);
