//! Evaluator benchmarks: the big-step engine vs the literal
//! small-step machine (the definitional/efficient ablation), plus
//! engine throughput on sequential workloads.

use bsml_bench::{fib, list_sum};
use bsml_eval::{eval_closed, smallstep};
use bsml_std::workloads;
use bsml_vm::{compile, Vm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bigstep_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval/bigstep");
    for (name, src) in [
        ("fib-15", fib(15)),
        ("fib-18", fib(18)),
        ("list-sum-500", list_sum(500)),
        ("list-sum-2000", list_sum(2000)),
    ] {
        let ast = bsml_syntax::parse(&src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &ast, |b, ast| {
            b.iter(|| eval_closed(black_box(ast), 1).expect("runs"));
        });
    }
    group.finish();
}

fn bench_big_vs_small_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval/big-vs-small");
    group.sample_size(10);
    for (name, src) in [("fib-10", fib(10)), ("list-sum-40", list_sum(40))] {
        let ast = bsml_syntax::parse(&src).unwrap();
        group.bench_with_input(BenchmarkId::new("bigstep", name), &ast, |b, ast| {
            b.iter(|| eval_closed(black_box(ast), 1).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("smallstep", name), &ast, |b, ast| {
            b.iter(|| smallstep::run(black_box(ast), 1, u64::MAX).expect("runs"));
        });
        let program = compile(&ast).expect("compiles");
        group.bench_with_input(BenchmarkId::new("bytecode-vm", name), &program, |b, p| {
            b.iter(|| Vm::new(1).run(black_box(p)).expect("runs"));
        });
    }
    group.finish();
}

fn bench_vm_vs_bigstep(c: &mut Criterion) {
    // The engine comparison on heavier inputs (the small-step
    // machine is too slow for these).
    let mut group = c.benchmark_group("eval/vm-vs-bigstep");
    for (name, src, p) in [
        ("fib-18", fib(18), 1usize),
        ("list-sum-2000", list_sum(2000), 1),
        ("scan-log-p8", workloads::scan_plus_log().source, 8),
        ("psrs-p4", bsml_std::algorithms::psrs_sort(16).source, 4),
    ] {
        let ast = bsml_syntax::parse(&src).unwrap();
        group.bench_with_input(BenchmarkId::new("bigstep", name), &ast, |b, ast| {
            b.iter(|| eval_closed(black_box(ast), p).expect("runs"));
        });
        let program = compile(&ast).expect("compiles");
        group.bench_with_input(BenchmarkId::new("bytecode-vm", name), &program, |b, pr| {
            b.iter(|| Vm::new(p).run(black_box(pr)).expect("runs"));
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval/compile");
    for w in [
        workloads::scan_plus_log(),
        bsml_std::algorithms::psrs_sort(8),
    ] {
        let ast = w.ast();
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &ast, |b, ast| {
            b.iter(|| compile(black_box(ast)).expect("compiles"));
        });
    }
    group.finish();
}

fn bench_parallel_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval/parallel-workloads");
    for w in [
        workloads::bcast_direct(0),
        workloads::total_exchange(),
        workloads::scan_plus_log(),
        workloads::inner_product(16),
    ] {
        let ast = w.ast();
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &ast, |b, ast| {
            b.iter(|| eval_closed(black_box(ast), 8).expect("runs"));
        });
    }
    group.finish();
}

/// Short measurement windows: the series are for shape comparisons,
/// not microarchitectural precision, and the full suite must run in
/// minutes.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_bigstep_sequential,
    bench_big_vs_small_step,
    bench_vm_vs_bigstep,
    bench_compile,
    bench_parallel_workloads
}
criterion_main!(benches);
