//! Transport benchmarks (DESIGN.md §10): the per-rank-mailbox
//! substrate of the reliable transport against the single global
//! mailbox it replaced, and the end-to-end distributed machine on
//! all-to-all `put`s — over the lossless fast path and a lossy
//! network. Results are recorded in EXPERIMENTS.md.

use std::hint::black_box;
use std::sync::{Barrier, Mutex};

use bsml_bsp::distributed::DistMachine;
use bsml_bsp::transport::{SharedMem, Transport};
use bsml_bsp::{LossyConfig, TransportConfig};
use bsml_std::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ROUNDS: usize = 16;
const PAYLOAD: usize = 64;

/// One thread per rank, `ROUNDS` all-to-all rounds over the *old*
/// design: every rank writes its whole row under ONE global lock,
/// synchronizes, then reads its column under the same lock — the
/// `Mutex<Vec<Vec<_>>>` the distributed backend used before the wire
/// transport. Every rank serializes on every other rank's traffic.
fn global_mailbox_all_to_all(p: usize) {
    let mailbox: Mutex<Vec<Vec<Vec<u8>>>> = Mutex::new(vec![vec![Vec::new(); p]; p]);
    let barrier = Barrier::new(p);
    std::thread::scope(|scope| {
        for rank in 0..p {
            let mailbox = &mailbox;
            let barrier = &barrier;
            scope.spawn(move || {
                let frame = vec![rank as u8; PAYLOAD];
                for _ in 0..ROUNDS {
                    {
                        let mut m = mailbox.lock().unwrap();
                        for dst in 0..p {
                            m[rank][dst] = frame.clone();
                        }
                    }
                    barrier.wait();
                    let mut bytes = 0usize;
                    {
                        let m = mailbox.lock().unwrap();
                        for src in 0..p {
                            bytes += m[src][rank].len();
                        }
                    }
                    assert_eq!(bytes, p * PAYLOAD);
                    barrier.wait();
                }
            });
        }
    });
}

/// The same traffic over the new substrate: one bounded FIFO per
/// receiving rank, one lock per mailbox — senders to different ranks
/// never contend.
fn per_rank_mailbox_all_to_all(p: usize) {
    let transport = SharedMem::new(p, 4 * p.max(16));
    let barrier = Barrier::new(p);
    std::thread::scope(|scope| {
        for rank in 0..p {
            let transport = &transport;
            let barrier = &barrier;
            scope.spawn(move || {
                let frame = vec![rank as u8; PAYLOAD];
                for _ in 0..ROUNDS {
                    for dst in 0..p {
                        if dst != rank {
                            assert!(transport.try_send(rank, dst, &frame));
                        }
                    }
                    let mut got = 0usize;
                    while got < p - 1 {
                        if transport.recv(rank).is_some() {
                            got += 1;
                        } else {
                            // More ranks than cores is the common
                            // case: hand the slice to a sender instead
                            // of starving it with a spin.
                            std::thread::yield_now();
                        }
                    }
                    barrier.wait();
                }
            });
        }
    });
}

fn bench_mailbox_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/mailbox-substrate");
    group.sample_size(10);
    for p in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("global-mutex", p), &p, |b, &p| {
            b.iter(|| global_mailbox_all_to_all(black_box(p)));
        });
        group.bench_with_input(BenchmarkId::new("per-rank", p), &p, |b, &p| {
            b.iter(|| per_rank_mailbox_all_to_all(black_box(p)));
        });
    }
    group.finish();
}

fn bench_distributed_all_to_all(c: &mut Criterion) {
    // End-to-end: the full distributed machine (threads, evaluator,
    // reliable exchange) on an all-to-all put, lossless vs a 10%
    // drop + 10% duplicate network that the reliable layer has to
    // repair in-line.
    let ast = workloads::total_exchange().ast();
    let mut group = c.benchmark_group("net/all-to-all-put");
    group.sample_size(10);
    for p in [4usize, 8, 16] {
        let shared = DistMachine::new(p);
        group.bench_with_input(BenchmarkId::new("shared-mem", p), &ast, |b, ast| {
            b.iter(|| shared.run(black_box(ast)).expect("runs"));
        });
        let lossy = DistMachine::new(p).with_transport(TransportConfig::Lossy(
            LossyConfig::new(0xBEEF).drop(100).duplicate(100),
        ));
        group.bench_with_input(BenchmarkId::new("lossy-10pc", p), &ast, |b, ast| {
            b.iter(|| lossy.run(black_box(ast)).expect("runs"));
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_mailbox_substrates, bench_distributed_all_to_all
}
criterion_main!(benches);
