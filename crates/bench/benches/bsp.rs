//! BSP simulator benchmarks — the equation (1) sweeps as wall-time
//! series (the measured *costs* are reproduced by
//! `cargo run --example bcast_cost`; here we track how the simulator
//! itself scales with `p`, payload size and superstep count).

use bsml_bsp::{BspMachine, BspParams};
use bsml_std::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn machine(p: usize) -> BspMachine {
    BspMachine::new(BspParams::new(p, 1, 1))
}

fn bench_bcast_over_p(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp/bcast-direct-over-p");
    for p in [2usize, 4, 8, 16, 32] {
        let ast = workloads::bcast_direct(0).ast();
        let m = machine(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &ast, |b, ast| {
            b.iter(|| m.run(black_box(ast)).expect("runs"));
        });
    }
    group.finish();
}

fn bench_bcast_over_payload(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp/bcast-direct-over-s");
    for s in [1usize, 16, 64, 256] {
        let ast = workloads::bcast_direct_payload(0, s).ast();
        let m = machine(8);
        group.bench_with_input(BenchmarkId::from_parameter(s), &ast, |b, ast| {
            b.iter(|| m.run(black_box(ast)).expect("runs"));
        });
    }
    group.finish();
}

fn bench_direct_vs_log_bcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp/bcast-direct-vs-log");
    for p in [4usize, 16] {
        let direct = workloads::bcast_direct_payload(0, 8).ast();
        let log = workloads::bcast_log_payload(8).ast();
        let m = machine(p);
        group.bench_with_input(BenchmarkId::new("direct", p), &direct, |b, ast| {
            b.iter(|| m.run(black_box(ast)).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("log", p), &log, |b, ast| {
            b.iter(|| m.run(black_box(ast)).expect("runs"));
        });
    }
    group.finish();
}

fn bench_superstep_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp/superstep-pipeline");
    for rounds in [1usize, 4, 16] {
        let ast = workloads::ping_rounds(rounds).ast();
        let m = machine(4);
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &ast, |b, ast| {
            b.iter(|| m.run(black_box(ast)).expect("runs"));
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp/collectives");
    for w in [
        workloads::total_exchange(),
        workloads::fold_plus(),
        workloads::scan_plus_direct(),
        workloads::scan_plus_log(),
        workloads::shift(),
    ] {
        let ast = w.ast();
        let m = machine(8);
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &ast, |b, ast| {
            b.iter(|| m.run(black_box(ast)).expect("runs"));
        });
    }
    group.finish();
}

fn bench_applications(c: &mut Criterion) {
    use bsml_std::algorithms;
    let mut group = c.benchmark_group("bsp/applications");
    group.sample_size(20);
    for n in [8usize, 32] {
        let ast = algorithms::psrs_sort(n).ast();
        let m = machine(4);
        group.bench_with_input(BenchmarkId::new("psrs-sort", n), &ast, |b, ast| {
            b.iter(|| m.run(black_box(ast)).expect("runs"));
        });
    }
    for (r, cpp) in [(2usize, 2usize), (4, 4)] {
        let ast = algorithms::matvec(r, cpp).ast();
        let m = machine(4);
        group.bench_with_input(
            BenchmarkId::new("matvec", format!("{r}x{cpp}")),
            &ast,
            |b, ast| {
                b.iter(|| m.run(black_box(ast)).expect("runs"));
            },
        );
    }
    group.finish();
}

fn bench_lockstep_vs_distributed(c: &mut Criterion) {
    use bsml_bsp::distributed::DistMachine;
    let mut group = c.benchmark_group("bsp/lockstep-vs-distributed");
    group.sample_size(20);
    for w in [workloads::fold_plus(), workloads::scan_plus_log()] {
        let ast = w.ast();
        let lockstep = machine(4);
        let dist = DistMachine::new(4);
        group.bench_with_input(BenchmarkId::new("lockstep", &w.name), &ast, |b, ast| {
            b.iter(|| lockstep.run(black_box(ast)).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("distributed", &w.name), &ast, |b, ast| {
            b.iter(|| dist.run(black_box(ast)).expect("runs"));
        });
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    // Compute-heavy per-processor work: the distributed machine runs
    // it on real threads and should show wall-clock speedup over the
    // lockstep machine, which plays the processors sequentially.
    use bsml_bsp::distributed::DistMachine;
    let src = "let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
               apply (mkpar (fun i -> fun x -> fib 17 + x), mkpar (fun i -> i))";
    let ast = bsml_syntax::parse(src).unwrap();
    let mut group = c.benchmark_group("bsp/parallel-speedup");
    group.sample_size(10);
    for p in [1usize, 2, 4] {
        let lockstep = machine(p);
        let dist = DistMachine::new(p);
        group.bench_with_input(BenchmarkId::new("lockstep", p), &ast, |b, ast| {
            b.iter(|| lockstep.run(black_box(ast)).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("distributed", p), &ast, |b, ast| {
            b.iter(|| dist.run(black_box(ast)).expect("runs"));
        });
    }
    group.finish();
}

/// Short measurement windows: the series are for shape comparisons,
/// not microarchitectural precision, and the full suite must run in
/// minutes.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_bcast_over_p,
    bench_bcast_over_payload,
    bench_direct_vs_log_bcast,
    bench_superstep_pipeline,
    bench_collectives,
    bench_applications,
    bench_lockstep_vs_distributed,
    bench_parallel_speedup
}
criterion_main!(benches);
