//! Type-inference benchmarks: scaling in program size and shape,
//! plus the ablations DESIGN.md calls out (derivation recording
//! on/off).

use bsml_bench::{nested_lets, poly_ladder};
use bsml_infer::{initial_env, Inferencer};
use bsml_std::{paper_corpus, workloads};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer/scaling");
    for n in [8usize, 32, 128] {
        for (shape, src) in [
            ("nested-lets", nested_lets(n)),
            ("poly-ladder", poly_ladder(n)),
        ] {
            let ast = bsml_syntax::parse(&src).unwrap();
            group.bench_with_input(BenchmarkId::new(shape, n), &ast, |b, ast| {
                b.iter(|| bsml_infer::infer(black_box(ast)).expect("types"));
            });
        }
    }
    group.finish();
}

fn bench_stdlib(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer/stdlib");
    for w in workloads::all_basic() {
        let ast = w.ast();
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &ast, |b, ast| {
            b.iter(|| bsml_infer::infer(black_box(ast)).expect("types"));
        });
    }
    group.finish();
}

fn bench_derivation_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer/derivation-ablation");
    let w = workloads::scan_plus_log();
    let ast = w.ast();
    group.bench_function("recording-off", |b| {
        b.iter(|| {
            Inferencer::new()
                .with_derivation(false)
                .run(&initial_env(), black_box(&ast))
                .expect("types")
        });
    });
    group.bench_function("recording-on", |b| {
        b.iter(|| {
            Inferencer::new()
                .with_derivation(true)
                .run(&initial_env(), black_box(&ast))
                .expect("types")
        });
    });
    group.finish();
}

fn bench_locality_ablation(c: &mut Criterion) {
    // The cost of the paper's contribution: constrained inference vs
    // plain Damas–Milner (what OCaml does) on the same programs.
    let mut group = c.benchmark_group("infer/locality-ablation");
    for w in [
        workloads::bcast_direct(0),
        workloads::scan_plus_log(),
        workloads::inner_product(8),
    ] {
        let ast = w.ast();
        group.bench_with_input(BenchmarkId::new("constrained", &w.name), &ast, |b, ast| {
            b.iter(|| {
                Inferencer::new()
                    .run(&initial_env(), black_box(ast))
                    .expect("types")
            });
        });
        group.bench_with_input(BenchmarkId::new("plain-dm", &w.name), &ast, |b, ast| {
            b.iter(|| {
                Inferencer::new()
                    .with_locality(false)
                    .run(&initial_env(), black_box(ast))
                    .expect("types")
            });
        });
    }
    group.finish();
}

fn bench_rejection(c: &mut Criterion) {
    // Rejections must be as fast as acceptances (the checker is on
    // the critical path of a compiler).
    let mut group = c.benchmark_group("infer/verdicts");
    for entry in paper_corpus() {
        let ast = entry.ast();
        group.bench_with_input(BenchmarkId::from_parameter(entry.name), &ast, |b, ast| {
            b.iter(|| {
                let _ = black_box(bsml_infer::infer(black_box(ast)));
            });
        });
    }
    group.finish();
}

/// Short measurement windows: the series are for shape comparisons,
/// not microarchitectural precision, and the full suite must run in
/// minutes.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_scaling,
    bench_stdlib,
    bench_derivation_ablation,
    bench_locality_ablation,
    bench_rejection
}
criterion_main!(benches);
