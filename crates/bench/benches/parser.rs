//! Parse throughput across program shapes and sizes.

use bsml_bench::{arithmetic_chain, nested_lets, poly_ladder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for n in [16usize, 64, 256, 1024] {
        for (shape, src) in [
            ("nested-lets", nested_lets(n)),
            ("arith-chain", arithmetic_chain(n)),
            ("poly-ladder", poly_ladder(n.min(256))),
        ] {
            group.throughput(Throughput::Bytes(src.len() as u64));
            group.bench_with_input(BenchmarkId::new(shape, n), &src, |b, src| {
                b.iter(|| bsml_syntax::parse(black_box(src)).expect("parses"));
            });
        }
    }
    group.finish();
}

fn bench_pretty_roundtrip(c: &mut Criterion) {
    let src = nested_lets(256);
    let ast = bsml_syntax::parse(&src).unwrap();
    c.bench_function("pretty-print/nested-lets-256", |b| {
        b.iter(|| black_box(&ast).to_string());
    });
}

/// Short measurement windows: the series are for shape comparisons,
/// not microarchitectural precision, and the full suite must run in
/// minutes.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_parser, bench_pretty_roundtrip
}
criterion_main!(benches);
