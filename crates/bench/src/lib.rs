//! Shared workload builders for the Criterion benches.

/// A purely sequential program of `n` chained `let`s ending in a sum
/// of the first and last binding.
#[must_use]
pub fn nested_lets(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("let x{i} = {i} + 1 in "));
    }
    src.push_str(&format!("x0 + x{}", n.saturating_sub(1)));
    src
}

/// A wide arithmetic expression of `n` operands (`1 + 2 + … + n`).
#[must_use]
pub fn arithmetic_chain(n: usize) -> String {
    let mut src = String::from("1");
    for i in 2..=n {
        src.push_str(&format!(" + {i}"));
    }
    src
}

/// A polymorphic let-ladder: each binding composes the previous one,
/// stressing instantiation and generalization.
#[must_use]
pub fn poly_ladder(n: usize) -> String {
    let mut src = String::from("let f0 = fun x -> x in ");
    for i in 1..n {
        src.push_str(&format!(
            "let f{i} = fun x -> f{} (f{} x) in ",
            i - 1,
            i - 1
        ));
    }
    src.push_str(&format!("f{} 1", n.saturating_sub(1)));
    src
}

/// A parallel pipeline of `rounds` shift supersteps.
#[must_use]
pub fn shift_pipeline(rounds: usize) -> String {
    bsml_std::workloads::ping_rounds(rounds).source
}

/// Sequential fibonacci — the classic evaluator stress test.
#[must_use]
pub fn fib(n: u32) -> String {
    format!("let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in fib {n}")
}

/// Sum of an `n`-element locally built list.
#[must_use]
pub fn list_sum(n: usize) -> String {
    // Both helpers are tail-recursive: like OCaml, the evaluator runs
    // tail calls in constant stack but bounds non-tail depth.
    format!(
        "let rec build acc j = if j = 0 then acc else build (j :: acc) (j - 1) in
         let rec sum acc xs = match xs with [] -> acc | h :: t -> sum (acc + h) t in
         sum 0 (build [] {n})"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_eval::eval_closed;
    use bsml_infer::infer;
    use bsml_syntax::parse;

    #[test]
    fn builders_produce_valid_programs() {
        for src in [
            nested_lets(10),
            arithmetic_chain(10),
            poly_ladder(5),
            shift_pipeline(2),
            fib(10),
            list_sum(10),
        ] {
            let ast = parse(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
            infer(&ast).unwrap_or_else(|e| panic!("{}", e.render(&src)));
            eval_closed(&ast, 2).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn fib_is_correct() {
        let ast = parse(&fib(15)).unwrap();
        assert_eq!(eval_closed(&ast, 1).unwrap().to_string(), "610");
    }

    #[test]
    fn list_sum_is_correct() {
        let ast = parse(&list_sum(100)).unwrap();
        assert_eq!(eval_closed(&ast, 1).unwrap().to_string(), "5050");
    }
}
