//! Property tests for the constraint solver: `Solve`'s verdicts are
//! semantically exact on randomly generated constraints, and the
//! residual form is logically equivalent to the input.

use std::collections::BTreeMap;

use bsml_types::{unify, Constraint, Solution, Subst, TyVar, Type};
use proptest::prelude::*;

const NVARS: u32 = 6;

fn ty_leaf() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Int),
        Just(Type::Bool),
        Just(Type::Unit),
        (0..NVARS).prop_map(Type::var),
    ]
}

fn ty_strategy() -> impl Strategy<Value = Type> {
    ty_leaf().prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::pair(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::sum(a, b)),
            inner.clone().prop_map(Type::par),
            inner.prop_map(Type::list),
        ]
    })
}

/// Horn-shaped constraints: conjunctions of `L(τ)` atoms and
/// implications with conjunction-of-atoms antecedents — the fragment
/// the type system generates.
fn horn_strategy() -> impl Strategy<Value = Constraint> {
    let atom = prop_oneof![
        Just(Constraint::True),
        Just(Constraint::False),
        ty_strategy().prop_map(Constraint::Loc),
    ];
    let ante = proptest::collection::vec(ty_strategy().prop_map(Constraint::Loc), 1..3)
        .prop_map(Constraint::conj);
    let clause = prop_oneof![
        atom.clone(),
        (ante, atom.clone()).prop_map(|(a, b)| Constraint::Implies(Box::new(a), Box::new(b))),
    ];
    proptest::collection::vec(clause, 1..6).prop_map(Constraint::conj)
}

/// Arbitrary constraints, implications inside antecedents included.
fn any_constraint() -> impl Strategy<Value = Constraint> {
    let leaf = prop_oneof![
        Just(Constraint::True),
        Just(Constraint::False),
        ty_strategy().prop_map(Constraint::Loc),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Constraint::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Constraint::Implies(Box::new(a), Box::new(b))),
        ]
    })
}

/// Evaluates `c` under every assignment of its (≤ NVARS) variables,
/// returning (holds-somewhere, fails-somewhere).
fn truth_profile(c: &Constraint) -> (bool, bool) {
    let vars: Vec<TyVar> = c.free_vars();
    assert!(vars.len() <= NVARS as usize);
    let mut any_true = false;
    let mut any_false = false;
    for bits in 0u32..(1 << vars.len()) {
        let assignment: BTreeMap<TyVar, bool> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, bits >> i & 1 == 1))
            .collect();
        match c.eval(&assignment) {
            Some(true) => any_true = true,
            Some(false) => any_false = true,
            None => panic!("assignment covers all variables"),
        }
    }
    (any_true, any_false)
}

fn check_verdict(c: &Constraint) {
    let (any_true, any_false) = truth_profile(c);
    match c.solve() {
        Solution::True => {
            assert!(!any_false, "solve said True but {c} is falsifiable");
        }
        Solution::False => {
            assert!(!any_true, "solve said False but {c} is satisfiable");
        }
        Solution::Residual(_) => {
            assert!(any_true && any_false, "residual {c} is not contingent");
        }
    }
}

fn check_residual_equivalence(c: &Constraint) {
    if let Solution::Residual(_) = c.solve() {
        let reconstructed = c.solve().to_constraint();
        let vars: Vec<TyVar> = {
            let mut vs = c.free_vars();
            for v in reconstructed.free_vars() {
                if !vs.contains(&v) {
                    vs.push(v);
                }
            }
            vs
        };
        for bits in 0u32..(1 << vars.len()) {
            let assignment: BTreeMap<TyVar, bool> = vars
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, bits >> i & 1 == 1))
                .collect();
            assert_eq!(
                c.eval(&assignment),
                reconstructed.eval(&assignment),
                "residual of {c} is not equivalent (got {reconstructed})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn solve_is_semantically_exact_on_horn(c in horn_strategy()) {
        check_verdict(&c);
    }

    #[test]
    fn residual_is_equivalent_on_horn(c in horn_strategy()) {
        check_residual_equivalence(&c);
    }

    #[test]
    fn solve_true_false_verdicts_are_sound_generally(c in any_constraint()) {
        // Outside the Horn fragment Solve may report Residual for a
        // valid-or-unsat formula only via the >22-vars path (never
        // reached here), so the verdicts are still exact.
        check_verdict(&c);
    }

    #[test]
    fn solving_twice_is_a_fixed_point(c in horn_strategy()) {
        let s = c.solve();
        prop_assert_eq!(s.to_constraint().solve(), s);
    }

    #[test]
    fn unify_produces_a_unifier(a in ty_strategy(), b in ty_strategy()) {
        if let Ok(s) = unify(&a, &b) {
            prop_assert_eq!(s.apply(&a), s.apply(&b));
            // Idempotence.
            let once = s.apply(&a);
            prop_assert_eq!(s.apply(&once), once);
        }
    }

    #[test]
    fn unify_with_self_is_identity_modulo_vars(a in ty_strategy()) {
        let s = unify(&a, &a).expect("every type unifies with itself");
        prop_assert_eq!(s.apply(&a), a);
    }

    #[test]
    fn definition1_never_unsolves_an_absurdity(
        c in horn_strategy(),
        img in ty_strategy(),
        v in 0..NVARS,
    ) {
        // If C is already absurd, φ(C) with Definition 1's extra
        // basic constraints must stay absurd (substitution cannot
        // rescue a rejected expression).
        if c.solve() == Solution::False {
            let phi = Subst::singleton(TyVar(v), img);
            let (_, c2) = phi.apply_constrained(&Type::var(v), &c);
            prop_assert_eq!(c2.solve(), Solution::False);
        }
    }

    #[test]
    fn locality_expansion_matches_eval(t in ty_strategy()) {
        // L(τ) expanded and the direct eval_loc semantics agree.
        let c = Constraint::Loc(t);
        let expanded = c.expand();
        let vars: Vec<TyVar> = c.free_vars();
        prop_assume!(vars.len() <= NVARS as usize);
        for bits in 0u32..(1 << vars.len()) {
            let assignment: BTreeMap<TyVar, bool> = vars
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, bits >> i & 1 == 1))
                .collect();
            prop_assert_eq!(c.eval(&assignment), expanded.eval(&assignment));
        }
    }
}
