//! Type algebra and locality constraints for BSML — the static
//! semantics machinery of §4 of *A Polymorphic Type System for Bulk
//! Synchronous Parallel ML* (Gava & Loulergue, 2003).
//!
//! The crate provides, in paper order:
//!
//! * [`Type`] — simple types `τ ::= κ | α | τ→τ | τ*τ | (τ par)`
//!   (plus the §6 extensions: sums and lists),
//! * [`locality()`] — the locality predicate `L(τ)` and the *basic
//!   constraints* `C_τ`,
//! * [`classify`] — the paper's three sub-grammars of simple types:
//!   local types **L**, variable types **V** and global types **G**,
//! * [`Constraint`] — constraint formulas
//!   `C ::= True | False | L(α) | C∧C | C⇒C` and the decidable
//!   [`Constraint::solve`] procedure (`Solve` in the paper),
//! * [`Scheme`] — constrained type schemes `∀ᾱ.[τ/C]` with
//!   substitution (Definition 1), instantiation (Definition 2) and
//!   generalization (Definition 3),
//! * [`Subst`] — substitutions on types, constraints and schemes,
//! * [`unify()`] — first-order unification used by the inference
//!   algorithm in `bsml-infer`.
//!
//! # Example: catching a nested parallel vector by constraint solving
//!
//! ```
//! use bsml_types::{Constraint, Type, Solution};
//!
//! // Instantiating mkpar's constraint L(α) at α = int par must fail:
//! let c = Constraint::loc(Type::par(Type::Int));
//! assert_eq!(c.solve(), Solution::False);
//!
//! // ... while α = int is fine:
//! let c = Constraint::loc(Type::Int);
//! assert_eq!(c.solve(), Solution::True);
//! ```

pub mod classify;
pub mod constraint;
pub mod locality;
pub mod scheme;
pub mod subst;
pub mod ty;
pub mod unify;

pub use classify::TypeClass;
pub use constraint::{Clause, Constraint, Head, Solution};
pub use locality::{basic_constraint, locality};
pub use scheme::Scheme;
pub use subst::Subst;
pub use ty::{TyVar, TyVarGen, Type};
pub use unify::{unify, unify_counted, UnifyError, UnifyStats};
