//! Substitutions on types, constraints and constrained types.
//!
//! Applying a substitution to a *constrained* type implements the
//! paper's **Definition 1**: besides mapping the variables, the basic
//! constraints `C_φ(β)` of every substituted image are conjoined, so
//! that an instantiation like `β ↦ int par` immediately contributes
//! the (here absurd) well-formedness constraints of its image.

use std::collections::BTreeMap;
use std::fmt;

use crate::constraint::Constraint;
use crate::locality::basic_constraint;
use crate::ty::{TyVar, Type};

/// A finite mapping from type variables to simple types.
///
/// # Example
///
/// ```
/// use bsml_types::{Subst, Type, TyVar};
///
/// let s = Subst::singleton(TyVar(0), Type::Int);
/// assert_eq!(s.apply(&Type::arrow(Type::var(0), Type::var(1))),
///            Type::arrow(Type::Int, Type::var(1)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<TyVar, Type>,
}

impl Subst {
    /// The empty (identity) substitution.
    #[must_use]
    pub fn new() -> Subst {
        Subst::default()
    }

    /// The substitution `{v ↦ ty}`.
    #[must_use]
    pub fn singleton(v: TyVar, ty: Type) -> Subst {
        let mut map = BTreeMap::new();
        map.insert(v, ty);
        Subst { map }
    }

    /// Builds a substitution from pairs. Later bindings for the same
    /// variable overwrite earlier ones.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TyVar, Type)>) -> Subst {
        Subst {
            map: pairs.into_iter().collect(),
        }
    }

    /// `true` for the identity substitution.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The image of `v`, if bound.
    #[must_use]
    pub fn get(&self, v: TyVar) -> Option<&Type> {
        self.map.get(&v)
    }

    /// The domain `Dom(φ)`.
    pub fn domain(&self) -> impl Iterator<Item = TyVar> + '_ {
        self.map.keys().copied()
    }

    /// Number of bound variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Applies the substitution to a type.
    #[must_use]
    pub fn apply(&self, ty: &Type) -> Type {
        if self.map.is_empty() {
            return ty.clone();
        }
        match ty {
            Type::Int | Type::Bool | Type::Unit => ty.clone(),
            Type::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| ty.clone()),
            Type::Arrow(a, b) => Type::arrow(self.apply(a), self.apply(b)),
            Type::Pair(a, b) => Type::pair(self.apply(a), self.apply(b)),
            Type::Sum(a, b) => Type::sum(self.apply(a), self.apply(b)),
            Type::Par(t) => Type::par(self.apply(t)),
            Type::List(t) => Type::list(self.apply(t)),
            Type::Ref(t) => Type::reference(self.apply(t)),
        }
    }

    /// Applies the substitution structurally to a constraint
    /// (`φ(C)` — without the Definition 1 augmentation).
    #[must_use]
    pub fn apply_constraint(&self, c: &Constraint) -> Constraint {
        if self.map.is_empty() {
            return c.clone();
        }
        match c {
            Constraint::True => Constraint::True,
            Constraint::False => Constraint::False,
            Constraint::Loc(t) => Constraint::Loc(self.apply(t)),
            Constraint::And(a, b) => {
                Constraint::and(self.apply_constraint(a), self.apply_constraint(b))
            }
            Constraint::Implies(a, b) => {
                Constraint::implies(self.apply_constraint(a), self.apply_constraint(b))
            }
        }
    }

    /// **Definition 1**: applies the substitution to a constrained
    /// type `[τ/C]`, conjoining the basic constraints of every image
    /// of a substituted variable free in `[τ/C]`:
    ///
    /// ```text
    /// φ([τ/C]) = [φτ / φC ∧ ⋀_{β ∈ Dom(φ) ∩ F([τ/C])} C_φ(β)]
    /// ```
    #[must_use]
    pub fn apply_constrained(&self, ty: &Type, c: &Constraint) -> (Type, Constraint) {
        let new_ty = self.apply(ty);
        let mut new_c = self.apply_constraint(c);
        if !self.map.is_empty() {
            let mut free = ty.free_vars();
            c.collect_free_vars(&mut free);
            for v in free {
                if let Some(image) = self.map.get(&v) {
                    new_c = Constraint::and(new_c, basic_constraint(image));
                }
            }
        }
        (new_ty, new_c)
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`.
    ///
    /// `(self.compose(other)).apply(t) == self.apply(&other.apply(t))`.
    #[must_use]
    pub fn compose(&self, other: &Subst) -> Subst {
        let mut map: BTreeMap<TyVar, Type> =
            other.map.iter().map(|(v, t)| (*v, self.apply(t))).collect();
        for (v, t) in &self.map {
            map.entry(*v).or_insert_with(|| t.clone());
        }
        Subst { map }
    }

    /// Inserts a binding, overwriting any existing one.
    pub fn insert(&mut self, v: TyVar, ty: Type) {
        self.map.insert(v, ty);
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v} ↦ {t}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<(TyVar, Type)> for Subst {
    fn from_iter<I: IntoIterator<Item = (TyVar, Type)>>(iter: I) -> Self {
        Subst::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Solution;

    #[test]
    fn identity_on_unbound() {
        let s = Subst::singleton(TyVar(0), Type::Int);
        assert_eq!(s.apply(&Type::var(1)), Type::var(1));
        assert_eq!(Subst::new().apply(&Type::var(0)), Type::var(0));
    }

    #[test]
    fn applies_structurally() {
        let s = Subst::from_pairs([(TyVar(0), Type::Int), (TyVar(1), Type::Bool)]);
        let t = Type::par(Type::pair(Type::var(0), Type::var(1)));
        assert_eq!(s.apply(&t), Type::par(Type::pair(Type::Int, Type::Bool)));
    }

    #[test]
    fn compose_order() {
        // other = {a ↦ b}, self = {b ↦ int}; composed maps a ↦ int.
        let other = Subst::singleton(TyVar(0), Type::var(1));
        let this = Subst::singleton(TyVar(1), Type::Int);
        let composed = this.compose(&other);
        assert_eq!(composed.apply(&Type::var(0)), Type::Int);
        assert_eq!(composed.apply(&Type::var(1)), Type::Int);
        // Matches functional composition.
        let t = Type::pair(Type::var(0), Type::var(1));
        assert_eq!(composed.apply(&t), this.apply(&other.apply(&t)));
    }

    #[test]
    fn constraint_substitution() {
        let s = Subst::singleton(TyVar(0), Type::par(Type::Int));
        let c = Constraint::loc(Type::var(0));
        assert_eq!(
            s.apply_constraint(&c),
            Constraint::loc(Type::par(Type::Int))
        );
        assert_eq!(s.apply_constraint(&c).solve(), Solution::False);
    }

    #[test]
    fn definition_1_adds_basic_constraints() {
        // fst's scheme body: [(α*β)→α / L(α)⇒L(β)].
        // Substituting β ↦ int par turns the constraint absurd via the
        // implication; substituting β ↦ (int par) par would *also* be
        // caught purely by the added basic constraint C_(int par) par.
        let ty = Type::arrow(Type::pair(Type::var(0), Type::var(1)), Type::var(0));
        let c = Constraint::Implies(
            Box::new(Constraint::loc(Type::var(0))),
            Box::new(Constraint::loc(Type::var(1))),
        );

        let phi = Subst::from_pairs([(TyVar(0), Type::Int), (TyVar(1), Type::par(Type::Int))]);
        let (t2, c2) = phi.apply_constrained(&ty, &c);
        assert_eq!(
            t2,
            Type::arrow(Type::pair(Type::Int, Type::par(Type::Int)), Type::Int)
        );
        assert_eq!(c2.solve(), Solution::False);

        // The benign instantiation stays satisfiable.
        let phi = Subst::from_pairs([(TyVar(0), Type::par(Type::Int)), (TyVar(1), Type::Int)]);
        let (_, c2) = phi.apply_constrained(&ty, &c);
        assert_eq!(c2.solve(), Solution::True);
    }

    #[test]
    fn definition_1_catches_nested_par_images() {
        // Even with a True constraint, an image with nested par is
        // rejected through its basic constraints.
        let ty = Type::var(0);
        let phi = Subst::singleton(TyVar(0), Type::par(Type::par(Type::Int)));
        let (_, c) = phi.apply_constrained(&ty, &Constraint::True);
        assert_eq!(c.solve(), Solution::False);
    }

    #[test]
    fn display() {
        let s = Subst::from_pairs([(TyVar(0), Type::Int)]);
        assert_eq!(s.to_string(), "{'a ↦ int}");
        assert_eq!(Subst::new().to_string(), "{}");
    }
}
