//! The paper's three sub-grammars of simple types (§4): **local
//! types** `L`, **variable types** `V` and **global types** `G`.
//!
//! ```text
//! local τ̇    ::= κ | τ̇ → τ̇ | τ̌ → τ̇ | τ̇ * τ̇
//! variable τ̌ ::= α | τ̇ → τ̌ | τ̌ → τ̌ | τ̌ * τ̌ | τ̌ * τ̇ | τ̇ * τ̌
//! global τ̄   ::= (τ̌ par) | (τ̇ par) | τ̌ → τ̄ | τ̇ → τ̄ | τ̄ → τ̄
//!              | τ̄ * τ̄ | τ̌ * τ̄ | τ̄ * τ̌ | τ̇ * τ̄ | τ̄ * τ̇
//! ```
//!
//! Intuitively: a *local* type contains no variables and no `par`; a
//! *variable* type contains variables but no `par`; a *global* type
//! contains a `par` that is **well-placed** — never under another
//! `par`. The paper proves `L ∩ G = ∅` and `V ∩ G = ∅`; types outside
//! all three classes (e.g. `(int par) par`) are malformed and exactly
//! the ones the constraints reject when they would be created.
//!
//! One refinement: the global grammar's arrows `τ̄ → τ̄` etc. never
//! allow a global type to flow into a *local* result, mirroring the
//! basic constraint `L(τ₂) ⇒ L(τ₁)`. We implement the grammar
//! literally, so `τ̄ → τ̇` is *not* global — such a function type is
//! classified [`TypeClass::Malformed`].

use crate::ty::Type;

/// Membership in the paper's L/V/G grammar partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeClass {
    /// `τ̇` — ground, par-free ("usual Objective Caml types").
    Local,
    /// `τ̌` — par-free with at least one type variable.
    Variable,
    /// `τ̄` — contains a well-placed `par`.
    Global,
    /// In none of the three grammars (e.g. nested `par`, or a function
    /// from a global type to a local one).
    Malformed,
}

impl TypeClass {
    /// `true` when the type belongs to one of the paper's grammars.
    #[must_use]
    pub fn is_well_formed(self) -> bool {
        self != TypeClass::Malformed
    }
}

/// Classifies a simple type into the paper's L/V/G partition.
///
/// The §6 extensions follow the same pattern as pairs (sums) and as a
/// unary constructor whose element must stay par-free (lists).
///
/// # Example
///
/// ```
/// use bsml_types::{classify::classify, Type, TypeClass};
///
/// assert_eq!(classify(&Type::Int), TypeClass::Local);
/// assert_eq!(classify(&Type::var(0)), TypeClass::Variable);
/// assert_eq!(classify(&Type::par(Type::Int)), TypeClass::Global);
/// assert_eq!(
///     classify(&Type::par(Type::par(Type::Int))),
///     TypeClass::Malformed
/// );
/// ```
#[must_use]
pub fn classify(ty: &Type) -> TypeClass {
    use TypeClass::*;
    match ty {
        Type::Int | Type::Bool | Type::Unit => Local,
        Type::Var(_) => Variable,
        Type::Par(inner) => match classify(inner) {
            Local | Variable => Global,
            Global | Malformed => Malformed,
        },
        Type::Arrow(a, b) => match (classify(a), classify(b)) {
            (Malformed, _) | (_, Malformed) => Malformed,
            // τ̇ → τ̇
            (Local, Local) => Local,
            // τ̌ → τ̇ is local; τ̇ → τ̌ and τ̌ → τ̌ are variable.
            (Variable, Local) => Local,
            (Local, Variable) | (Variable, Variable) => Variable,
            // Global results: τ̇ → τ̄, τ̌ → τ̄, τ̄ → τ̄.
            (Local | Variable | Global, Global) => Global,
            // τ̄ → τ̇ / τ̄ → τ̌: a function consuming a parallel vector
            // but producing a usual value — not in the grammar.
            (Global, Local | Variable) => Malformed,
        },
        Type::Pair(a, b) | Type::Sum(a, b) => match (classify(a), classify(b)) {
            (Malformed, _) | (_, Malformed) => Malformed,
            (Local, Local) => Local,
            (Variable, Local) | (Local, Variable) | (Variable, Variable) => Variable,
            // Every mixed pair with a global side is global.
            _ => Global,
        },
        Type::List(inner) => match classify(inner) {
            Local => Local,
            Variable => Variable,
            // A list of parallel vectors has statically unknown width:
            // outside the grammar for the same reason as nested par.
            Global | Malformed => Malformed,
        },
        // References follow lists: cells must hold local values.
        Type::Ref(inner) => match classify(inner) {
            Local => Local,
            Variable => Variable,
            Global | Malformed => Malformed,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_types_are_local() {
        assert_eq!(classify(&Type::Int), TypeClass::Local);
        assert_eq!(classify(&Type::Bool), TypeClass::Local);
        assert_eq!(classify(&Type::Unit), TypeClass::Local);
    }

    #[test]
    fn grammar_examples_from_the_paper() {
        // τ̌ → τ̇ is a *local* type in the paper's grammar.
        assert_eq!(
            classify(&Type::arrow(Type::var(0), Type::Int)),
            TypeClass::Local
        );
        // (α par) → int: Global → Local is not in any grammar.
        assert_eq!(
            classify(&Type::arrow(Type::par(Type::var(0)), Type::Int)),
            TypeClass::Malformed
        );
        // (int par): global.
        assert_eq!(classify(&Type::par(Type::Int)), TypeClass::Global);
        // (α par): global (variable under par allowed by τ̌ par).
        assert_eq!(classify(&Type::par(Type::var(0))), TypeClass::Global);
    }

    #[test]
    fn instantiating_alpha_par_with_par_is_malformed() {
        // The paper's own example: (α par) at α = int par.
        assert_eq!(
            classify(&Type::par(Type::par(Type::Int))),
            TypeClass::Malformed
        );
    }

    #[test]
    fn pairs() {
        assert_eq!(
            classify(&Type::pair(Type::Int, Type::par(Type::Int))),
            TypeClass::Global
        );
        assert_eq!(
            classify(&Type::pair(Type::var(0), Type::var(1))),
            TypeClass::Variable
        );
        assert_eq!(
            classify(&Type::pair(Type::par(Type::par(Type::Int)), Type::Int)),
            TypeClass::Malformed
        );
    }

    #[test]
    fn arrows_returning_global_are_global() {
        // int → (int par): the type of bcast partially applied.
        assert_eq!(
            classify(&Type::arrow(Type::Int, Type::par(Type::Int))),
            TypeClass::Global
        );
        // (int par) → (int par): global → global.
        assert_eq!(
            classify(&Type::arrow(Type::par(Type::Int), Type::par(Type::Int))),
            TypeClass::Global
        );
    }

    #[test]
    fn lists() {
        assert_eq!(classify(&Type::list(Type::Int)), TypeClass::Local);
        assert_eq!(classify(&Type::list(Type::var(0))), TypeClass::Variable);
        assert_eq!(
            classify(&Type::list(Type::par(Type::Int))),
            TypeClass::Malformed
        );
    }

    #[test]
    fn partition_is_disjoint() {
        // L ∩ G = ∅ and V ∩ G = ∅ hold trivially since classify is a
        // function; spot-check that representative types land in
        // exactly one class.
        let samples = [
            Type::Int,
            Type::var(0),
            Type::par(Type::Int),
            Type::arrow(Type::var(0), Type::var(1)),
            Type::pair(Type::Int, Type::par(Type::Bool)),
        ];
        for t in &samples {
            let c = classify(t);
            assert!(c.is_well_formed(), "{t} should be well-formed");
        }
    }

    #[test]
    fn malformed_is_not_well_formed() {
        assert!(!TypeClass::Malformed.is_well_formed());
        assert!(TypeClass::Global.is_well_formed());
    }
}
