//! Constrained type schemes `σ ::= ∀α₁…αₙ.[τ/C]` (paper §4), with
//! substitution (Definition 1), instantiation (Definition 2) and
//! generalization (Definition 3).

use std::fmt;

use crate::constraint::Constraint;
use crate::subst::Subst;
use crate::ty::{TyVar, TyVarGen, Type};

/// A type scheme with constraints: `∀α₁…αₙ.[τ/C]`.
///
/// # Example
///
/// ```
/// use bsml_types::{Constraint, Scheme, Type, TyVar, TyVarGen};
///
/// // fst : ∀αβ.[(α*β) → α / L(α) ⇒ L(β)]
/// let fst = Scheme::new(
///     vec![TyVar(0), TyVar(1)],
///     Type::arrow(Type::pair(Type::var(0), Type::var(1)), Type::var(0)),
///     Constraint::implies(
///         Constraint::loc(Type::var(0)),
///         Constraint::loc(Type::var(1)),
///     ),
/// );
/// assert_eq!(fst.to_string(), "∀'a 'b.['a * 'b -> 'a / L('a) ⇒ L('b)]");
///
/// let mut gen = TyVarGen::starting_at(100);
/// let (ty, c) = fst.instantiate(&mut gen);
/// assert!(ty.free_vars().iter().all(|v| v.0 >= 100));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scheme {
    /// The universally quantified variables `α₁…αₙ`.
    vars: Vec<TyVar>,
    /// The simple type `τ`.
    ty: Type,
    /// The constraint `C`.
    constraint: Constraint,
}

impl Scheme {
    /// Builds `∀vars.[ty/constraint]`.
    #[must_use]
    pub fn new(vars: Vec<TyVar>, ty: Type, constraint: Constraint) -> Scheme {
        Scheme {
            vars,
            ty,
            constraint,
        }
    }

    /// A monomorphic, unconstrained scheme `[τ/True]`.
    #[must_use]
    pub fn mono(ty: Type) -> Scheme {
        Scheme::new(Vec::new(), ty, Constraint::True)
    }

    /// Quantifies *all* free variables of the type and constraint.
    /// Convenient for writing the initial environment `TC`.
    #[must_use]
    pub fn close(ty: Type, constraint: Constraint) -> Scheme {
        let mut vars = ty.free_vars();
        constraint.collect_free_vars(&mut vars);
        Scheme::new(vars, ty, constraint)
    }

    /// **Definition 3**: generalizes `[τ/C]` in an environment whose
    /// free variables are `env_free`, quantifying
    /// `F(τ) \ F(E)`.
    #[must_use]
    pub fn generalize(ty: Type, constraint: Constraint, env_free: &[TyVar]) -> Scheme {
        let vars: Vec<TyVar> = ty
            .free_vars()
            .into_iter()
            .filter(|v| !env_free.contains(v))
            .collect();
        Scheme::new(vars, ty, constraint)
    }

    /// The quantified variables.
    #[must_use]
    pub fn quantified(&self) -> &[TyVar] {
        &self.vars
    }

    /// The underlying simple type (with quantified variables visible).
    #[must_use]
    pub fn ty(&self) -> &Type {
        &self.ty
    }

    /// The attached constraint.
    #[must_use]
    pub fn constraint(&self) -> &Constraint {
        &self.constraint
    }

    /// Every variable mentioned by the scheme, quantified or free.
    /// Fresh-variable supplies must be advanced past these so that
    /// quantified variables stay "out of reach" of substitutions
    /// (Definition 1's side condition).
    #[must_use]
    pub fn all_vars(&self) -> Vec<TyVar> {
        let mut all = self.ty.free_vars();
        self.constraint.collect_free_vars(&mut all);
        for v in &self.vars {
            if !all.contains(v) {
                all.push(*v);
            }
        }
        all
    }

    /// The free variables
    /// `F(σ) = (F(τ) ∪ F(C)) \ {α₁…αₙ}`.
    #[must_use]
    pub fn free_vars(&self) -> Vec<TyVar> {
        let mut all = self.ty.free_vars();
        self.constraint.collect_free_vars(&mut all);
        all.retain(|v| !self.vars.contains(v));
        all
    }

    /// **Definition 2** (instance by fresh renaming): replaces every
    /// quantified variable with a fresh one from `gen`, returning the
    /// renamed type and constraint.
    ///
    /// Because `gen` never re-issues a variable, the quantified
    /// variables are automatically "out of reach" of any substitution
    /// built later, as Definition 1 requires.
    #[must_use]
    pub fn instantiate(&self, gen: &mut TyVarGen) -> (Type, Constraint) {
        if self.vars.is_empty() {
            return (self.ty.clone(), self.constraint.clone());
        }
        let renaming = Subst::from_pairs(self.vars.iter().map(|v| (*v, gen.fresh_ty())));
        // A pure renaming: the images are fresh variables, whose basic
        // constraints are True, so plain structural application
        // coincides with Definition 1 here.
        (
            renaming.apply(&self.ty),
            renaming.apply_constraint(&self.constraint),
        )
    }

    /// Renames the quantified variables to the canonical sequence
    /// `'a, 'b, …` in order of first appearance (type first, then
    /// constraint), so α-equivalent schemes display identically.
    ///
    /// Only fully closed schemes are renamed; a scheme with free
    /// variables is returned unchanged (renaming could capture them).
    #[must_use]
    pub fn normalize(&self) -> Scheme {
        if !self.free_vars().is_empty() || self.vars.is_empty() {
            return self.clone();
        }
        let mut order = self.ty.free_vars();
        self.constraint.collect_free_vars(&mut order);
        order.retain(|v| self.vars.contains(v));
        // Two-phase rename to avoid clashes with the target names.
        let hi_base = order
            .iter()
            .chain(self.vars.iter())
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(0);
        let up = Subst::from_pairs(
            order
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, Type::Var(TyVar(hi_base + i as u32)))),
        );
        let down = Subst::from_pairs(
            (0..order.len() as u32).map(|i| (TyVar(hi_base + i), Type::Var(TyVar(i)))),
        );
        let ty = down.apply(&up.apply(&self.ty));
        let constraint = down.apply_constraint(&up.apply_constraint(&self.constraint));
        let vars = (0..order.len() as u32).map(TyVar).collect();
        Scheme::new(vars, ty, constraint)
    }

    /// **Definition 1**: applies a substitution to the scheme. The
    /// quantified variables must be out of reach of `phi` (guaranteed
    /// when all schemes and substitutions draw from one [`TyVarGen`]).
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if `phi` binds or introduces a
    /// quantified variable.
    #[must_use]
    pub fn apply_subst(&self, phi: &Subst) -> Scheme {
        debug_assert!(
            self.vars.iter().all(|v| {
                phi.get(*v).is_none()
                    && phi
                        .domain()
                        .all(|d| phi.get(d).is_none_or(|img| !img.occurs(*v)))
            }),
            "substitution reaches quantified variables of {self}"
        );
        let (ty, constraint) = phi.apply_constrained(&self.ty, &self.constraint);
        Scheme::new(self.vars.clone(), ty, constraint)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.vars.is_empty() {
            f.write_str("∀")?;
            for (i, v) in self.vars.iter().enumerate() {
                if i > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "{v}")?;
            }
            f.write_str(".")?;
        }
        if self.constraint == Constraint::True {
            if self.vars.is_empty() {
                write!(f, "{}", self.ty)
            } else {
                write!(f, "[{}]", self.ty)
            }
        } else {
            write!(f, "[{} / {}]", self.ty, self.constraint)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Solution;

    fn fst_scheme() -> Scheme {
        Scheme::new(
            vec![TyVar(0), TyVar(1)],
            Type::arrow(Type::pair(Type::var(0), Type::var(1)), Type::var(0)),
            Constraint::implies(Constraint::loc(Type::var(0)), Constraint::loc(Type::var(1))),
        )
    }

    #[test]
    fn mono_has_no_quantifiers() {
        let s = Scheme::mono(Type::Int);
        assert!(s.quantified().is_empty());
        assert_eq!(s.to_string(), "int");
    }

    #[test]
    fn close_quantifies_constraint_vars_too() {
        // A constraint-only variable must be captured.
        let s = Scheme::close(
            Type::var(0),
            Constraint::implies(Constraint::loc(Type::var(1)), Constraint::loc(Type::var(0))),
        );
        assert_eq!(s.quantified(), &[TyVar(0), TyVar(1)]);
        assert!(s.free_vars().is_empty());
    }

    #[test]
    fn generalize_respects_env() {
        let ty = Type::arrow(Type::var(0), Type::var(1));
        let s = Scheme::generalize(ty, Constraint::True, &[TyVar(1)]);
        assert_eq!(s.quantified(), &[TyVar(0)]);
        assert_eq!(s.free_vars(), vec![TyVar(1)]);
    }

    #[test]
    fn instantiate_renames_freshly() {
        let s = fst_scheme();
        let mut gen = TyVarGen::starting_at(50);
        let (t1, c1) = s.instantiate(&mut gen);
        let (t2, _) = s.instantiate(&mut gen);
        assert_ne!(t1, t2, "each instantiation must be fresh");
        assert!(t1.free_vars().iter().all(|v| v.0 >= 50));
        // The constraint is renamed consistently with the type.
        let tvs = t1.free_vars();
        let cvs = c1.free_vars();
        assert!(cvs.iter().all(|v| tvs.contains(v)));
    }

    #[test]
    fn instantiating_mono_is_identity() {
        let s = Scheme::mono(Type::par(Type::Int));
        let mut gen = TyVarGen::new();
        let (t, c) = s.instantiate(&mut gen);
        assert_eq!(t, Type::par(Type::Int));
        assert_eq!(c, Constraint::True);
    }

    #[test]
    fn definition_1_on_scheme() {
        // Substitute the *free* variable of ∀a.[a * c / L(c)] with a
        // par type: the scheme's constraint must become absurd.
        let s = Scheme::new(
            vec![TyVar(0)],
            Type::pair(Type::var(0), Type::var(2)),
            Constraint::loc(Type::var(2)),
        );
        let phi = Subst::singleton(TyVar(2), Type::par(Type::Int));
        let s2 = s.apply_subst(&phi);
        assert_eq!(s2.constraint().solve(), Solution::False);
        assert_eq!(s2.ty(), &Type::pair(Type::var(0), Type::par(Type::Int)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            fst_scheme().to_string(),
            "∀'a 'b.['a * 'b -> 'a / L('a) ⇒ L('b)]"
        );
        let s = Scheme::new(vec![TyVar(0)], Type::var(0), Constraint::True);
        assert_eq!(s.to_string(), "∀'a.['a]");
    }

    #[test]
    fn free_vars_excludes_quantified() {
        let s = fst_scheme();
        assert!(s.free_vars().is_empty());
    }
}
