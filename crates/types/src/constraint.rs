//! Locality constraints and the `Solve` procedure (paper §4).
//!
//! Constraints are formulas of classical propositional calculus over
//! locality atoms:
//!
//! ```text
//! C ::= True | False | L(τ) | C ∧ C | C ⇒ C
//! ```
//!
//! The paper writes atoms as `L(α)`; we allow `L(τ)` over a whole type
//! and expand with the locality rules
//! (`L(τ par) = False`, `L(τ₁→τ₂) = L(τ₁)∧L(τ₂)`, …) at solving time,
//! so that constraints under substitution keep their readable shape
//! (Figure 10 displays `L(int) ⇒ L(int par)` before reducing it to
//! `False`).
//!
//! [`Constraint::solve`] implements the paper's decidable `Solve`
//! function: after expansion the formulas produced by the type system
//! are *Horn* (implication antecedents are conjunctions of atoms), so
//! solving is unit propagation; the result is [`Solution::True`],
//! [`Solution::False`], or a canonical residual clause set.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::locality::locality;
use crate::ty::{TyVar, Type};

/// A constraint formula `C` (paper §4).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// The valid constraint `True`.
    #[default]
    True,
    /// The absurd constraint `False`.
    False,
    /// A locality assertion `L(τ)`: "τ is a usual (local) type".
    Loc(Type),
    /// Conjunction `C₁ ∧ C₂`.
    And(Box<Constraint>, Box<Constraint>),
    /// Implication `C₁ ⇒ C₂`.
    Implies(Box<Constraint>, Box<Constraint>),
}

impl Constraint {
    /// The locality atom `L(τ)`.
    #[must_use]
    pub fn loc(ty: Type) -> Constraint {
        Constraint::Loc(ty)
    }

    /// Conjunction with the paper's unit laws applied
    /// (`True ∧ C = C`, `C ∧ C = C`, and `False` is absorbing).
    #[must_use]
    pub fn and(a: Constraint, b: Constraint) -> Constraint {
        match (a, b) {
            (Constraint::True, c) | (c, Constraint::True) => c,
            (Constraint::False, _) | (_, Constraint::False) => Constraint::False,
            (a, b) if a == b => a,
            (a, b) => Constraint::And(Box::new(a), Box::new(b)),
        }
    }

    /// Implication with the obvious unit laws applied
    /// (`True ⇒ C = C`, `False ⇒ C = True`, `C ⇒ True = True`,
    /// `C ⇒ C = True`).
    #[must_use]
    pub fn implies(a: Constraint, b: Constraint) -> Constraint {
        match (a, b) {
            (Constraint::True, c) => c,
            (Constraint::False, _) => Constraint::True,
            (_, Constraint::True) => Constraint::True,
            (a, b) if a == b => Constraint::True,
            (a, b) => Constraint::Implies(Box::new(a), Box::new(b)),
        }
    }

    /// Conjunction of an arbitrary number of constraints.
    #[must_use]
    pub fn conj(cs: impl IntoIterator<Item = Constraint>) -> Constraint {
        cs.into_iter().fold(Constraint::True, Constraint::and)
    }

    /// Free type variables of the constraint, in first-occurrence
    /// order.
    #[must_use]
    pub fn free_vars(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        self.collect_free_vars(&mut out);
        out
    }

    pub(crate) fn collect_free_vars(&self, out: &mut Vec<TyVar>) {
        match self {
            Constraint::True | Constraint::False => {}
            Constraint::Loc(t) => t.collect_free_vars(out),
            Constraint::And(a, b) | Constraint::Implies(a, b) => {
                a.collect_free_vars(out);
                b.collect_free_vars(out);
            }
        }
    }

    /// Expands every `L(τ)` atom with the locality rules until atoms
    /// mention type variables only.
    #[must_use]
    pub fn expand(&self) -> Constraint {
        match self {
            Constraint::True => Constraint::True,
            Constraint::False => Constraint::False,
            Constraint::Loc(t) => locality(t),
            Constraint::And(a, b) => Constraint::and(a.expand(), b.expand()),
            Constraint::Implies(a, b) => Constraint::implies(a.expand(), b.expand()),
        }
    }

    /// The paper's `Solve`: reduces the constraint and reports whether
    /// it is valid (`True`), absurd (`False`), or contingent on its
    /// remaining variables ([`Solution::Residual`]).
    ///
    /// The formulas produced by the BSML typing rules are Horn after
    /// expansion; those are solved exactly. Arbitrary hand-built
    /// formulas with implications *inside antecedents of implications*
    /// are solved by brute force when they mention at most 22
    /// variables, and conservatively reported as residual otherwise.
    #[must_use]
    pub fn solve(&self) -> Solution {
        let mut iterations = 0;
        self.solve_counted(&mut iterations)
    }

    /// [`Constraint::solve`], adding the number of solver iterations
    /// (unit-propagation rounds, plus truth assignments tried by the
    /// non-Horn fallback) to `iterations`. Feeds the telemetry
    /// counters in `bsml-infer`.
    #[must_use]
    pub fn solve_counted(&self, iterations: &mut u64) -> Solution {
        let expanded = self.expand();
        let mut clauses = Vec::new();
        match to_clauses(&expanded, &BTreeSet::new(), &mut clauses) {
            Ok(()) => propagate(clauses, iterations),
            Err(NonHorn) => brute_force(&expanded, iterations),
        }
    }

    /// `true` iff `solve()` returns [`Solution::False`].
    #[must_use]
    pub fn is_absurd(&self) -> bool {
        self.solve() == Solution::False
    }

    /// Evaluates the constraint under a complete truth assignment for
    /// its variables (`L(α) = assignment[α]`).
    ///
    /// Returns `None` if a variable is missing from the assignment.
    /// This is the semantic ground truth used to property-test
    /// [`Constraint::solve`], and the basis of the paper's
    /// Definition 4 (`φ ⊨ C`).
    #[must_use]
    pub fn eval(&self, assignment: &BTreeMap<TyVar, bool>) -> Option<bool> {
        match self {
            Constraint::True => Some(true),
            Constraint::False => Some(false),
            Constraint::Loc(t) => eval_loc(t, assignment),
            Constraint::And(a, b) => Some(a.eval(assignment)? && b.eval(assignment)?),
            Constraint::Implies(a, b) => Some(!a.eval(assignment)? || b.eval(assignment)?),
        }
    }
}

/// `L(τ)` under an assignment of the variables.
fn eval_loc(t: &Type, assignment: &BTreeMap<TyVar, bool>) -> Option<bool> {
    match t {
        Type::Int | Type::Bool | Type::Unit => Some(true),
        Type::Var(v) => assignment.get(v).copied(),
        Type::Par(_) => Some(false),
        Type::Arrow(a, b) | Type::Pair(a, b) | Type::Sum(a, b) => {
            Some(eval_loc(a, assignment)? && eval_loc(b, assignment)?)
        }
        Type::List(inner) | Type::Ref(inner) => eval_loc(inner, assignment),
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: ⇒ (0, right assoc) < ∧ (1) < atoms (2).
        fn go(f: &mut fmt::Formatter<'_>, c: &Constraint, prec: u8) -> fmt::Result {
            match c {
                Constraint::True => f.write_str("True"),
                Constraint::False => f.write_str("False"),
                Constraint::Loc(t) => write!(f, "L({t})"),
                Constraint::And(a, b) => {
                    if prec > 1 {
                        f.write_str("(")?;
                    }
                    go(f, a, 1)?;
                    f.write_str(" ∧ ")?;
                    go(f, b, 2)?;
                    if prec > 1 {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
                Constraint::Implies(a, b) => {
                    if prec > 0 {
                        f.write_str("(")?;
                    }
                    go(f, a, 1)?;
                    f.write_str(" ⇒ ")?;
                    go(f, b, 0)?;
                    if prec > 0 {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
            }
        }
        go(f, self, 0)
    }
}

/// The head of a Horn clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Head {
    /// The clause asserts this locality atom.
    Atom(TyVar),
    /// The clause's body is contradictory (`… ⇒ False`).
    Absurd,
}

/// A Horn clause `L(α₁) ∧ … ∧ L(αₙ) ⇒ head`.
///
/// An empty body means the head holds unconditionally (a *fact*).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clause {
    /// The conjunction of atoms on the left of `⇒`.
    pub body: BTreeSet<TyVar>,
    /// The conclusion.
    pub head: Head,
}

impl Clause {
    /// An unconditional atom `L(v)`.
    #[must_use]
    pub fn fact(v: TyVar) -> Clause {
        Clause {
            body: BTreeSet::new(),
            head: Head::Atom(v),
        }
    }

    /// A conditional clause `L(body…) ⇒ head`.
    #[must_use]
    pub fn rule(body: impl IntoIterator<Item = TyVar>, head: Head) -> Clause {
        Clause {
            body: body.into_iter().collect(),
            head,
        }
    }

    /// Converts the clause back to a [`Constraint`] formula.
    #[must_use]
    pub fn to_constraint(&self) -> Constraint {
        let body = Constraint::conj(self.body.iter().map(|v| Constraint::loc(Type::Var(*v))));
        let head = match self.head {
            Head::Atom(v) => Constraint::loc(Type::Var(v)),
            Head::Absurd => Constraint::False,
        };
        Constraint::implies(body, head)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.body.is_empty() {
            for (i, v) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(" ∧ ")?;
                }
                write!(f, "L({v})")?;
            }
            f.write_str(" ⇒ ")?;
        }
        match self.head {
            Head::Atom(v) => write!(f, "L({v})"),
            Head::Absurd => f.write_str("False"),
        }
    }
}

/// The outcome of [`Constraint::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Solution {
    /// The constraint is valid: every instantiation satisfies it.
    True,
    /// The constraint is absurd: the expression must be rejected.
    False,
    /// The constraint is contingent: the canonical set of remaining
    /// Horn clauses, sorted and deduplicated.
    Residual(Vec<Clause>),
}

impl Solution {
    /// Converts the solution back to a constraint formula.
    #[must_use]
    pub fn to_constraint(&self) -> Constraint {
        match self {
            Solution::True => Constraint::True,
            Solution::False => Constraint::False,
            Solution::Residual(clauses) => {
                Constraint::conj(clauses.iter().map(Clause::to_constraint))
            }
        }
    }

    /// Restricts a residual to the clauses *relevant* to the given
    /// variables: the connected component (by shared variables) of
    /// the keep-set. The dropped clauses form a variable-disjoint,
    /// independently satisfiable Horn set, so the restriction is
    /// equivalent to the original with the dropped variables
    /// (harmlessly) existentially forgotten — used when presenting
    /// toplevel schemes, where constraints over out-of-scope
    /// instantiation variables are noise.
    #[must_use]
    pub fn restrict(&self, keep: &[TyVar]) -> Solution {
        let Solution::Residual(clauses) = self else {
            return self.clone();
        };
        // Grow the keep-set to its closure under clause co-occurrence.
        let mut kept: Vec<TyVar> = keep.to_vec();
        let mut retained = vec![false; clauses.len()];
        loop {
            let mut changed = false;
            for (i, clause) in clauses.iter().enumerate() {
                if retained[i] {
                    continue;
                }
                let vars: Vec<TyVar> = clause
                    .body
                    .iter()
                    .copied()
                    .chain(match clause.head {
                        Head::Atom(v) => Some(v),
                        Head::Absurd => None,
                    })
                    .collect();
                if vars.iter().any(|v| kept.contains(v)) {
                    retained[i] = true;
                    changed = true;
                    for v in vars {
                        if !kept.contains(&v) {
                            kept.push(v);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let remaining: Vec<Clause> = clauses
            .iter()
            .zip(&retained)
            .filter(|(_, keep)| **keep)
            .map(|(c, _)| c.clone())
            .collect();
        if remaining.is_empty() {
            Solution::True
        } else {
            Solution::Residual(remaining)
        }
    }

    /// The residual clauses (empty for `True`).
    ///
    /// # Panics
    ///
    /// Panics if the solution is [`Solution::False`], which has no
    /// clause representation.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        match self {
            Solution::True => &[],
            Solution::Residual(cs) => cs,
            Solution::False => panic!("an absurd constraint has no residual clauses"),
        }
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Solution::True => f.write_str("True"),
            Solution::False => f.write_str("False"),
            Solution::Residual(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∧ ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
        }
    }
}

/// Marker error: the formula has an implication inside an implication
/// antecedent, which leaves the Horn fragment.
struct NonHorn;

/// Flattens `c` (already locality-expanded) into Horn clauses, with
/// `body` the atoms of the enclosing antecedents.
fn to_clauses(
    c: &Constraint,
    body: &BTreeSet<TyVar>,
    out: &mut Vec<Clause>,
) -> Result<(), NonHorn> {
    match c {
        Constraint::True => Ok(()),
        Constraint::False => {
            out.push(Clause {
                body: body.clone(),
                head: Head::Absurd,
            });
            Ok(())
        }
        Constraint::Loc(t) => match t {
            Type::Var(v) => {
                out.push(Clause {
                    body: body.clone(),
                    head: Head::Atom(*v),
                });
                Ok(())
            }
            // `expand` left only variable atoms; anything else would
            // be a caller error.
            _ => unreachable!("solve expands locality atoms before clausification"),
        },
        Constraint::And(a, b) => {
            to_clauses(a, body, out)?;
            to_clauses(b, body, out)
        }
        Constraint::Implies(a, b) => {
            let mut antecedent = body.clone();
            match antecedent_atoms(a, &mut antecedent) {
                AnteResult::Ok => to_clauses(b, &antecedent, out),
                // False somewhere in the antecedent: trivially true.
                AnteResult::AbsurdAntecedent => Ok(()),
                AnteResult::NonHorn => Err(NonHorn),
            }
        }
    }
}

enum AnteResult {
    Ok,
    AbsurdAntecedent,
    NonHorn,
}

/// Collects the atoms of an implication antecedent (a conjunction of
/// atoms and constants in the Horn fragment).
fn antecedent_atoms(c: &Constraint, out: &mut BTreeSet<TyVar>) -> AnteResult {
    match c {
        Constraint::True => AnteResult::Ok,
        Constraint::False => AnteResult::AbsurdAntecedent,
        Constraint::Loc(Type::Var(v)) => {
            out.insert(*v);
            AnteResult::Ok
        }
        Constraint::Loc(_) => unreachable!("solve expands locality atoms before clausification"),
        Constraint::And(a, b) => match antecedent_atoms(a, out) {
            AnteResult::Ok => antecedent_atoms(b, out),
            other => other,
        },
        Constraint::Implies(..) => AnteResult::NonHorn,
    }
}

/// Unit propagation on a Horn clause set. Each round over the clause
/// set counts as one iteration.
fn propagate(clauses: Vec<Clause>, iterations: &mut u64) -> Solution {
    let mut facts: BTreeSet<TyVar> = BTreeSet::new();
    let mut pending: Vec<Clause> = clauses;

    loop {
        *iterations += 1;
        let mut changed = false;
        let mut next: Vec<Clause> = Vec::with_capacity(pending.len());
        for mut clause in pending {
            // Atoms already proven can be removed from the body.
            let before = clause.body.len();
            clause.body.retain(|v| !facts.contains(v));
            if clause.body.len() != before {
                changed = true;
            }
            match clause.head {
                Head::Atom(v) if facts.contains(&v) => {
                    // Head already proven: clause is satisfied.
                    changed = true;
                }
                Head::Atom(v) if clause.body.is_empty() => {
                    facts.insert(v);
                    changed = true;
                }
                Head::Atom(v) if clause.body.contains(&v) => {
                    // Tautology L(…, v, …) ⇒ L(v).
                    changed = true;
                }
                Head::Absurd if clause.body.is_empty() => return Solution::False,
                _ => next.push(clause),
            }
        }
        pending = next;
        if !changed {
            break;
        }
    }

    let mut residual: BTreeSet<Clause> = pending.into_iter().collect();
    for v in facts {
        residual.insert(Clause::fact(v));
    }
    // Subsumption: drop a clause if another clause with the same head
    // has a subset body.
    let all: Vec<Clause> = residual.iter().cloned().collect();
    let survives = |c: &Clause| {
        !all.iter()
            .any(|other| other != c && other.head == c.head && other.body.is_subset(&c.body))
    };
    let reduced: Vec<Clause> = all.iter().filter(|c| survives(c)).cloned().collect();

    if reduced.is_empty() {
        Solution::True
    } else {
        Solution::Residual(reduced)
    }
}

/// Brute-force fallback for the (never produced by inference)
/// non-Horn formulas. Exact for up to 22 variables; above that the
/// formula is reported residual via a single conservative clause
/// carrying all its variables.
fn brute_force(c: &Constraint, iterations: &mut u64) -> Solution {
    let vars = c.free_vars();
    if vars.len() > 22 {
        // Conservative: keep the formula contingent. (Documented as
        // best-effort outside the Horn fragment.)
        return Solution::Residual(vec![Clause::rule(vars, Head::Absurd)]);
    }
    let n = vars.len();
    let mut any_true = false;
    let mut any_false = false;
    let mut assignment = BTreeMap::new();
    for bits in 0u64..(1u64 << n) {
        *iterations += 1;
        assignment.clear();
        for (i, v) in vars.iter().enumerate() {
            assignment.insert(*v, bits >> i & 1 == 1);
        }
        match c.eval(&assignment) {
            Some(true) => any_true = true,
            Some(false) => any_false = true,
            None => unreachable!("assignment covers all free variables"),
        }
        if any_true && any_false {
            break;
        }
    }
    match (any_true, any_false) {
        (true, false) => Solution::True,
        (false, _) => Solution::False,
        (true, true) => {
            // Contingent non-Horn formula: extract the entailed facts
            // and single-premise implications (best effort).
            let mut clauses = Vec::new();
            for v in &vars {
                if entails(c, &vars, &[(*v, false)]) == Some(false) {
                    clauses.push(Clause::fact(*v));
                }
            }
            for a in &vars {
                for b in &vars {
                    if a != b && !models_with(c, &vars, &[(*a, true), (*b, false)]) {
                        clauses.push(Clause::rule([*a], Head::Atom(*b)));
                    }
                }
            }
            if clauses.is_empty() {
                clauses.push(Clause::rule(vars, Head::Absurd));
            }
            propagate(clauses, iterations)
        }
    }
}

/// `Some(false)` when no model of `c` satisfies the given partial
/// assignment (so its negation is entailed).
fn entails(c: &Constraint, vars: &[TyVar], fixed: &[(TyVar, bool)]) -> Option<bool> {
    if models_with(c, vars, fixed) {
        None
    } else {
        Some(false)
    }
}

/// `true` if `c` has a model extending the partial assignment.
fn models_with(c: &Constraint, vars: &[TyVar], fixed: &[(TyVar, bool)]) -> bool {
    let free: Vec<TyVar> = vars
        .iter()
        .copied()
        .filter(|v| !fixed.iter().any(|(w, _)| w == v))
        .collect();
    let n = free.len();
    let mut assignment: BTreeMap<TyVar, bool> = fixed.iter().copied().collect();
    for bits in 0u64..(1u64 << n) {
        for (i, v) in free.iter().enumerate() {
            assignment.insert(*v, bits >> i & 1 == 1);
        }
        if c.eval(&assignment) == Some(true) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Type {
        Type::var(0)
    }
    fn b() -> Type {
        Type::var(1)
    }

    #[test]
    fn smart_constructors_apply_unit_laws() {
        let l = Constraint::loc(a());
        assert_eq!(Constraint::and(Constraint::True, l.clone()), l);
        assert_eq!(Constraint::and(l.clone(), l.clone()), l);
        assert_eq!(
            Constraint::and(Constraint::False, l.clone()),
            Constraint::False
        );
        assert_eq!(Constraint::implies(Constraint::True, l.clone()), l);
        assert_eq!(
            Constraint::implies(Constraint::False, l.clone()),
            Constraint::True
        );
        assert_eq!(
            Constraint::implies(l.clone(), Constraint::True),
            Constraint::True
        );
        assert_eq!(Constraint::implies(l.clone(), l), Constraint::True);
    }

    #[test]
    fn solve_constants() {
        assert_eq!(Constraint::True.solve(), Solution::True);
        assert_eq!(Constraint::False.solve(), Solution::False);
    }

    #[test]
    fn solve_ground_localities() {
        assert_eq!(Constraint::loc(Type::Int).solve(), Solution::True);
        assert_eq!(
            Constraint::loc(Type::par(Type::Int)).solve(),
            Solution::False
        );
        assert_eq!(
            Constraint::loc(Type::arrow(Type::Int, Type::Bool)).solve(),
            Solution::True
        );
        assert_eq!(
            Constraint::loc(Type::pair(Type::Int, Type::par(Type::Bool))).solve(),
            Solution::False
        );
    }

    #[test]
    fn the_figure_10_constraint_is_absurd() {
        // L(int) ⇒ L(int par)  — the fourth projection example.
        let c = Constraint::Implies(
            Box::new(Constraint::loc(Type::Int)),
            Box::new(Constraint::loc(Type::par(Type::Int))),
        );
        assert_eq!(c.to_string(), "L(int) ⇒ L(int par)");
        assert_eq!(c.solve(), Solution::False);
        assert!(c.is_absurd());
    }

    #[test]
    fn the_figure_9_constraint_is_fine() {
        // L(int par) ⇒ L(int) — the accepted third projection.
        let c = Constraint::Implies(
            Box::new(Constraint::loc(Type::par(Type::Int))),
            Box::new(Constraint::loc(Type::Int)),
        );
        assert_eq!(c.solve(), Solution::True);
    }

    #[test]
    fn residual_atom() {
        let c = Constraint::loc(a());
        match c.solve() {
            Solution::Residual(cs) => {
                assert_eq!(cs, vec![Clause::fact(TyVar(0))]);
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn parallel_identity_constraint_stays_residual() {
        // L(α) ⇒ False — contingent; α simply may not be local.
        let c = Constraint::Implies(Box::new(Constraint::loc(a())), Box::new(Constraint::False));
        match c.solve() {
            Solution::Residual(cs) => {
                assert_eq!(cs, vec![Clause::rule([TyVar(0)], Head::Absurd)]);
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn propagation_derives_absurdity() {
        // L(α) ∧ (L(α) ⇒ False) = False.
        let c = Constraint::and(
            Constraint::loc(a()),
            Constraint::Implies(Box::new(Constraint::loc(a())), Box::new(Constraint::False)),
        );
        assert_eq!(c.solve(), Solution::False);
    }

    #[test]
    fn propagation_chains_facts() {
        // L(α) ∧ (L(α) ⇒ L(β)) — both become facts.
        let c = Constraint::and(
            Constraint::loc(a()),
            Constraint::Implies(
                Box::new(Constraint::loc(a())),
                Box::new(Constraint::loc(b())),
            ),
        );
        match c.solve() {
            Solution::Residual(cs) => {
                assert_eq!(cs, vec![Clause::fact(TyVar(0)), Clause::fact(TyVar(1))]);
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn expansion_in_antecedent() {
        // L(α * β) ⇒ False  becomes  L(α) ∧ L(β) ⇒ False.
        let c = Constraint::Implies(
            Box::new(Constraint::loc(Type::pair(a(), b()))),
            Box::new(Constraint::False),
        );
        match c.solve() {
            Solution::Residual(cs) => {
                assert_eq!(cs, vec![Clause::rule([TyVar(0), TyVar(1)], Head::Absurd)]);
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn par_in_antecedent_trivializes() {
        // L(α par) ⇒ L(β)  =  False ⇒ …  =  True.
        let c = Constraint::Implies(
            Box::new(Constraint::loc(Type::par(a()))),
            Box::new(Constraint::loc(b())),
        );
        assert_eq!(c.solve(), Solution::True);
    }

    #[test]
    fn tautologies_are_dropped() {
        // L(α) ⇒ L(α) = True even when built without smart ctor.
        let c = Constraint::Implies(
            Box::new(Constraint::loc(a())),
            Box::new(Constraint::loc(a())),
        );
        assert_eq!(c.solve(), Solution::True);
    }

    #[test]
    fn subsumption_removes_weaker_clauses() {
        // (L(α) ⇒ L(β)) ∧ (L(α) ∧ L(γ) ⇒ L(β)): second is subsumed.
        let g = Type::var(2);
        let c = Constraint::and(
            Constraint::Implies(
                Box::new(Constraint::loc(a())),
                Box::new(Constraint::loc(b())),
            ),
            Constraint::Implies(
                Box::new(Constraint::and(Constraint::loc(a()), Constraint::loc(g))),
                Box::new(Constraint::loc(b())),
            ),
        );
        match c.solve() {
            Solution::Residual(cs) => {
                assert_eq!(cs, vec![Clause::rule([TyVar(0)], Head::Atom(TyVar(1)))]);
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn non_horn_brute_force() {
        // (L(α) ⇒ False) ⇒ False — classically equivalent to L(α).
        let inner =
            Constraint::Implies(Box::new(Constraint::loc(a())), Box::new(Constraint::False));
        let c = Constraint::Implies(Box::new(inner), Box::new(Constraint::False));
        match c.solve() {
            Solution::Residual(cs) => {
                assert_eq!(cs, vec![Clause::fact(TyVar(0))]);
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn non_horn_valid_and_absurd() {
        // ((False ⇒ False) ⇒ True) is valid.
        let c = Constraint::Implies(
            Box::new(Constraint::Implies(
                Box::new(Constraint::False),
                Box::new(Constraint::False),
            )),
            Box::new(Constraint::True),
        );
        assert_eq!(c.solve(), Solution::True);
        // ((L(α) ⇒ L(α)) ⇒ False) is absurd (antecedent is valid).
        let c = Constraint::Implies(
            Box::new(Constraint::Implies(
                Box::new(Constraint::loc(a())),
                Box::new(Constraint::loc(a())),
            )),
            Box::new(Constraint::False),
        );
        assert_eq!(c.solve(), Solution::False);
    }

    #[test]
    fn eval_ground_truth() {
        let mut asg = BTreeMap::new();
        asg.insert(TyVar(0), true);
        asg.insert(TyVar(1), false);
        let c = Constraint::Implies(
            Box::new(Constraint::loc(a())),
            Box::new(Constraint::loc(b())),
        );
        assert_eq!(c.eval(&asg), Some(false));
        asg.insert(TyVar(0), false);
        assert_eq!(c.eval(&asg), Some(true));
        assert_eq!(Constraint::loc(Type::var(9)).eval(&asg), None);
    }

    #[test]
    fn display_forms() {
        let c = Constraint::and(
            Constraint::loc(a()),
            Constraint::Implies(Box::new(Constraint::loc(b())), Box::new(Constraint::False)),
        );
        assert_eq!(c.to_string(), "L('a) ∧ (L('b) ⇒ False)");
        assert_eq!(
            Clause::rule([TyVar(0), TyVar(1)], Head::Absurd).to_string(),
            "L('a) ∧ L('b) ⇒ False"
        );
        assert_eq!(Clause::fact(TyVar(2)).to_string(), "L('c)");
    }

    #[test]
    fn solution_round_trip() {
        let c = Constraint::and(
            Constraint::loc(a()),
            Constraint::Implies(Box::new(Constraint::loc(b())), Box::new(Constraint::False)),
        );
        let s = c.solve();
        // Re-solving the reconstructed constraint is a fixed point.
        assert_eq!(s.to_constraint().solve(), s);
    }

    #[test]
    fn free_vars_in_order() {
        let c = Constraint::Implies(
            Box::new(Constraint::loc(b())),
            Box::new(Constraint::loc(a())),
        );
        assert_eq!(c.free_vars(), vec![TyVar(1), TyVar(0)]);
    }
}
