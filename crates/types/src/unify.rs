//! First-order unification of simple types.
//!
//! Produces most general unifiers. Locality constraints are *not*
//! checked here — the inference engine applies Definition 1 to the
//! accumulated constraint with the returned substitution and solves
//! it; see `bsml-infer`.

use std::fmt;

use crate::subst::Subst;
use crate::ty::{TyVar, Type};

/// Unification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnifyError {
    /// Constructor clash, e.g. `int` vs `bool par`.
    Mismatch(Type, Type),
    /// The occurs-check fired: `α` appears inside the other type.
    Occurs(TyVar, Type),
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::Mismatch(a, b) => {
                write!(f, "cannot unify `{a}` with `{b}`")
            }
            UnifyError::Occurs(v, t) => {
                write!(f, "occurs check: `{v}` appears in `{t}`")
            }
        }
    }
}

impl std::error::Error for UnifyError {}

/// Work counters filled in by [`unify_counted`]. Deltas feed the
/// telemetry counters in `bsml-infer`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnifyStats {
    /// Type pairs decomposed (work-list pops).
    pub unifications: u64,
    /// Occurs-checks performed before a variable binding.
    pub occurs_checks: u64,
}

/// Computes the most general unifier of `a` and `b`.
///
/// # Errors
///
/// Returns [`UnifyError::Mismatch`] on a constructor clash and
/// [`UnifyError::Occurs`] on an infinite type.
///
/// # Example
///
/// ```
/// use bsml_types::{unify, Type};
///
/// let s = unify(&Type::arrow(Type::var(0), Type::Int),
///               &Type::arrow(Type::Bool, Type::var(1)))?;
/// assert_eq!(s.apply(&Type::var(0)), Type::Bool);
/// assert_eq!(s.apply(&Type::var(1)), Type::Int);
/// # Ok::<(), bsml_types::UnifyError>(())
/// ```
pub fn unify(a: &Type, b: &Type) -> Result<Subst, UnifyError> {
    let mut stats = UnifyStats::default();
    unify_counted(a, b, &mut stats)
}

/// [`unify`], accumulating work counts into `stats`.
///
/// # Errors
///
/// Same as [`unify`].
pub fn unify_counted(a: &Type, b: &Type, stats: &mut UnifyStats) -> Result<Subst, UnifyError> {
    let mut subst = Subst::new();
    let mut work = vec![(a.clone(), b.clone())];
    while let Some((x, y)) = work.pop() {
        stats.unifications += 1;
        let x = subst.apply(&x);
        let y = subst.apply(&y);
        match (x, y) {
            (Type::Int, Type::Int) | (Type::Bool, Type::Bool) | (Type::Unit, Type::Unit) => {}
            (Type::Var(v), t) | (t, Type::Var(v)) => {
                if t == Type::Var(v) {
                    continue;
                }
                stats.occurs_checks += 1;
                if t.occurs(v) {
                    return Err(UnifyError::Occurs(v, t));
                }
                bind(&mut subst, v, t);
            }
            (Type::Arrow(a1, b1), Type::Arrow(a2, b2))
            | (Type::Pair(a1, b1), Type::Pair(a2, b2))
            | (Type::Sum(a1, b1), Type::Sum(a2, b2)) => {
                work.push((*a1, *a2));
                work.push((*b1, *b2));
            }
            (Type::Par(t1), Type::Par(t2))
            | (Type::List(t1), Type::List(t2))
            | (Type::Ref(t1), Type::Ref(t2)) => {
                work.push((*t1, *t2));
            }
            (x, y) => return Err(UnifyError::Mismatch(x, y)),
        }
    }
    Ok(subst)
}

/// Extends `subst` with `v ↦ t`, keeping it idempotent.
fn bind(subst: &mut Subst, v: TyVar, t: Type) {
    let single = Subst::singleton(v, t);
    *subst = single.compose(subst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_identical_base() {
        assert_eq!(unify(&Type::Int, &Type::Int), Ok(Subst::new()));
    }

    #[test]
    fn unify_mismatch() {
        assert!(matches!(
            unify(&Type::Int, &Type::Bool),
            Err(UnifyError::Mismatch(..))
        ));
        assert!(matches!(
            unify(&Type::par(Type::Int), &Type::list(Type::Int)),
            Err(UnifyError::Mismatch(..))
        ));
    }

    #[test]
    fn unify_var_binds() {
        let s = unify(&Type::var(0), &Type::par(Type::Int)).unwrap();
        assert_eq!(s.apply(&Type::var(0)), Type::par(Type::Int));
    }

    #[test]
    fn unify_is_mgu() {
        let a = Type::arrow(Type::var(0), Type::pair(Type::var(1), Type::Int));
        let b = Type::arrow(Type::Bool, Type::pair(Type::var(2), Type::var(3)));
        let s = unify(&a, &b).unwrap();
        assert_eq!(s.apply(&a), s.apply(&b));
    }

    #[test]
    fn unify_transitive_chain() {
        // a = b, b = int  ⟹  a = int.
        let t1 = Type::pair(Type::var(0), Type::var(1));
        let t2 = Type::pair(Type::var(1), Type::Int);
        let s = unify(&t1, &t2).unwrap();
        assert_eq!(s.apply(&Type::var(0)), Type::Int);
        assert_eq!(s.apply(&Type::var(1)), Type::Int);
    }

    #[test]
    fn occurs_check_fires() {
        let err = unify(&Type::var(0), &Type::arrow(Type::var(0), Type::Int));
        assert!(matches!(err, Err(UnifyError::Occurs(TyVar(0), _))));
    }

    #[test]
    fn var_with_itself_is_identity() {
        let s = unify(&Type::var(3), &Type::var(3)).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn nested_structures() {
        let a = Type::par(Type::arrow(Type::Int, Type::var(0)));
        let b = Type::par(Type::arrow(Type::var(1), Type::Bool));
        let s = unify(&a, &b).unwrap();
        assert_eq!(s.apply(&a), s.apply(&b));
        assert_eq!(s.apply(&a), Type::par(Type::arrow(Type::Int, Type::Bool)));
    }

    #[test]
    fn unifier_is_idempotent() {
        let a = Type::arrow(Type::var(0), Type::var(1));
        let b = Type::arrow(Type::var(1), Type::Int);
        let s = unify(&a, &b).unwrap();
        let once = s.apply(&Type::var(0));
        let twice = s.apply(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn counted_variant_reports_work() {
        let mut stats = UnifyStats::default();
        let a = Type::arrow(Type::var(0), Type::pair(Type::var(1), Type::Int));
        let b = Type::arrow(Type::Bool, Type::pair(Type::var(2), Type::var(3)));
        let s = unify_counted(&a, &b, &mut stats).unwrap();
        assert_eq!(s.apply(&a), s.apply(&b));
        // One pop per decomposed pair: the arrow, both sides, the
        // pair, both components.
        assert_eq!(stats.unifications, 5);
        // Three variable bindings, each occurs-checked.
        assert_eq!(stats.occurs_checks, 3);
    }

    #[test]
    fn error_display() {
        let e = UnifyError::Mismatch(Type::Int, Type::Bool);
        assert_eq!(e.to_string(), "cannot unify `int` with `bool`");
        let e = UnifyError::Occurs(TyVar(0), Type::arrow(Type::var(0), Type::Int));
        assert_eq!(e.to_string(), "occurs check: `'a` appears in `'a -> int`");
    }
}
