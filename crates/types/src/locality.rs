//! The locality predicate `L(τ)` and the basic constraints `C_τ`
//! (paper §4).
//!
//! `L(τ)` states that τ is a *usual* (purely local) type. The paper's
//! rules:
//!
//! ```text
//! L(κ)        = True                 (base types)
//! L(α)        = L(α)                 (an atom, left symbolic)
//! L(τ par)    = False
//! L(τ₁ → τ₂)  = L(τ₁) ∧ L(τ₂)
//! L(τ₁ * τ₂)  = L(τ₁) ∧ L(τ₂)
//! L(τ₁ + τ₂)  = L(τ₁) ∧ L(τ₂)       (§6 extension)
//! L(τ list)   = L(τ)                 (§6 extension)
//! ```
//!
//! The *basic constraints* `C_τ` are attached whenever a type is
//! introduced (rule *(Fun)*) or substituted into a scheme
//! (Definition 1); they are what reject `fst (1, mkpar …)`:
//!
//! ```text
//! C_τ         = True                       (τ atomic)
//! C_(τ₁→τ₂)   = C_τ₁ ∧ C_τ₂ ∧ (L(τ₂) ⇒ L(τ₁))
//! C_(τ par)   = L(τ) ∧ C_τ
//! C_(τ₁*τ₂)   = C_τ₁ ∧ C_τ₂
//! C_(τ₁+τ₂)   = C_τ₁ ∧ C_τ₂               (§6 extension)
//! C_(τ list)  = L(τ) ∧ C_τ                 (§6 extension)
//! ```
//!
//! Lists carry `L(τ)` like `par` does: a `(int par) list` would be a
//! dynamically-sized collection of parallel vectors, which reintroduces
//! exactly the unpredictable-cost problem of §2.1, so element types
//! must be local.

use crate::constraint::Constraint;
use crate::ty::Type;

/// The locality formula `L(τ)`, expanded until atoms mention type
/// variables only.
///
/// # Example
///
/// ```
/// use bsml_types::{locality, Constraint, Type};
///
/// assert_eq!(locality(&Type::Int), Constraint::True);
/// assert_eq!(locality(&Type::par(Type::Int)), Constraint::False);
/// assert_eq!(
///     locality(&Type::var(0)),
///     Constraint::loc(Type::var(0))
/// );
/// ```
#[must_use]
pub fn locality(ty: &Type) -> Constraint {
    match ty {
        Type::Int | Type::Bool | Type::Unit => Constraint::True,
        Type::Var(_) => Constraint::Loc(ty.clone()),
        Type::Par(_) => Constraint::False,
        Type::Arrow(a, b) | Type::Pair(a, b) | Type::Sum(a, b) => {
            Constraint::and(locality(a), locality(b))
        }
        // A reference to a local value is itself local (the cell
        // lives in one memory); a reference to parallel data is as
        // global as its contents.
        Type::List(inner) | Type::Ref(inner) => locality(inner),
    }
}

/// The basic constraints `C_τ` of a simple type.
///
/// # Example
///
/// ```
/// use bsml_types::{basic_constraint, Constraint, Solution, Type};
///
/// // C_(int → int par) contains L(int par) ⇒ L(int), which is fine…
/// let ok = basic_constraint(&Type::arrow(Type::Int, Type::par(Type::Int)));
/// assert_eq!(ok.solve(), Solution::True);
///
/// // …but C_((int * int par) → int) contains L(int) ⇒ L(int * int par),
/// // which is absurd — the paper's fourth projection example.
/// let bad = basic_constraint(&Type::arrow(
///     Type::pair(Type::Int, Type::par(Type::Int)),
///     Type::Int,
/// ));
/// assert_eq!(bad.solve(), Solution::False);
/// ```
#[must_use]
pub fn basic_constraint(ty: &Type) -> Constraint {
    match ty {
        Type::Int | Type::Bool | Type::Unit | Type::Var(_) => Constraint::True,
        Type::Arrow(a, b) => Constraint::conj([
            basic_constraint(a),
            basic_constraint(b),
            Constraint::implies(
                Constraint::Loc((**b).clone()),
                Constraint::Loc((**a).clone()),
            ),
        ]),
        Type::Par(inner) => {
            Constraint::and(Constraint::Loc((**inner).clone()), basic_constraint(inner))
        }
        Type::Pair(a, b) | Type::Sum(a, b) => {
            Constraint::and(basic_constraint(a), basic_constraint(b))
        }
        // Lists and references require local contents: a list of
        // vectors has statically unknown parallel width; a reference
        // cell holding a vector would hide global data behind a
        // mutable local handle.
        Type::List(inner) | Type::Ref(inner) => {
            Constraint::and(Constraint::Loc((**inner).clone()), basic_constraint(inner))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Solution;
    use crate::ty::TyVar;
    use std::collections::BTreeMap;

    #[test]
    fn locality_of_base_types() {
        assert_eq!(locality(&Type::Int), Constraint::True);
        assert_eq!(locality(&Type::Bool), Constraint::True);
        assert_eq!(locality(&Type::Unit), Constraint::True);
    }

    #[test]
    fn locality_of_par_is_false() {
        assert_eq!(locality(&Type::par(Type::Int)), Constraint::False);
        assert_eq!(locality(&Type::par(Type::var(0))), Constraint::False);
    }

    #[test]
    fn locality_distributes_over_constructors() {
        let t = Type::pair(Type::var(0), Type::var(1));
        assert_eq!(
            locality(&t),
            Constraint::And(
                Box::new(Constraint::loc(Type::var(0))),
                Box::new(Constraint::loc(Type::var(1)))
            )
        );
        // A par anywhere poisons the whole type.
        let t = Type::arrow(Type::var(0), Type::par(Type::Int));
        assert_eq!(locality(&t), Constraint::False);
    }

    #[test]
    fn locality_of_list_is_element_locality() {
        assert_eq!(locality(&Type::list(Type::Int)), Constraint::True);
        assert_eq!(
            locality(&Type::list(Type::var(3))),
            Constraint::loc(Type::var(3))
        );
        assert_eq!(
            locality(&Type::list(Type::par(Type::Int))),
            Constraint::False
        );
    }

    #[test]
    fn basic_constraint_of_fst_type() {
        // ((α * β) → α) has basic constraint L(α) ⇒ L(α * β), which
        // simplifies to L(α) ⇒ L(β) semantically.
        let t = Type::arrow(Type::pair(Type::var(0), Type::var(1)), Type::var(0));
        let c = basic_constraint(&t);
        // Solving yields the Horn clause L(a) ⇒ L(b) (a ⇒ a drops).
        match c.solve() {
            Solution::Residual(cs) => {
                assert_eq!(cs.len(), 1);
                assert_eq!(cs[0].to_string(), "L('a) ⇒ L('b)");
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn basic_constraint_rejects_par_of_par() {
        let t = Type::par(Type::par(Type::Int));
        assert_eq!(basic_constraint(&t).solve(), Solution::False);
    }

    #[test]
    fn basic_constraint_of_par_demands_local_element() {
        let t = Type::par(Type::var(0));
        match basic_constraint(&t).solve() {
            Solution::Residual(cs) => assert_eq!(cs.len(), 1),
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn basic_constraint_of_list_of_par_rejected() {
        let t = Type::list(Type::par(Type::Int));
        assert_eq!(basic_constraint(&t).solve(), Solution::False);
    }

    #[test]
    fn locality_agrees_with_eval_semantics() {
        // L over a structured type equals the conjunction of its
        // variables' assignments.
        let t = Type::arrow(Type::var(0), Type::pair(Type::var(1), Type::Int));
        let c = locality(&t);
        for bits in 0..4u8 {
            let mut asg = BTreeMap::new();
            asg.insert(TyVar(0), bits & 1 == 1);
            asg.insert(TyVar(1), bits & 2 == 2);
            let expected = (bits & 1 == 1) && (bits & 2 == 2);
            assert_eq!(c.eval(&asg), Some(expected));
        }
    }
}
