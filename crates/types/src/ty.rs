//! Simple types (the paper's §4 type algebra).

use std::fmt;

/// A type variable `α`.
///
/// Displayed OCaml-style: `'a`, `'b`, …, `'z`, `'a1`, `'b1`, …
///
/// # Example
///
/// ```
/// use bsml_types::TyVar;
/// assert_eq!(TyVar(0).to_string(), "'a");
/// assert_eq!(TyVar(25).to_string(), "'z");
/// assert_eq!(TyVar(26).to_string(), "'a1");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TyVar(pub u32);

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let letter = (b'a' + (self.0 % 26) as u8) as char;
        let round = self.0 / 26;
        if round == 0 {
            write!(f, "'{letter}")
        } else {
            write!(f, "'{letter}{round}")
        }
    }
}

/// A fresh-variable supply.
///
/// All variables produced by one generator are distinct; the inference
/// engine threads a single generator so quantified variables are
/// always "out of reach" of substitutions in the sense of
/// Definition 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TyVarGen {
    next: u32,
}

impl TyVarGen {
    /// A generator starting at `'a`.
    #[must_use]
    pub fn new() -> Self {
        TyVarGen::default()
    }

    /// A generator whose first variable is `TyVar(start)`.
    #[must_use]
    pub fn starting_at(start: u32) -> Self {
        TyVarGen { next: start }
    }

    /// Produces the next fresh variable.
    pub fn fresh(&mut self) -> TyVar {
        let v = TyVar(self.next);
        self.next += 1;
        v
    }

    /// Produces a fresh variable wrapped as a type.
    pub fn fresh_ty(&mut self) -> Type {
        Type::Var(self.fresh())
    }

    /// Advances the supply past every variable occurring in `ty`, so
    /// subsequently generated variables cannot collide with it.
    pub fn skip_past(&mut self, ty: &Type) {
        for v in ty.free_vars() {
            self.next = self.next.max(v.0 + 1);
        }
    }
}

/// A simple type `τ` (paper §4), with the §6 extensions.
///
/// ```text
/// τ ::= int | bool | unit        base types κ
///     | α                        type variable
///     | τ₁ → τ₂                  functions
///     | τ₁ * τ₂                  pairs
///     | (τ par)                  parallel vectors
///     | τ₁ + τ₂                  sums        (§6 extension)
///     | τ list                   lists       (§6 extension)
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// The base type of integers.
    Int,
    /// The base type of booleans.
    Bool,
    /// The base type with the unique value `()`.
    Unit,
    /// A type variable.
    Var(TyVar),
    /// Function type `τ₁ → τ₂`.
    Arrow(Box<Type>, Box<Type>),
    /// Pair type `τ₁ * τ₂`.
    Pair(Box<Type>, Box<Type>),
    /// Parallel vector type `(τ par)`.
    Par(Box<Type>),
    /// Sum type `τ₁ + τ₂` (§6 extension).
    Sum(Box<Type>, Box<Type>),
    /// List type `τ list` (§6 extension).
    List(Box<Type>),
    /// Mutable reference type `τ ref` (§6 "imperative features"
    /// extension).
    Ref(Box<Type>),
}

impl Type {
    /// Builds `a → b`.
    #[must_use]
    pub fn arrow(a: Type, b: Type) -> Type {
        Type::Arrow(Box::new(a), Box::new(b))
    }

    /// Builds a right-nested curried arrow `t₁ → t₂ → … → ret`.
    #[must_use]
    pub fn arrows(
        params: impl IntoIterator<IntoIter = impl DoubleEndedIterator<Item = Type>>,
        ret: Type,
    ) -> Type {
        params
            .into_iter()
            .rev()
            .fold(ret, |acc, t| Type::arrow(t, acc))
    }

    /// Builds `a * b`.
    #[must_use]
    pub fn pair(a: Type, b: Type) -> Type {
        Type::Pair(Box::new(a), Box::new(b))
    }

    /// Builds `(t par)`.
    #[must_use]
    pub fn par(t: Type) -> Type {
        Type::Par(Box::new(t))
    }

    /// Builds `a + b`.
    #[must_use]
    pub fn sum(a: Type, b: Type) -> Type {
        Type::Sum(Box::new(a), Box::new(b))
    }

    /// Builds `t list`.
    #[must_use]
    pub fn list(t: Type) -> Type {
        Type::List(Box::new(t))
    }

    /// Builds `t ref`.
    #[must_use]
    pub fn reference(t: Type) -> Type {
        Type::Ref(Box::new(t))
    }

    /// Shorthand for `Type::Var(TyVar(n))`.
    #[must_use]
    pub fn var(n: u32) -> Type {
        Type::Var(TyVar(n))
    }

    /// `true` for the base types `int`, `bool`, `unit`.
    #[must_use]
    pub fn is_base(&self) -> bool {
        matches!(self, Type::Int | Type::Bool | Type::Unit)
    }

    /// `true` if the type syntactically contains a `par` constructor.
    #[must_use]
    pub fn contains_par(&self) -> bool {
        match self {
            Type::Par(_) => true,
            Type::Int | Type::Bool | Type::Unit | Type::Var(_) => false,
            Type::Arrow(a, b) | Type::Pair(a, b) | Type::Sum(a, b) => {
                a.contains_par() || b.contains_par()
            }
            Type::List(t) | Type::Ref(t) => t.contains_par(),
        }
    }

    /// `true` if a `par` constructor occurs *under* another `par`
    /// constructor — the nesting the whole paper exists to prevent.
    #[must_use]
    pub fn has_nested_par(&self) -> bool {
        match self {
            Type::Par(inner) => inner.contains_par() || inner.has_nested_par(),
            Type::Int | Type::Bool | Type::Unit | Type::Var(_) => false,
            Type::Arrow(a, b) | Type::Pair(a, b) | Type::Sum(a, b) => {
                a.has_nested_par() || b.has_nested_par()
            }
            Type::List(t) | Type::Ref(t) => t.has_nested_par(),
        }
    }

    /// Free type variables, in first-occurrence order.
    #[must_use]
    pub fn free_vars(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        self.collect_free_vars(&mut out);
        out
    }

    pub(crate) fn collect_free_vars(&self, out: &mut Vec<TyVar>) {
        match self {
            Type::Int | Type::Bool | Type::Unit => {}
            Type::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Type::Arrow(a, b) | Type::Pair(a, b) | Type::Sum(a, b) => {
                a.collect_free_vars(out);
                b.collect_free_vars(out);
            }
            Type::Par(t) | Type::List(t) | Type::Ref(t) => t.collect_free_vars(out),
        }
    }

    /// `true` if `v` occurs in the type (the unifier's occurs-check).
    #[must_use]
    pub fn occurs(&self, v: TyVar) -> bool {
        match self {
            Type::Int | Type::Bool | Type::Unit => false,
            Type::Var(w) => *w == v,
            Type::Arrow(a, b) | Type::Pair(a, b) | Type::Sum(a, b) => a.occurs(v) || b.occurs(v),
            Type::Par(t) | Type::List(t) | Type::Ref(t) => t.occurs(v),
        }
    }

    /// Number of constructors in the type tree.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Type::Int | Type::Bool | Type::Unit | Type::Var(_) => 1,
            Type::Arrow(a, b) | Type::Pair(a, b) | Type::Sum(a, b) => 1 + a.size() + b.size(),
            Type::Par(t) | Type::List(t) | Type::Ref(t) => 1 + t.size(),
        }
    }
}

/// Precedence for printing: arrow < sum < pair < postfix < atom.
fn print_ty(f: &mut fmt::Formatter<'_>, t: &Type, prec: u8) -> fmt::Result {
    let paren = |f: &mut fmt::Formatter<'_>,
                 needed: bool,
                 inner: &dyn Fn(&mut fmt::Formatter<'_>) -> fmt::Result| {
        if needed {
            f.write_str("(")?;
            inner(f)?;
            f.write_str(")")
        } else {
            inner(f)
        }
    };
    match t {
        Type::Int => f.write_str("int"),
        Type::Bool => f.write_str("bool"),
        Type::Unit => f.write_str("unit"),
        Type::Var(v) => write!(f, "{v}"),
        Type::Arrow(a, b) => paren(f, prec > 0, &|f| {
            print_ty(f, a, 1)?;
            f.write_str(" -> ")?;
            print_ty(f, b, 0)
        }),
        Type::Sum(a, b) => paren(f, prec > 1, &|f| {
            print_ty(f, a, 2)?;
            f.write_str(" + ")?;
            print_ty(f, b, 2)
        }),
        Type::Pair(a, b) => paren(f, prec > 2, &|f| {
            print_ty(f, a, 3)?;
            f.write_str(" * ")?;
            print_ty(f, b, 3)
        }),
        Type::Par(inner) => paren(f, prec > 3, &|f| {
            print_ty(f, inner, 4)?;
            f.write_str(" par")
        }),
        Type::List(inner) => paren(f, prec > 3, &|f| {
            print_ty(f, inner, 4)?;
            f.write_str(" list")
        }),
        Type::Ref(inner) => paren(f, prec > 3, &|f| {
            print_ty(f, inner, 4)?;
            f.write_str(" ref")
        }),
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_ty(f, self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tyvar_display() {
        assert_eq!(TyVar(0).to_string(), "'a");
        assert_eq!(TyVar(1).to_string(), "'b");
        assert_eq!(TyVar(25).to_string(), "'z");
        assert_eq!(TyVar(26).to_string(), "'a1");
        assert_eq!(TyVar(53).to_string(), "'b2");
    }

    #[test]
    fn gen_produces_distinct() {
        let mut g = TyVarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert_eq!(a, TyVar(0));
        assert_eq!(b, TyVar(1));
    }

    #[test]
    fn gen_skip_past() {
        let mut g = TyVarGen::new();
        g.skip_past(&Type::pair(Type::var(5), Type::var(2)));
        assert_eq!(g.fresh(), TyVar(6));
    }

    #[test]
    fn display_precedence() {
        let t = Type::arrow(
            Type::arrow(Type::Int, Type::Bool),
            Type::pair(Type::Int, Type::par(Type::var(0))),
        );
        assert_eq!(t.to_string(), "(int -> bool) -> int * 'a par");
        assert_eq!(
            Type::par(Type::arrow(Type::Int, Type::Int)).to_string(),
            "(int -> int) par"
        );
        assert_eq!(
            Type::pair(Type::pair(Type::Int, Type::Int), Type::Int).to_string(),
            "(int * int) * int"
        );
        assert_eq!(
            Type::list(Type::par(Type::Int)).to_string(),
            "(int par) list"
        );
        assert_eq!(
            Type::sum(Type::Int, Type::pair(Type::Bool, Type::Unit)).to_string(),
            "int + bool * unit"
        );
    }

    #[test]
    fn arrows_builder() {
        let t = Type::arrows(vec![Type::Int, Type::Bool], Type::Unit);
        assert_eq!(t.to_string(), "int -> bool -> unit");
    }

    #[test]
    fn nesting_detection() {
        assert!(!Type::par(Type::Int).has_nested_par());
        assert!(Type::par(Type::par(Type::Int)).has_nested_par());
        assert!(Type::par(Type::pair(Type::Int, Type::par(Type::Bool))).has_nested_par());
        assert!(Type::arrow(Type::par(Type::par(Type::Int)), Type::Int).has_nested_par());
        assert!(!Type::arrow(Type::par(Type::Int), Type::par(Type::Bool)).has_nested_par());
    }

    #[test]
    fn free_vars_in_order() {
        let t = Type::arrow(Type::var(3), Type::pair(Type::var(1), Type::var(3)));
        assert_eq!(t.free_vars(), vec![TyVar(3), TyVar(1)]);
    }

    #[test]
    fn occurs_check() {
        let t = Type::arrow(Type::var(0), Type::Int);
        assert!(t.occurs(TyVar(0)));
        assert!(!t.occurs(TyVar(1)));
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(Type::Int.size(), 1);
        assert_eq!(Type::arrow(Type::Int, Type::Bool).size(), 3);
        assert_eq!(Type::par(Type::pair(Type::Int, Type::Int)).size(), 4);
    }
}
