//! The consolidated registry of every `BSML_*` environment knob.
//!
//! The *parsing mechanism* — defaulting, whitespace tolerance, and the
//! counted `config.bad_env_values` warning for malformed values —
//! lives in [`bsml_obs::env`], the one crate below every knob consumer
//! in the dependency graph. This module is the *registry*: one row per
//! knob, machine-readable, so documentation (`README.md`'s knob
//! table), the server, and tests all agree on what exists.
//!
//! Knobs owned by other crates keep their constants there (e.g.
//! [`bsml_bsp::BARRIER_TIMEOUT_ENV`]); this registry re-lists them so
//! there is exactly one place that *enumerates* the knob surface.

use std::path::PathBuf;
use std::time::Duration;

use bsml_obs::env as obs_env;
use bsml_obs::Telemetry;

/// Per-phrase wall-clock deadline for `bsml-serve` requests,
/// milliseconds. `0` disables the deadline.
pub const DEADLINE_MS_ENV: &str = "BSML_DEADLINE_MS";

/// Default per-phrase deadline when [`DEADLINE_MS_ENV`] is unset.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(2);

/// Directory for `bsml-serve`'s per-tenant write-ahead logs. Unset
/// means sessions are in-memory only and do not survive a restart.
pub const DURABLE_DIR_ENV: &str = "BSML_DURABLE_DIR";

/// Commits between WAL compaction snapshots in `bsml-serve`
/// (recovery replays at most this many phrases per tenant).
pub const SNAPSHOT_EVERY_ENV: &str = "BSML_SNAPSHOT_EVERY";

/// Default WAL compaction interval when [`SNAPSHOT_EVERY_ENV`] is
/// unset.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 8;

/// Bound on the `bsml-serve` admission queue (requests queued across
/// all tenants before new offers are shed with `QueueFull`).
pub const QUEUE_DEPTH_ENV: &str = "BSML_QUEUE_DEPTH";

/// Default admission-queue bound when [`QUEUE_DEPTH_ENV`] is unset.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// The per-phrase deadline from the environment: [`DEADLINE_MS_ENV`]
/// when set and parsable, else [`DEFAULT_DEADLINE`]. `Some(0ms)`
/// becomes `None` — deadline disabled.
#[must_use]
pub fn deadline_from_env(telemetry: &Telemetry) -> Option<Duration> {
    let d = obs_env::duration_ms_knob(DEADLINE_MS_ENV, DEFAULT_DEADLINE, telemetry);
    (!d.is_zero()).then_some(d)
}

/// The admission-queue bound from the environment: [`QUEUE_DEPTH_ENV`]
/// when set and parsable, else [`DEFAULT_QUEUE_DEPTH`]. Clamped to at
/// least 1 (a zero-depth queue would reject every offer).
#[must_use]
pub fn queue_depth_from_env(telemetry: &Telemetry) -> usize {
    obs_env::parse_knob(QUEUE_DEPTH_ENV, DEFAULT_QUEUE_DEPTH, telemetry).max(1)
}

/// The durable-session directory from the environment:
/// [`DURABLE_DIR_ENV`] when set, else `None` (durability off).
#[must_use]
pub fn durable_dir_from_env() -> Option<PathBuf> {
    obs_env::path_knob(DURABLE_DIR_ENV)
}

/// The WAL compaction interval from the environment:
/// [`SNAPSHOT_EVERY_ENV`] when set and parsable, else
/// [`DEFAULT_SNAPSHOT_EVERY`]. Clamped to at least 1.
#[must_use]
pub fn snapshot_every_from_env(telemetry: &Telemetry) -> u64 {
    obs_env::parse_knob(SNAPSHOT_EVERY_ENV, DEFAULT_SNAPSHOT_EVERY, telemetry).max(1)
}

/// What kind of value a knob carries — documentation metadata for
/// [`Knob`] rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnobKind {
    /// A duration in milliseconds.
    DurationMs,
    /// A plain non-negative integer.
    Integer,
    /// A filesystem path, taken verbatim.
    Path,
    /// An opaque string (internal wiring, not for tuning).
    String,
}

/// One row of the knob registry.
#[derive(Clone, Copy, Debug)]
pub struct Knob {
    /// The environment variable name.
    pub name: &'static str,
    /// What the value is.
    pub kind: KnobKind,
    /// The default, rendered for documentation (`"—"` when the knob
    /// is off/unset by default).
    pub default: &'static str,
    /// One-line description.
    pub doc: &'static str,
    /// `true` for internal launcher↔rank wiring that users should
    /// never set by hand.
    pub internal: bool,
}

/// Every `BSML_*` knob the workspace reads, sorted by name. Tests
/// assert this list matches the constants the owning crates export;
/// `README.md`'s "Environment knobs" table is generated from the same
/// rows.
#[must_use]
pub fn registry() -> Vec<Knob> {
    vec![
        Knob {
            name: bsml_bsp::BARRIER_TIMEOUT_ENV,
            kind: KnobKind::DurationMs,
            default: "30000",
            doc: "Distributed-machine barrier watchdog timeout",
            internal: false,
        },
        Knob {
            name: DEADLINE_MS_ENV,
            kind: KnobKind::DurationMs,
            default: "2000",
            doc: "Per-phrase wall-clock deadline in bsml-serve (0 disables)",
            internal: false,
        },
        Knob {
            name: DURABLE_DIR_ENV,
            kind: KnobKind::Path,
            default: "—",
            doc: "Directory for bsml-serve's durable tenant WALs (unset = in-memory only)",
            internal: false,
        },
        Knob {
            name: bsml_bsp::FLIGHT_CAPACITY_ENV,
            kind: KnobKind::Integer,
            default: "—",
            doc: "Enable the per-rank flight recorder with this ring capacity",
            internal: false,
        },
        Knob {
            name: bsml_bsp::HANDSHAKE_TIMEOUT_ENV,
            kind: KnobKind::DurationMs,
            default: "10000",
            doc: "Per-rank process handshake deadline",
            internal: false,
        },
        Knob {
            name: bsml_bsp::HEARTBEAT_MS_ENV,
            kind: KnobKind::DurationMs,
            default: "500",
            doc: "Coordinator→rank heartbeat period (0 disables link supervision)",
            internal: false,
        },
        Knob {
            name: bsml_bsp::LINK_GRACE_MS_ENV,
            kind: KnobKind::DurationMs,
            default: "5000",
            doc: "Silence budget before a rank link is declared dead (0 disables rejoin)",
            internal: false,
        },
        Knob {
            name: bsml_bsp::POSTMORTEM_DIR_ENV,
            kind: KnobKind::Path,
            default: "—",
            doc: "Directory where crash postmortem bundles are written",
            internal: false,
        },
        Knob {
            name: QUEUE_DEPTH_ENV,
            kind: KnobKind::Integer,
            default: "256",
            doc: "bsml-serve admission-queue bound across all tenants",
            internal: false,
        },
        Knob {
            name: bsml_bsp::RANK_BIN_ENV,
            kind: KnobKind::Path,
            default: "—",
            doc: "Override path of the bsml-rank runner binary",
            internal: false,
        },
        Knob {
            name: bsml_bsp::RANK_FINGERPRINT_ENV,
            kind: KnobKind::String,
            default: "—",
            doc: "Launcher→rank program fingerprint (internal wiring)",
            internal: true,
        },
        Knob {
            name: bsml_bsp::RANK_ID_ENV,
            kind: KnobKind::Integer,
            default: "—",
            doc: "Launcher→rank processor id (internal wiring)",
            internal: true,
        },
        Knob {
            name: bsml_bsp::RANK_P_ENV,
            kind: KnobKind::Integer,
            default: "—",
            doc: "Launcher→rank machine width (internal wiring)",
            internal: true,
        },
        Knob {
            name: bsml_bsp::RANK_SOCKET_ENV,
            kind: KnobKind::Path,
            default: "—",
            doc: "Launcher→rank Unix socket path (internal wiring)",
            internal: true,
        },
        Knob {
            name: SNAPSHOT_EVERY_ENV,
            kind: KnobKind::Integer,
            default: "8",
            doc: "Commits between WAL compaction snapshots in bsml-serve",
            internal: false,
        },
    ]
}

/// Renders the registry as a GitHub-flavored markdown table — the
/// exact text of `README.md`'s "Environment knobs" section, so a test
/// can diff them.
#[must_use]
pub fn registry_markdown() -> String {
    let mut out = String::from("| Knob | Kind | Default | Meaning |\n|---|---|---|---|\n");
    for k in registry() {
        let kind = match k.kind {
            KnobKind::DurationMs => "ms",
            KnobKind::Integer => "int",
            KnobKind::Path => "path",
            KnobKind::String => "string",
        };
        let doc = if k.internal {
            format!("{} *(internal)*", k.doc)
        } else {
            k.doc.to_string()
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            k.name, kind, k.default, doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let names: Vec<&str> = registry().iter().map(|k| k.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "registry must stay sorted by name");
    }

    #[test]
    fn registry_names_all_start_with_bsml() {
        for k in registry() {
            assert!(
                k.name.starts_with("BSML_"),
                "{} is not a BSML_ knob",
                k.name
            );
        }
    }

    #[test]
    fn markdown_table_has_a_row_per_knob() {
        let md = registry_markdown();
        for k in registry() {
            assert!(md.contains(k.name), "missing row for {}", k.name);
        }
        assert_eq!(md.lines().count(), registry().len() + 2);
    }

    // Serialized with the other env-mutating tests in this file by
    // running knob reads against distinct variable states in one test.
    #[test]
    fn server_knob_parsers_default_clamp_and_disable() {
        let tel = Telemetry::disabled();

        std::env::remove_var(DEADLINE_MS_ENV);
        assert_eq!(deadline_from_env(&tel), Some(DEFAULT_DEADLINE));
        std::env::set_var(DEADLINE_MS_ENV, "150");
        assert_eq!(deadline_from_env(&tel), Some(Duration::from_millis(150)));
        std::env::set_var(DEADLINE_MS_ENV, "0");
        assert_eq!(deadline_from_env(&tel), None);
        std::env::remove_var(DEADLINE_MS_ENV);

        std::env::remove_var(QUEUE_DEPTH_ENV);
        assert_eq!(queue_depth_from_env(&tel), DEFAULT_QUEUE_DEPTH);
        std::env::set_var(QUEUE_DEPTH_ENV, "0");
        assert_eq!(queue_depth_from_env(&tel), 1);
        std::env::set_var(QUEUE_DEPTH_ENV, "64");
        assert_eq!(queue_depth_from_env(&tel), 64);
        std::env::remove_var(QUEUE_DEPTH_ENV);

        std::env::remove_var(DURABLE_DIR_ENV);
        assert_eq!(durable_dir_from_env(), None);
        std::env::set_var(DURABLE_DIR_ENV, "/tmp/bsml-wal");
        assert_eq!(durable_dir_from_env(), Some(PathBuf::from("/tmp/bsml-wal")));
        std::env::remove_var(DURABLE_DIR_ENV);

        std::env::remove_var(SNAPSHOT_EVERY_ENV);
        assert_eq!(snapshot_every_from_env(&tel), DEFAULT_SNAPSHOT_EVERY);
        std::env::set_var(SNAPSHOT_EVERY_ENV, "0");
        assert_eq!(snapshot_every_from_env(&tel), 1);
        std::env::set_var(SNAPSHOT_EVERY_ENV, "32");
        assert_eq!(snapshot_every_from_env(&tel), 32);
        std::env::remove_var(SNAPSHOT_EVERY_ENV);
    }
}
