//! A byte codec for [`SessionSnapshot`] — the durable form a tenant
//! session takes in the server's write-ahead log.
//!
//! The value half rides on [`bsml_eval::persist`] (which preserves
//! cell aliasing, cycles, and environment-spine sharing); this module
//! adds the typing environment (schemes over the paper's constrained
//! types) and the cumulative cost, framed behind a magic number and a
//! version byte so stale or foreign files are recognized instead of
//! misread.
//!
//! Decoding is total: malformed bytes yield a typed
//! [`CodecError`], never a panic — the same guarantee the WAL's
//! fault-injection grid exercises end to end.

use bsml_bsp::CostSummary;
use bsml_eval::bytes::{put_str, put_u64, ByteReader, CodecError};
use bsml_eval::Snapshot;
use bsml_infer::TypeEnv;
use bsml_types::{Constraint, Scheme, TyVar, Type};

use crate::session::SessionSnapshot;

/// `b"BSMLSNAP"` as a little-endian u64: the file-format magic.
const SNAP_MAGIC: u64 = u64::from_le_bytes(*b"BSMLSNAP");

/// Format version; bump on any layout change.
const SNAP_VERSION: u8 = 1;

/// Nesting bound for type/constraint decoding — schemes are shallow;
/// corrupt input must not overflow the stack.
const MAX_TYPE_DEPTH: usize = 200;

// Type tags.
const TY_INT: u8 = 0;
const TY_BOOL: u8 = 1;
const TY_UNIT: u8 = 2;
const TY_VAR: u8 = 3;
const TY_ARROW: u8 = 4;
const TY_PAIR: u8 = 5;
const TY_PAR: u8 = 6;
const TY_SUM: u8 = 7;
const TY_LIST: u8 = 8;
const TY_REF: u8 = 9;

// Constraint tags.
const C_TRUE: u8 = 0;
const C_FALSE: u8 = 1;
const C_LOC: u8 = 2;
const C_AND: u8 = 3;
const C_IMPLIES: u8 = 4;

impl SessionSnapshot {
    /// Serializes the snapshot: magic, version, typing environment,
    /// value bindings, cumulative cost.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let (tenv, values, total) = self.parts();
        let mut out = Vec::new();
        put_u64(&mut out, SNAP_MAGIC);
        out.push(SNAP_VERSION);
        let names: Vec<_> = tenv.domain().collect();
        put_u64(&mut out, names.len() as u64);
        for name in names {
            let scheme = tenv.lookup(name).expect("name came from the domain");
            put_str(&mut out, name.as_str());
            encode_scheme(&mut out, scheme);
        }
        let value_bytes = values.to_bytes();
        put_u64(&mut out, value_bytes.len() as u64);
        out.extend_from_slice(&value_bytes);
        put_u64(&mut out, total.work);
        put_u64(&mut out, total.h_relation);
        put_u64(&mut out, total.supersteps);
        out
    }

    /// Deserializes a snapshot.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on any malformed input (wrong magic, unknown
    /// version, torn or corrupted bytes); never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<SessionSnapshot, CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.u64()? != SNAP_MAGIC {
            return Err(CodecError::BadTag {
                what: "snapshot magic",
                tag: bytes.first().copied().unwrap_or(0),
            });
        }
        let version = r.u8()?;
        if version != SNAP_VERSION {
            return Err(CodecError::BadTag {
                what: "snapshot version",
                tag: version,
            });
        }
        let n = r.count()?;
        let mut tenv = TypeEnv::new();
        for _ in 0..n {
            let name = r.str()?;
            let scheme = decode_scheme(&mut r)?;
            tenv = tenv.extend(bsml_ast::Ident::new(&name), scheme);
        }
        let value_len = r.count()?;
        let values = Snapshot::from_bytes(r.take(value_len)?)?;
        let total = CostSummary {
            work: r.u64()?,
            h_relation: r.u64()?,
            supersteps: r.u64()?,
        };
        r.finish()?;
        Ok(SessionSnapshot::from_parts(tenv, values, total))
    }
}

fn encode_scheme(out: &mut Vec<u8>, scheme: &Scheme) {
    put_u64(out, scheme.quantified().len() as u64);
    for v in scheme.quantified() {
        put_u64(out, u64::from(v.0));
    }
    encode_type(out, scheme.ty());
    encode_constraint(out, scheme.constraint());
}

fn decode_scheme(r: &mut ByteReader<'_>) -> Result<Scheme, CodecError> {
    let n = r.u64()?;
    // Each quantified var costs 8 bytes; bound before allocating.
    if n > (r.remaining() / 8) as u64 {
        return Err(CodecError::BadCount);
    }
    let mut vars = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let raw = r.u64()?;
        let v = u32::try_from(raw).map_err(|_| CodecError::BadCount)?;
        vars.push(TyVar(v));
    }
    let ty = decode_type(r, 0)?;
    let constraint = decode_constraint(r, 0)?;
    Ok(Scheme::new(vars, ty, constraint))
}

fn encode_type(out: &mut Vec<u8>, ty: &Type) {
    match ty {
        Type::Int => out.push(TY_INT),
        Type::Bool => out.push(TY_BOOL),
        Type::Unit => out.push(TY_UNIT),
        Type::Var(v) => {
            out.push(TY_VAR);
            put_u64(out, u64::from(v.0));
        }
        Type::Arrow(a, b) => {
            out.push(TY_ARROW);
            encode_type(out, a);
            encode_type(out, b);
        }
        Type::Pair(a, b) => {
            out.push(TY_PAIR);
            encode_type(out, a);
            encode_type(out, b);
        }
        Type::Par(t) => {
            out.push(TY_PAR);
            encode_type(out, t);
        }
        Type::Sum(a, b) => {
            out.push(TY_SUM);
            encode_type(out, a);
            encode_type(out, b);
        }
        Type::List(t) => {
            out.push(TY_LIST);
            encode_type(out, t);
        }
        Type::Ref(t) => {
            out.push(TY_REF);
            encode_type(out, t);
        }
    }
}

fn decode_type(r: &mut ByteReader<'_>, depth: usize) -> Result<Type, CodecError> {
    if depth > MAX_TYPE_DEPTH {
        return Err(CodecError::TooDeep);
    }
    match r.u8()? {
        TY_INT => Ok(Type::Int),
        TY_BOOL => Ok(Type::Bool),
        TY_UNIT => Ok(Type::Unit),
        TY_VAR => {
            let raw = r.u64()?;
            let v = u32::try_from(raw).map_err(|_| CodecError::BadCount)?;
            Ok(Type::Var(TyVar(v)))
        }
        TY_ARROW => Ok(Type::Arrow(
            Box::new(decode_type(r, depth + 1)?),
            Box::new(decode_type(r, depth + 1)?),
        )),
        TY_PAIR => Ok(Type::Pair(
            Box::new(decode_type(r, depth + 1)?),
            Box::new(decode_type(r, depth + 1)?),
        )),
        TY_PAR => Ok(Type::Par(Box::new(decode_type(r, depth + 1)?))),
        TY_SUM => Ok(Type::Sum(
            Box::new(decode_type(r, depth + 1)?),
            Box::new(decode_type(r, depth + 1)?),
        )),
        TY_LIST => Ok(Type::List(Box::new(decode_type(r, depth + 1)?))),
        TY_REF => Ok(Type::Ref(Box::new(decode_type(r, depth + 1)?))),
        other => Err(CodecError::BadTag {
            what: "type",
            tag: other,
        }),
    }
}

fn encode_constraint(out: &mut Vec<u8>, c: &Constraint) {
    match c {
        Constraint::True => out.push(C_TRUE),
        Constraint::False => out.push(C_FALSE),
        Constraint::Loc(ty) => {
            out.push(C_LOC);
            encode_type(out, ty);
        }
        Constraint::And(a, b) => {
            out.push(C_AND);
            encode_constraint(out, a);
            encode_constraint(out, b);
        }
        Constraint::Implies(a, b) => {
            out.push(C_IMPLIES);
            encode_constraint(out, a);
            encode_constraint(out, b);
        }
    }
}

fn decode_constraint(r: &mut ByteReader<'_>, depth: usize) -> Result<Constraint, CodecError> {
    if depth > MAX_TYPE_DEPTH {
        return Err(CodecError::TooDeep);
    }
    match r.u8()? {
        C_TRUE => Ok(Constraint::True),
        C_FALSE => Ok(Constraint::False),
        C_LOC => Ok(Constraint::Loc(decode_type(r, depth + 1)?)),
        C_AND => Ok(Constraint::And(
            Box::new(decode_constraint(r, depth + 1)?),
            Box::new(decode_constraint(r, depth + 1)?),
        )),
        C_IMPLIES => Ok(Constraint::Implies(
            Box::new(decode_constraint(r, depth + 1)?),
            Box::new(decode_constraint(r, depth + 1)?),
        )),
        other => Err(CodecError::BadTag {
            what: "constraint",
            tag: other,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use bsml_bsp::BspParams;

    fn loaded_session() -> Session {
        let mut s = Session::new(BspParams::new(4, 10, 100));
        s.load(
            "let x = 20 ;; \
             let id y = y ;; \
             let c = ref 5 ;; \
             let v = mkpar (fun i -> i)",
        )
        .unwrap();
        s
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let s = loaded_session();
        let snap = s.snapshot();
        let bytes = snap.to_bytes();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), snap.len());
        // Re-encoding the decoded snapshot reproduces the bytes: the
        // codec is deterministic and self-consistent.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn restored_session_renders_identically() {
        let s = loaded_session();
        let bytes = s.snapshot().to_bytes();
        let snap = SessionSnapshot::from_bytes(&bytes).unwrap();
        let mut fresh = Session::new(BspParams::new(4, 10, 100));
        fresh.restore(&snap);
        assert_eq!(fresh.render_bindings(), s.render_bindings());
        assert_eq!(fresh.total_cost(), s.total_cost());
        // The restored session is live: polymorphic bindings still
        // instantiate, cells still assign.
        let mut fresh2 = fresh.clone();
        let ev = fresh2.load("(id 1, id true)").unwrap();
        assert_eq!(ev[0].value().unwrap().to_string(), "(1, true)");
        fresh2.load("c := !c + 1").unwrap();
        let ev = fresh2.load("!c").unwrap();
        assert_eq!(ev[0].value().unwrap().to_string(), "6");
    }

    #[test]
    fn render_bindings_is_sorted_and_stable() {
        let mut s = Session::new(BspParams::new(2, 1, 10));
        s.load("let zeta = 1 ;; let alpha = 2").unwrap();
        let shown = s.render_bindings();
        let alpha = shown.find("alpha").unwrap();
        let zeta = shown.find("zeta").unwrap();
        assert!(alpha < zeta, "bindings must render sorted:\n{shown}");
        assert_eq!(shown, s.render_bindings());
    }

    #[test]
    fn malformed_snapshot_bytes_are_typed_errors() {
        let s = loaded_session();
        let good = s.snapshot().to_bytes();
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(SessionSnapshot::from_bytes(&bad).is_err());
        // Truncation at every boundary.
        for cut in 0..good.len() {
            assert!(SessionSnapshot::from_bytes(&good[..cut]).is_err());
        }
        // Single-bit flips never panic.
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 1;
            let _ = SessionSnapshot::from_bytes(&bad);
        }
    }
}
