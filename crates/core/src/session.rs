//! Interactive sessions: persistent toplevel bindings across inputs,
//! OCaml-toplevel style, with cumulative BSP cost accounting.
//!
//! ```
//! use bsml_core::session::Session;
//! use bsml_bsp::BspParams;
//!
//! let mut s = Session::new(BspParams::new(4, 10, 1000));
//! s.load("let replicate x = mkpar (fun pid -> x) ;;")?;
//! let events = s.load("replicate 7")?;
//! assert_eq!(events[0].value.to_string(), "<|7, 7, 7, 7|>");
//! # Ok::<(), bsml_core::BsmlError>(())
//! ```

use bsml_ast::{Expr, Ident};
use bsml_bsp::{BspMachine, BspParams, CostSummary, RunReport};
use bsml_eval::{Env, Value};
use bsml_infer::{Inferencer, TypeEnv};
use bsml_obs::{MetricsSnapshot, Telemetry};
use bsml_syntax::parse_module_with;
use bsml_types::Scheme;

use crate::BsmlError;

/// What one toplevel phrase produced.
#[derive(Clone, Debug)]
pub struct SessionEvent {
    /// The bound name (`None` for a bare expression).
    pub name: Option<Ident>,
    /// The phrase's toplevel scheme.
    pub scheme: Scheme,
    /// The computed value.
    pub value: Value,
    /// The BSP cost of evaluating this phrase.
    pub cost: CostSummary,
    /// Cumulative telemetry metrics as of this phrase (sessions built
    /// with [`Session::with_telemetry`] only).
    metrics: Option<MetricsSnapshot>,
}

impl SessionEvent {
    /// The cumulative telemetry metrics (counters and histogram
    /// summaries) as of the end of this phrase. `None` unless the
    /// session was built with [`Session::with_telemetry`].
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricsSnapshot> {
        self.metrics.as_ref()
    }
}

impl std::fmt::Display for SessionEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.name {
            Some(name) => write!(f, "val {name} : {} = {}", self.scheme, self.value),
            None => write!(f, "- : {} = {}", self.scheme, self.value),
        }
    }
}

/// An interactive BSML toplevel.
///
/// Each successfully loaded phrase extends the typing and value
/// environments; costs accumulate (BSP cost composition is
/// sequential — exactly what the nesting restriction guarantees).
#[derive(Clone, Debug)]
pub struct Session {
    machine: BspMachine,
    tenv: TypeEnv,
    venv: Env,
    total: CostSummary,
    telemetry: Telemetry,
}

impl Session {
    /// A fresh session on the given machine (telemetry disabled).
    #[must_use]
    pub fn new(params: BspParams) -> Session {
        Session::with_telemetry(params, Telemetry::disabled())
    }

    /// A session whose whole pipeline records into `telemetry`: each
    /// `load` wraps its phrases in spans (`load` → `phrase` → `parse`
    /// / `infer` / `bsp.run` → per-processor `superstep`s), and each
    /// [`SessionEvent`] carries the cumulative metrics snapshot.
    ///
    /// Export the collected data through
    /// [`telemetry()`](Session::telemetry) — e.g.
    /// [`Telemetry::to_chrome_trace`] for a Perfetto-loadable trace.
    #[must_use]
    pub fn with_telemetry(params: BspParams, telemetry: Telemetry) -> Session {
        Session {
            machine: BspMachine::new(params).with_telemetry(telemetry.clone()),
            tenv: TypeEnv::new(),
            venv: Env::new(),
            total: CostSummary::default(),
            telemetry,
        }
    }

    /// The telemetry handle this session records into (disabled for
    /// sessions built with [`Session::new`]).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The machine parameters.
    #[must_use]
    pub fn params(&self) -> &BspParams {
        self.machine.params()
    }

    /// Cumulative BSP cost of everything evaluated so far.
    #[must_use]
    pub fn total_cost(&self) -> &CostSummary {
        &self.total
    }

    /// Looks up the scheme of a bound toplevel name.
    #[must_use]
    pub fn scheme_of(&self, name: &str) -> Option<&Scheme> {
        self.tenv.lookup(&Ident::new(name))
    }

    /// Parses and processes a chunk of toplevel input (declarations
    /// and/or one final expression), returning one event per phrase.
    ///
    /// On error nothing is bound: the session state is unchanged
    /// (all-or-nothing per `load` call).
    ///
    /// # Errors
    ///
    /// Any [`BsmlError`]; the offending phrase is reported with its
    /// location in the input.
    pub fn load(&mut self, source: &str) -> Result<Vec<SessionEvent>, BsmlError> {
        let mut load_span = self.telemetry.span("load");
        let module = parse_module_with(source, &self.telemetry)?;
        load_span.set(
            "phrases",
            module.decls.len() + usize::from(module.body.is_some()),
        );
        // Work on copies; commit only on overall success.
        let mut tenv = self.tenv.clone();
        let mut venv = self.venv.clone();
        let mut total = self.total.clone();
        let mut events = Vec::new();

        for decl in &module.decls {
            let (event, value) =
                self.process(&tenv, &venv, &mut total, Some(&decl.name), &decl.expr)?;
            tenv = tenv.extend(decl.name.clone(), event.scheme.clone());
            venv = venv.bind(decl.name.clone(), value);
            events.push(event);
        }
        if let Some(body) = &module.body {
            let (event, _) = self.process(&tenv, &venv, &mut total, None, body)?;
            events.push(event);
        }

        self.tenv = tenv;
        self.venv = venv;
        self.total = total;
        Ok(events)
    }

    fn process(
        &self,
        tenv: &TypeEnv,
        venv: &Env,
        total: &mut CostSummary,
        name: Option<&Ident>,
        expr: &Expr,
    ) -> Result<(SessionEvent, Value), BsmlError> {
        let mut phrase_span = self.telemetry.span("phrase");
        if let Some(name) = name {
            phrase_span.set("name", name.to_string());
        }
        let inference = {
            let _infer_span = self.telemetry.span("infer");
            Inferencer::new()
                .with_telemetry(self.telemetry.clone())
                .run(tenv, expr)?
        };
        // Toplevel bindings are retained values, not hidden
        // evaluations, so no (Let)-style side condition applies
        // between phrases; the phrase itself was fully checked.
        // Residual clauses about forgotten instantiation variables
        // are dropped (they are independently satisfiable).
        let mut keep = inference.ty.free_vars();
        for v in tenv.free_vars() {
            if !keep.contains(&v) {
                keep.push(v);
            }
        }
        let relevant = inference.solution.restrict(&keep);
        let scheme = Scheme::generalize(
            inference.ty.clone(),
            relevant.to_constraint(),
            &tenv.free_vars(),
        )
        .normalize();

        let report: RunReport = self.machine.run_with_env(venv, expr)?;
        *total = CostSummary::from_records(&report.trace).then_into(total);

        drop(phrase_span);
        let event = SessionEvent {
            name: name.cloned(),
            scheme,
            value: report.value.clone(),
            cost: report.cost,
            metrics: self
                .telemetry
                .is_enabled()
                .then(|| self.telemetry.metrics()),
        };
        Ok((event, report.value))
    }
}

trait ThenInto {
    fn then_into(self, acc: &CostSummary) -> CostSummary;
}

impl ThenInto for CostSummary {
    fn then_into(self, acc: &CostSummary) -> CostSummary {
        CostSummary {
            work: acc.work + self.work,
            h_relation: acc.h_relation + self.h_relation,
            supersteps: acc.supersteps + self.supersteps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(BspParams::new(4, 10, 100))
    }

    #[test]
    fn bindings_persist_across_loads() {
        let mut s = session();
        s.load("let x = 20 ;; let y = 22").unwrap();
        let events = s.load("x + y").unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].value.to_string(), "42");
        assert_eq!(events[0].scheme.to_string(), "int");
    }

    #[test]
    fn polymorphic_declarations() {
        let mut s = session();
        s.load("let id x = x").unwrap();
        assert_eq!(s.scheme_of("id").unwrap().to_string(), "∀'a.['a -> 'a]");
        let events = s.load("(id 1, id true)").unwrap();
        assert_eq!(events[0].value.to_string(), "(1, true)");
    }

    #[test]
    fn parallel_bindings_and_cost_accumulation() {
        let mut s = session();
        s.load("let v = mkpar (fun i -> i)").unwrap();
        assert_eq!(s.scheme_of("v").unwrap().to_string(), "int par");
        assert_eq!(s.total_cost().supersteps, 0);
        s.load("put (apply (mkpar (fun i -> fun x -> fun d -> x), v))")
            .unwrap();
        assert_eq!(s.total_cost().supersteps, 1);
        s.load("put (apply (mkpar (fun i -> fun x -> fun d -> x), v))")
            .unwrap();
        assert_eq!(s.total_cost().supersteps, 2);
    }

    #[test]
    fn type_errors_leave_the_session_unchanged() {
        let mut s = session();
        s.load("let x = 1").unwrap();
        let before_cost = s.total_cost().clone();
        // Second decl fails: nothing from this load is kept.
        let err = s.load("let y = 2 ;; let bad = fst (1, mkpar (fun i -> i)) ;;");
        assert!(err.is_err());
        assert!(s.scheme_of("y").is_none());
        assert_eq!(s.total_cost(), &before_cost);
        // x still present.
        assert_eq!(s.load("x").unwrap()[0].value.to_string(), "1");
    }

    #[test]
    fn rec_declarations() {
        let mut s = session();
        s.load("let rec fact n = if n = 0 then 1 else n * fact (n - 1)")
            .unwrap();
        assert_eq!(s.load("fact 6").unwrap()[0].value.to_string(), "720");
    }

    #[test]
    fn event_display() {
        let mut s = session();
        let ev = &s.load("let x = 41 + 1").unwrap()[0];
        assert_eq!(ev.to_string(), "val x : int = 42");
        let ev = &s.load("x").unwrap()[0];
        assert_eq!(ev.to_string(), "- : int = 42");
    }

    #[test]
    fn stdlib_prelude_loads_into_a_session() {
        let mut s = session();
        for def in bsml_std::combinators::ALL_DEFS {
            s.load(def).unwrap_or_else(|e| panic!("{def}: {e}"));
        }
        let events = s.load("bcast 1 (mkpar (fun i -> i * 100))").unwrap();
        assert_eq!(events[0].value.to_string(), "<|100, 100, 100, 100|>");
        assert_eq!(s.total_cost().supersteps, 1);
    }
}
