//! Interactive sessions: persistent toplevel bindings across inputs,
//! OCaml-toplevel style, with cumulative BSP cost accounting and
//! graceful degradation on runtime failures.
//!
//! ```
//! use bsml_core::session::Session;
//! use bsml_bsp::BspParams;
//!
//! let mut s = Session::new(BspParams::new(4, 10, 1000));
//! s.load("let replicate x = mkpar (fun pid -> x) ;;")?;
//! let events = s.load("replicate 7")?;
//! assert_eq!(events[0].value().unwrap().to_string(), "<|7, 7, 7, 7|>");
//! # Ok::<(), bsml_core::BsmlError>(())
//! ```
//!
//! **Failure semantics.** *Static* failures (parse or type errors)
//! abort the whole `load` and bind nothing — there is nothing
//! meaningful to recover from a phrase that never typechecked.
//! *Dynamic* failures (an evaluation error, a barrier timeout, a peer
//! failure) degrade gracefully instead: the failing phrase yields a
//! [`SessionEvent::PhraseFailed`] carrying the structured
//! [`EvalError`] and the [`Recovery`] taken, nothing is bound for it,
//! and subsequent phrases continue against the last good environment.

use bsml_ast::{Expr, Ident};
use bsml_bsp::{
    BspMachine, BspParams, CheckpointPolicy, CostSummary, Execution, RunReport, TransportConfig,
};
use bsml_eval::{Env, EvalError, Snapshot, Value};
use bsml_infer::{Inferencer, TypeEnv};
use bsml_obs::{MetricsSnapshot, Telemetry};
use bsml_syntax::parse_module_with;
use bsml_types::Scheme;

use crate::BsmlError;

/// What one successfully evaluated toplevel phrase produced.
#[derive(Clone, Debug)]
pub struct PhraseOutput {
    /// The bound name (`None` for a bare expression).
    pub name: Option<Ident>,
    /// The phrase's toplevel scheme.
    pub scheme: Scheme,
    /// The computed value.
    pub value: Value,
    /// The BSP cost of evaluating this phrase.
    pub cost: CostSummary,
    /// Cumulative telemetry metrics as of this phrase (sessions built
    /// with [`Session::with_telemetry`] only).
    metrics: Option<MetricsSnapshot>,
}

/// How the session recovered from a failed phrase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recovery {
    /// The phrase was skipped: nothing was bound, and subsequent
    /// phrases continue from the last good environment. (BSP
    /// determinism makes this sound — a failed phrase has no partial
    /// effect worth keeping.)
    Skipped,
    /// A supervised backend retried and eventually succeeded after
    /// this many attempts.
    Recovered {
        /// Total attempts made (≥ 2).
        attempts: u32,
    },
}

impl std::fmt::Display for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Recovery::Skipped => f.write_str("phrase skipped, session continues"),
            Recovery::Recovered { attempts } => {
                write!(f, "recovered after {attempts} attempts")
            }
        }
    }
}

/// A phrase that typechecked but failed at runtime.
#[derive(Clone, Debug)]
pub struct PhraseFailure {
    /// The name the phrase would have bound.
    pub name: Option<Ident>,
    /// The phrase's (perfectly good) toplevel scheme.
    pub scheme: Scheme,
    /// The structured runtime error.
    pub error: EvalError,
    /// What the session did about it.
    pub recovery: Recovery,
}

/// What one toplevel phrase produced: a value, or a contained
/// runtime failure the session recovered from.
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// The phrase evaluated to a value.
    Phrase(PhraseOutput),
    /// The phrase failed dynamically; the session degraded gracefully
    /// (see [`PhraseFailure::recovery`]).
    PhraseFailed(PhraseFailure),
}

impl SessionEvent {
    /// The bound name (`None` for bare expressions).
    #[must_use]
    pub fn name(&self) -> Option<&Ident> {
        match self {
            SessionEvent::Phrase(p) => p.name.as_ref(),
            SessionEvent::PhraseFailed(f) => f.name.as_ref(),
        }
    }

    /// The phrase's toplevel scheme (inferred even for phrases that
    /// later failed dynamically).
    #[must_use]
    pub fn scheme(&self) -> &Scheme {
        match self {
            SessionEvent::Phrase(p) => &p.scheme,
            SessionEvent::PhraseFailed(f) => &f.scheme,
        }
    }

    /// The computed value (`None` if the phrase failed).
    #[must_use]
    pub fn value(&self) -> Option<&Value> {
        match self {
            SessionEvent::Phrase(p) => Some(&p.value),
            SessionEvent::PhraseFailed(_) => None,
        }
    }

    /// The BSP cost of evaluating this phrase (`None` if it failed).
    #[must_use]
    pub fn cost(&self) -> Option<&CostSummary> {
        match self {
            SessionEvent::Phrase(p) => Some(&p.cost),
            SessionEvent::PhraseFailed(_) => None,
        }
    }

    /// The structured runtime error (`None` for successful phrases).
    #[must_use]
    pub fn error(&self) -> Option<&EvalError> {
        match self {
            SessionEvent::Phrase(_) => None,
            SessionEvent::PhraseFailed(f) => Some(&f.error),
        }
    }

    /// Whether this phrase failed.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self, SessionEvent::PhraseFailed(_))
    }

    /// The cumulative telemetry metrics (counters and histogram
    /// summaries) as of the end of this phrase. `None` unless the
    /// session was built with [`Session::with_telemetry`] (or the
    /// phrase failed).
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricsSnapshot> {
        match self {
            SessionEvent::Phrase(p) => p.metrics.as_ref(),
            SessionEvent::PhraseFailed(_) => None,
        }
    }
}

impl std::fmt::Display for SessionEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionEvent::Phrase(p) => match &p.name {
                Some(name) => write!(f, "val {name} : {} = {}", p.scheme, p.value),
                None => write!(f, "- : {} = {}", p.scheme, p.value),
            },
            SessionEvent::PhraseFailed(p) => {
                match &p.name {
                    Some(name) => write!(f, "val {name} : {} = <failed: {}>", p.scheme, p.error)?,
                    None => write!(f, "- : {} = <failed: {}>", p.scheme, p.error)?,
                }
                write!(f, " ({})", p.recovery)
            }
        }
    }
}

/// An interactive BSML toplevel.
///
/// Each successfully loaded phrase extends the typing and value
/// environments; costs accumulate (BSP cost composition is
/// sequential — exactly what the nesting restriction guarantees).
/// Phrases that fail *dynamically* are contained (see the module
/// docs): they bind nothing and the session survives them.
#[derive(Clone, Debug)]
pub struct Session {
    machine: BspMachine,
    tenv: TypeEnv,
    venv: Env,
    total: CostSummary,
    telemetry: Telemetry,
    checkpoint_policy: Option<CheckpointPolicy>,
    transport: TransportConfig,
    execution: Execution,
    flight_capacity: Option<usize>,
}

/// A point-in-time copy of a session's toplevel state: the typing
/// environment, a *deep, identity-free* copy of the value bindings
/// (see [`bsml_eval::Snapshot`] — mutating a `ref` cell after the
/// snapshot cannot retroactively change it), and the cumulative cost.
///
/// Restoring rolls the session back to exactly this point; phrases
/// loaded in between are forgotten.
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    tenv: TypeEnv,
    values: Snapshot,
    total: CostSummary,
}

impl SessionSnapshot {
    /// How many toplevel bindings the snapshot holds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no bindings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Crate-internal parts view for the byte codec
    /// ([`crate::persist`]).
    pub(crate) fn parts(&self) -> (&TypeEnv, &Snapshot, &CostSummary) {
        (&self.tenv, &self.values, &self.total)
    }

    /// Crate-internal assembly for the byte codec.
    pub(crate) fn from_parts(tenv: TypeEnv, values: Snapshot, total: CostSummary) -> Self {
        SessionSnapshot {
            tenv,
            values,
            total,
        }
    }
}

impl Session {
    /// A fresh session on the given machine (telemetry disabled).
    #[must_use]
    pub fn new(params: BspParams) -> Session {
        Session::with_telemetry(params, Telemetry::disabled())
    }

    /// A session whose whole pipeline records into `telemetry`: each
    /// `load` wraps its phrases in spans (`load` → `phrase` → `parse`
    /// / `infer` / `bsp.run` → per-processor `superstep`s), each
    /// [`SessionEvent`] carries the cumulative metrics snapshot, and
    /// contained runtime failures bump `session.phrase_failures`.
    ///
    /// Export the collected data through
    /// [`telemetry()`](Session::telemetry) — e.g.
    /// [`Telemetry::to_chrome_trace`] for a Perfetto-loadable trace.
    #[must_use]
    pub fn with_telemetry(params: BspParams, telemetry: Telemetry) -> Session {
        Session {
            machine: BspMachine::new(params).with_telemetry(telemetry.clone()),
            tenv: TypeEnv::new(),
            venv: Env::new(),
            total: CostSummary::default(),
            telemetry,
            checkpoint_policy: None,
            transport: TransportConfig::default(),
            execution: Execution::default(),
            flight_capacity: None,
        }
    }

    /// Configures the checkpoint policy this session *advertises* for
    /// distributed execution: frontends that hand phrases to a
    /// `bsml_bsp::DistMachine` read it via
    /// [`checkpoint_policy()`](Session::checkpoint_policy) and pass it
    /// to `DistMachine::with_checkpoints`. `None` (the default) means
    /// checkpointing stays off — the distributed hot path then
    /// allocates no store and takes no extra locks.
    #[must_use]
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Session {
        self.checkpoint_policy = Some(policy);
        self
    }

    /// The configured checkpoint policy, if any.
    #[must_use]
    pub fn checkpoint_policy(&self) -> Option<CheckpointPolicy> {
        self.checkpoint_policy
    }

    /// Configures the message transport this session *advertises* for
    /// distributed execution, mirroring
    /// [`with_checkpoint_policy`](Session::with_checkpoint_policy):
    /// frontends that hand phrases to a `bsml_bsp::DistMachine` read
    /// it via [`transport()`](Session::transport) and pass it to
    /// `DistMachine::with_transport`. The default is the lossless
    /// shared-memory fast path; a seeded
    /// [`TransportConfig::Lossy`] subjects distributed runs to
    /// reliable delivery over a chaotic network.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportConfig) -> Session {
        self.transport = transport;
        self
    }

    /// The configured distributed-execution transport.
    #[must_use]
    pub fn transport(&self) -> &TransportConfig {
        &self.transport
    }

    /// Configures the rank placement this session *advertises* for
    /// distributed execution, mirroring
    /// [`with_transport`](Session::with_transport): frontends that
    /// hand phrases to a `bsml_bsp::DistMachine` read it via
    /// [`execution()`](Session::execution) and pass it to
    /// `DistMachine::with_execution`. The default runs every rank as
    /// an OS thread in-process; [`Execution::Processes`] runs each
    /// rank as its own OS process over a Unix-domain socket, where
    /// rank death is real and survivable. Note the transport
    /// configuration is ignored under `Processes` — the socket
    /// substrate is lossless.
    #[must_use]
    pub fn with_execution(mut self, execution: Execution) -> Session {
        self.execution = execution;
        self
    }

    /// The configured distributed-execution rank placement.
    #[must_use]
    pub fn execution(&self) -> &Execution {
        &self.execution
    }

    /// Configures the flight-recorder ring capacity this session
    /// *advertises* for distributed execution, mirroring
    /// [`with_transport`](Session::with_transport): frontends that
    /// hand phrases to a `bsml_bsp::DistMachine` read it via
    /// [`flight_capacity()`](Session::flight_capacity) and pass it to
    /// `DistMachine::with_flight_recorder`, so failed runs leave a
    /// postmortem bundle behind. `None` (the default) defers to the
    /// machine's own `BSML_FLIGHT_CAPACITY` environment knob.
    #[must_use]
    pub fn with_flight_capacity(mut self, capacity: usize) -> Session {
        self.flight_capacity = Some(capacity);
        self
    }

    /// The advertised flight-recorder capacity, if any.
    #[must_use]
    pub fn flight_capacity(&self) -> Option<usize> {
        self.flight_capacity
    }

    /// Makes every phrase evaluation draw fuel from a shared
    /// [`bsml_eval::FuelCell`] in scheduler-granted slices instead of
    /// a flat budget. This is the hosting half of `bsml-serve`'s
    /// fuel-sliced preemption: the session's host thread parks between
    /// grants, and cancellation through the cell fails the phrase with
    /// [`EvalError::Cancelled`] — a contained dynamic failure like any
    /// other, so the session itself stays usable.
    #[must_use]
    pub fn with_fuel_cell(mut self, cell: std::sync::Arc<bsml_eval::FuelCell>) -> Session {
        self.machine = self.machine.with_fuel_cell(cell);
        self
    }

    /// Captures the session's toplevel state — a deep, identity-free
    /// copy of every binding (see [`SessionSnapshot`]).
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            tenv: self.tenv.clone(),
            values: Snapshot::of_env(&self.venv),
            total: self.total.clone(),
        }
    }

    /// Rolls the session back to `snapshot`: bindings, schemes, and
    /// cumulative cost all return to the captured point. Restoring is
    /// itself non-destructive — the same snapshot can be restored any
    /// number of times, and each restore produces fresh `ref` cells
    /// (no shared mutable state between restores).
    pub fn restore(&mut self, snapshot: &SessionSnapshot) {
        self.tenv = snapshot.tenv.clone();
        self.venv = snapshot.values.restore();
        self.total = snapshot.total.clone();
    }

    /// The telemetry handle this session records into (disabled for
    /// sessions built with [`Session::new`]).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The machine parameters.
    #[must_use]
    pub fn params(&self) -> &BspParams {
        self.machine.params()
    }

    /// Cumulative BSP cost of everything evaluated so far.
    #[must_use]
    pub fn total_cost(&self) -> &CostSummary {
        &self.total
    }

    /// Looks up the scheme of a bound toplevel name.
    #[must_use]
    pub fn scheme_of(&self, name: &str) -> Option<&Scheme> {
        self.tenv.lookup(&Ident::new(name))
    }

    /// Renders every toplevel binding as `name : scheme = value`, one
    /// per line, sorted by name. The output is deterministic, which is
    /// what lets durability tests compare a recovered session against
    /// a never-crashed oracle bit for bit.
    #[must_use]
    pub fn render_bindings(&self) -> String {
        let mut out = String::new();
        for name in self.tenv.domain() {
            let scheme = self.tenv.lookup(name).expect("name came from the domain");
            use std::fmt::Write;
            match self.venv.lookup(name) {
                Some(value) => {
                    let _ = writeln!(out, "{name} : {scheme} = {value}");
                }
                None => {
                    let _ = writeln!(out, "{name} : {scheme} = <unbound>");
                }
            }
        }
        out
    }

    /// Parses and processes a chunk of toplevel input (declarations
    /// and/or one final expression), returning one event per phrase.
    ///
    /// On a *static* error (parse, type) nothing is bound: the
    /// session state is unchanged (all-or-nothing per `load` call).
    /// A *dynamic* failure is contained instead: the phrase yields a
    /// [`SessionEvent::PhraseFailed`], binds nothing, and subsequent
    /// phrases continue against the last good environment.
    ///
    /// # Errors
    ///
    /// [`BsmlError::Parse`] or [`BsmlError::Type`]; the offending
    /// phrase is reported with its location in the input.
    pub fn load(&mut self, source: &str) -> Result<Vec<SessionEvent>, BsmlError> {
        let mut load_span = self.telemetry.span("load");
        let module = parse_module_with(source, &self.telemetry)?;
        load_span.set(
            "phrases",
            module.decls.len() + usize::from(module.body.is_some()),
        );
        // Work on copies; commit only when no static error aborts us.
        let mut tenv = self.tenv.clone();
        let mut venv = self.venv.clone();
        let mut total = self.total.clone();
        let mut events = Vec::new();

        for decl in &module.decls {
            let event = self.process(&tenv, &venv, &mut total, Some(&decl.name), &decl.expr)?;
            if let SessionEvent::Phrase(output) = &event {
                tenv = tenv.extend(decl.name.clone(), output.scheme.clone());
                venv = venv.bind(decl.name.clone(), output.value.clone());
            }
            events.push(event);
        }
        if let Some(body) = &module.body {
            let event = self.process(&tenv, &venv, &mut total, None, body)?;
            events.push(event);
        }

        self.tenv = tenv;
        self.venv = venv;
        self.total = total;
        Ok(events)
    }

    fn process(
        &self,
        tenv: &TypeEnv,
        venv: &Env,
        total: &mut CostSummary,
        name: Option<&Ident>,
        expr: &Expr,
    ) -> Result<SessionEvent, BsmlError> {
        let mut phrase_span = self.telemetry.span("phrase");
        if let Some(name) = name {
            phrase_span.set("name", name.to_string());
        }
        let inference = {
            let _infer_span = self.telemetry.span("infer");
            Inferencer::new()
                .with_telemetry(self.telemetry.clone())
                .run(tenv, expr)?
        };
        // Toplevel bindings are retained values, not hidden
        // evaluations, so no (Let)-style side condition applies
        // between phrases; the phrase itself was fully checked.
        // Residual clauses about forgotten instantiation variables
        // are dropped (they are independently satisfiable).
        let mut keep = inference.ty.free_vars();
        for v in tenv.free_vars() {
            if !keep.contains(&v) {
                keep.push(v);
            }
        }
        let relevant = inference.solution.restrict(&keep);
        let scheme = Scheme::generalize(
            inference.ty.clone(),
            relevant.to_constraint(),
            &tenv.free_vars(),
        )
        .normalize();

        // A dynamic failure is contained: the typechecked phrase is
        // reported as failed (with its scheme and the structured
        // error) and the session continues from the last good
        // environment — determinism means nothing partial survives a
        // failed phrase, so skipping it is the whole recovery.
        let report: RunReport = match self.machine.run_with_env(venv, expr) {
            Ok(report) => report,
            Err(error) => {
                phrase_span.set("error", error.to_string());
                drop(phrase_span);
                self.telemetry.counter_add("session.phrase_failures", 1);
                return Ok(SessionEvent::PhraseFailed(PhraseFailure {
                    name: name.cloned(),
                    scheme,
                    error,
                    recovery: Recovery::Skipped,
                }));
            }
        };
        *total = CostSummary::from_records(&report.trace).then_into(total);

        drop(phrase_span);
        Ok(SessionEvent::Phrase(PhraseOutput {
            name: name.cloned(),
            scheme,
            value: report.value,
            cost: report.cost,
            metrics: self
                .telemetry
                .is_enabled()
                .then(|| self.telemetry.metrics()),
        }))
    }
}

trait ThenInto {
    fn then_into(self, acc: &CostSummary) -> CostSummary;
}

impl ThenInto for CostSummary {
    fn then_into(self, acc: &CostSummary) -> CostSummary {
        CostSummary {
            work: acc.work + self.work,
            h_relation: acc.h_relation + self.h_relation,
            supersteps: acc.supersteps + self.supersteps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(BspParams::new(4, 10, 100))
    }

    fn value_of(ev: &SessionEvent) -> String {
        ev.value().expect("phrase succeeded").to_string()
    }

    #[test]
    fn bindings_persist_across_loads() {
        let mut s = session();
        s.load("let x = 20 ;; let y = 22").unwrap();
        let events = s.load("x + y").unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(value_of(&events[0]), "42");
        assert_eq!(events[0].scheme().to_string(), "int");
    }

    #[test]
    fn polymorphic_declarations() {
        let mut s = session();
        s.load("let id x = x").unwrap();
        assert_eq!(s.scheme_of("id").unwrap().to_string(), "∀'a.['a -> 'a]");
        let events = s.load("(id 1, id true)").unwrap();
        assert_eq!(value_of(&events[0]), "(1, true)");
    }

    #[test]
    fn parallel_bindings_and_cost_accumulation() {
        let mut s = session();
        s.load("let v = mkpar (fun i -> i)").unwrap();
        assert_eq!(s.scheme_of("v").unwrap().to_string(), "int par");
        assert_eq!(s.total_cost().supersteps, 0);
        s.load("put (apply (mkpar (fun i -> fun x -> fun d -> x), v))")
            .unwrap();
        assert_eq!(s.total_cost().supersteps, 1);
        s.load("put (apply (mkpar (fun i -> fun x -> fun d -> x), v))")
            .unwrap();
        assert_eq!(s.total_cost().supersteps, 2);
    }

    #[test]
    fn type_errors_leave_the_session_unchanged() {
        let mut s = session();
        s.load("let x = 1").unwrap();
        let before_cost = s.total_cost().clone();
        // Second decl fails statically: nothing from this load is kept.
        let err = s.load("let y = 2 ;; let bad = fst (1, mkpar (fun i -> i)) ;;");
        assert!(err.is_err());
        assert!(s.scheme_of("y").is_none());
        assert_eq!(s.total_cost(), &before_cost);
        // x still present.
        assert_eq!(value_of(&s.load("x").unwrap()[0]), "1");
    }

    #[test]
    fn runtime_failures_degrade_gracefully() {
        let mut s = session();
        s.load("let x = 10").unwrap();
        // Phrase 2 typechecks but dies at runtime; phrases 1 and 3
        // still evaluate, and phrase 3 sees phrase 1's binding.
        let events = s
            .load("let a = x + 1 ;; let bad = 1 / 0 ;; let b = a * 2 ;;")
            .unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(value_of(&events[0]), "11");
        assert!(events[1].is_failure());
        assert_eq!(events[1].error(), Some(&EvalError::DivisionByZero));
        assert_eq!(events[1].name().unwrap().to_string(), "bad");
        assert_eq!(events[1].scheme().to_string(), "int");
        assert_eq!(value_of(&events[2]), "22");
        // The failed phrase bound nothing; the good ones did.
        assert!(s.scheme_of("bad").is_none());
        assert_eq!(s.scheme_of("a").unwrap().to_string(), "int");
        assert_eq!(s.scheme_of("b").unwrap().to_string(), "int");
        // And the session keeps working afterwards.
        assert_eq!(value_of(&s.load("a + b").unwrap()[0]), "33");
    }

    #[test]
    fn failed_phrases_cost_nothing_and_count_in_telemetry() {
        let tel = Telemetry::enabled_logical();
        let mut s = Session::with_telemetry(BspParams::new(2, 1, 10), tel.clone());
        let before = s.total_cost().clone();
        let events = s.load("1 / 0").unwrap();
        assert!(events[0].is_failure());
        assert!(events[0].value().is_none());
        assert!(events[0].cost().is_none());
        assert_eq!(s.total_cost(), &before);
        assert_eq!(tel.counter_value("session.phrase_failures"), 1);
        match &events[0] {
            SessionEvent::PhraseFailed(f) => assert_eq!(f.recovery, Recovery::Skipped),
            SessionEvent::Phrase(_) => panic!("expected a failure"),
        }
    }

    #[test]
    fn rec_declarations() {
        let mut s = session();
        s.load("let rec fact n = if n = 0 then 1 else n * fact (n - 1)")
            .unwrap();
        assert_eq!(value_of(&s.load("fact 6").unwrap()[0]), "720");
    }

    #[test]
    fn event_display() {
        let mut s = session();
        let ev = &s.load("let x = 41 + 1").unwrap()[0];
        assert_eq!(ev.to_string(), "val x : int = 42");
        let ev = &s.load("x").unwrap()[0];
        assert_eq!(ev.to_string(), "- : int = 42");
        let ev = &s.load("let boom = 1 / 0").unwrap()[0];
        let shown = ev.to_string();
        assert!(shown.contains("val boom : int"), "{shown}");
        assert!(shown.contains("division by zero"), "{shown}");
        assert!(shown.contains("session continues"), "{shown}");
    }

    #[test]
    fn snapshot_restore_rolls_back_bindings_and_cost() {
        let mut s = session();
        s.load("let x = 1 ;; let c = ref 10").unwrap();
        s.load("put (mkpar (fun j -> fun i -> j))").unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        let cost_at_snap = s.total_cost().clone();

        // Mutate state past the snapshot: a new binding, a cell
        // assignment, and more accumulated cost.
        s.load("let y = 2 ;; c := 99").unwrap();
        s.load("put (mkpar (fun j -> fun i -> j))").unwrap();
        assert_eq!(s.total_cost().supersteps, cost_at_snap.supersteps + 1);

        s.restore(&snap);
        assert!(s.scheme_of("y").is_none(), "post-snapshot binding kept");
        assert_eq!(s.total_cost(), &cost_at_snap);
        // The cell's mutation was rolled back too: the snapshot held a
        // deep copy, not a shared Rc.
        assert_eq!(value_of(&s.load("!c").unwrap()[0]), "10");
        assert_eq!(value_of(&s.load("x").unwrap()[0]), "1");

        // Restoring twice yields independent cells.
        s.load("c := 77").unwrap();
        s.restore(&snap);
        assert_eq!(value_of(&s.load("!c").unwrap()[0]), "10");
    }

    #[test]
    fn checkpoint_policy_is_configurable() {
        let s = session();
        assert_eq!(s.checkpoint_policy(), None);
        let s = session().with_checkpoint_policy(CheckpointPolicy::every(4));
        assert_eq!(s.checkpoint_policy().map(|p| p.interval()), Some(4));
    }

    #[test]
    fn transport_is_configurable() {
        use bsml_bsp::LossyConfig;
        let s = session();
        assert_eq!(s.transport(), &TransportConfig::SharedMem);
        let s = session().with_transport(TransportConfig::Lossy(
            LossyConfig::new(42).drop(100).corrupt(50),
        ));
        match s.transport() {
            TransportConfig::Lossy(cfg) => {
                assert_eq!(cfg.seed, 42);
                assert_eq!(cfg.drop_permille, 100);
                assert_eq!(cfg.corrupt_permille, 50);
            }
            other => panic!("expected a lossy transport, got {other:?}"),
        }
    }

    #[test]
    fn execution_is_configurable() {
        use bsml_bsp::ProcessConfig;
        let s = session();
        assert!(matches!(s.execution(), Execution::InProcess));
        let s = session().with_execution(Execution::Processes(ProcessConfig::default()));
        match s.execution() {
            Execution::Processes(cfg) => assert!(cfg.kills.is_empty()),
            other => panic!("expected process placement, got {other:?}"),
        }
    }

    #[test]
    fn flight_capacity_is_configurable() {
        let s = session();
        assert_eq!(s.flight_capacity(), None);
        let s = session().with_flight_capacity(512);
        assert_eq!(s.flight_capacity(), Some(512));
    }

    #[test]
    fn stdlib_prelude_loads_into_a_session() {
        let mut s = session();
        for def in bsml_std::combinators::ALL_DEFS {
            s.load(def).unwrap_or_else(|e| panic!("{def}: {e}"));
        }
        let events = s.load("bcast 1 (mkpar (fun i -> i * 100))").unwrap();
        assert_eq!(value_of(&events[0]), "<|100, 100, 100, 100|>");
        assert_eq!(s.total_cost().supersteps, 1);
    }
}
