//! The BSML front door: parse → typecheck → run, in one call.
//!
//! This crate ties the pipeline together:
//!
//! * [`bsml_syntax`] parses concrete mini-BSML,
//! * [`bsml_infer`] applies the paper's constrained type system
//!   (rejecting every nesting of parallel vectors statically),
//! * [`bsml_bsp`] executes accepted programs on a simulated BSP
//!   machine and reports the `W + H·g + S·l` cost.
//!
//! ```
//! use bsml_core::{Bsml, BsmlError};
//! use bsml_bsp::BspParams;
//!
//! let bsml = Bsml::new(BspParams::new(4, 10, 1000));
//!
//! // A correct broadcast runs and is costed:
//! let out = bsml.run(
//!     "let recv = put (mkpar (fun j -> fun i -> j * j)) in
//!      apply (recv, mkpar (fun i -> 2))")?;
//! assert_eq!(out.report.value.to_string(), "<|4, 4, 4, 4|>");
//! assert_eq!(out.report.cost.supersteps, 1);
//!
//! // The paper's example2 never reaches the machine:
//! let err = bsml.run("mkpar (fun pid -> let v = mkpar (fun i -> i) in pid)");
//! assert!(matches!(err, Err(BsmlError::Type(_))));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod knobs;
pub mod persist;
pub mod session;

use std::fmt;

use bsml_ast::Expr;
use bsml_bsp::{BspMachine, BspParams, RunReport};
use bsml_eval::EvalError;
use bsml_infer::{Inference, Inferencer, TypeError};
use bsml_syntax::ParseError;
use bsml_types::Scheme;

pub use session::{Session, SessionEvent, SessionSnapshot};

pub use bsml_ast as ast;
pub use bsml_bsp as bsp;
pub use bsml_eval as eval;
pub use bsml_infer as infer;
pub use bsml_obs as obs;
pub use bsml_std as std_lib;
pub use bsml_syntax as syntax;
pub use bsml_types as types;
pub use bsml_vm as vm;

/// Any failure of the pipeline.
#[derive(Clone, Debug)]
pub enum BsmlError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// The type system rejected the program.
    Type(TypeError),
    /// Evaluation failed (only reachable via
    /// [`Bsml::run_unchecked`], fuel exhaustion, or division by
    /// zero — well-typed programs cannot get dynamically stuck).
    Eval(EvalError),
}

impl BsmlError {
    /// Renders the error against the source, with a caret marker for
    /// located errors.
    #[must_use]
    pub fn render(&self, source: &str) -> String {
        match self {
            BsmlError::Parse(e) => e.render(source),
            BsmlError::Type(e) => e.render(source),
            BsmlError::Eval(e) => format!("runtime error: {e}"),
        }
    }
}

impl fmt::Display for BsmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BsmlError::Parse(e) => write!(f, "{e}"),
            BsmlError::Type(e) => write!(f, "{e}"),
            BsmlError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BsmlError {}

impl From<ParseError> for BsmlError {
    fn from(e: ParseError) -> Self {
        BsmlError::Parse(e)
    }
}
impl From<TypeError> for BsmlError {
    fn from(e: TypeError) -> Self {
        BsmlError::Type(e)
    }
}
impl From<EvalError> for BsmlError {
    fn from(e: EvalError) -> Self {
        BsmlError::Eval(e)
    }
}

/// The static half of a pipeline run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The parsed program.
    pub ast: Expr,
    /// The inference result (type, constraint, canonical solution).
    pub inference: Inference,
}

impl CheckReport {
    /// The program's closed toplevel scheme, normalized.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.inference.scheme()
    }
}

/// The full outcome of checking and running a program.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The static results.
    pub check: CheckReport,
    /// The simulated execution report (value, cost, trace).
    pub report: RunReport,
}

/// A configured BSML implementation: type checker + simulated BSP
/// machine.
#[derive(Clone, Debug)]
pub struct Bsml {
    machine: BspMachine,
}

impl Bsml {
    /// An implementation running on the given machine.
    #[must_use]
    pub fn new(params: BspParams) -> Bsml {
        Bsml {
            machine: BspMachine::new(params),
        }
    }

    /// Overrides the evaluator fuel.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Bsml {
        self.machine = self.machine.with_fuel(fuel);
        self
    }

    /// The machine parameters.
    #[must_use]
    pub fn params(&self) -> &BspParams {
        self.machine.params()
    }

    /// Starts an interactive [`session::Session`] on this machine.
    #[must_use]
    pub fn session(&self) -> session::Session {
        session::Session::new(*self.machine.params())
    }

    /// Parses and typechecks a program.
    ///
    /// # Errors
    ///
    /// [`BsmlError::Parse`] or [`BsmlError::Type`].
    pub fn check(&self, source: &str) -> Result<CheckReport, BsmlError> {
        let ast = bsml_syntax::parse(source)?;
        let inference = bsml_infer::infer(&ast)?;
        Ok(CheckReport { ast, inference })
    }

    /// Parses, typechecks and renders the typing derivation —
    /// the mechanical counterpart of the paper's Figures 8–10.
    ///
    /// # Errors
    ///
    /// [`BsmlError::Parse`] or [`BsmlError::Type`].
    pub fn derivation(&self, source: &str) -> Result<String, BsmlError> {
        let ast = bsml_syntax::parse(source)?;
        let inference = Inferencer::new()
            .with_derivation(true)
            .run(&bsml_infer::initial_env(), &ast)?;
        Ok(inference
            .derivation
            .expect("derivation recording was enabled")
            .render())
    }

    /// Parses, typechecks, then runs the program on the simulated
    /// machine.
    ///
    /// # Errors
    ///
    /// Any [`BsmlError`].
    pub fn run(&self, source: &str) -> Result<RunOutcome, BsmlError> {
        let check = self.check(source)?;
        let report = self.machine.run(&check.ast)?;
        Ok(RunOutcome { check, report })
    }

    /// Parses, typechecks, compiles to bytecode and runs on the
    /// abstract machine. Faster than the tree-walking pipeline but
    /// without cost instrumentation (use [`Bsml::run`] for superstep
    /// traces).
    ///
    /// # Errors
    ///
    /// Any [`BsmlError`]; compile errors cannot occur on typechecked
    /// programs (they are closed and vector-literal-free) and are
    /// reported as evaluation errors if they somehow do.
    pub fn run_vm(&self, source: &str) -> Result<bsml_vm::MValue, BsmlError> {
        let check = self.check(source)?;
        let program = bsml_vm::compile(&check.ast)
            .map_err(|e| BsmlError::Eval(EvalError::NotAFunction(e.to_string())))?;
        bsml_vm::Vm::new(self.machine.params().p)
            .run(&program)
            .map_err(BsmlError::Eval)
    }

    /// Runs a program *without* typechecking — used to demonstrate
    /// what the type system protects against (dynamic nesting errors,
    /// mismatched barriers).
    ///
    /// # Errors
    ///
    /// [`BsmlError::Parse`] or [`BsmlError::Eval`].
    pub fn run_unchecked(&self, source: &str) -> Result<RunReport, BsmlError> {
        let ast = bsml_syntax::parse(source)?;
        Ok(self.machine.run(&ast)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bsml() -> Bsml {
        Bsml::new(BspParams::new(4, 10, 1000))
    }

    #[test]
    fn check_reports_scheme() {
        let report = bsml().check("fun x -> x").unwrap();
        assert_eq!(report.scheme().to_string(), "∀'a.['a -> 'a]");
    }

    #[test]
    fn run_produces_value_and_cost() {
        let out = bsml().run("mkpar (fun i -> i + 1)").unwrap();
        assert_eq!(out.report.value.to_string(), "<|1, 2, 3, 4|>");
        assert_eq!(out.report.cost.supersteps, 0);
        assert_eq!(out.check.inference.ty.to_string(), "int par");
    }

    #[test]
    fn parse_errors_surface() {
        let err = bsml().check("let x = in 1").unwrap_err();
        assert!(matches!(err, BsmlError::Parse(_)));
        assert!(err.render("let x = in 1").contains('^'));
    }

    #[test]
    fn type_errors_stop_before_the_machine() {
        let err = bsml().run("fst (1, mkpar (fun i -> i))").unwrap_err();
        assert!(matches!(err, BsmlError::Type(_)));
    }

    #[test]
    fn unchecked_runs_show_dynamic_nesting() {
        let err = bsml()
            .run_unchecked("mkpar (fun pid -> let v = mkpar (fun i -> i) in pid)")
            .unwrap_err();
        match err {
            BsmlError::Eval(EvalError::NestedParallelism) => {}
            other => panic!("expected dynamic nesting, got {other}"),
        }
    }

    #[test]
    fn unchecked_accepts_what_the_type_system_overapproximates() {
        // Figure 10's program evaluates fine dynamically; the static
        // rejection is about the cost model.
        let report = bsml().run_unchecked("fst (1, mkpar (fun i -> i))").unwrap();
        assert_eq!(report.value.to_string(), "1");
    }

    #[test]
    fn derivation_renders() {
        let d = bsml().derivation("1 + 1").unwrap();
        assert!(d.contains("(App)"));
        assert!(d.contains("(Const) ⊢ 1 : int"));
    }

    #[test]
    fn run_vm_matches_run() {
        let src = "let r = put (mkpar (fun j -> fun d -> j * j)) in
                   apply (r, mkpar (fun i -> i))";
        let tree = bsml().run(src).unwrap().report.value.to_string();
        let vm = bsml().run_vm(src).unwrap().to_string();
        assert_eq!(tree, vm);
    }

    #[test]
    fn run_vm_rejects_statically_too() {
        assert!(matches!(
            bsml().run_vm("fst (1, mkpar (fun i -> i))"),
            Err(BsmlError::Type(_))
        ));
    }

    #[test]
    fn eval_errors_are_wrapped() {
        let err = bsml().run("1 / 0").unwrap_err();
        assert!(matches!(err, BsmlError::Eval(EvalError::DivisionByZero)));
        assert!(err.render("1 / 0").contains("division by zero"));
    }

    #[test]
    fn display_of_errors() {
        let err = bsml().check("x").unwrap_err();
        assert_eq!(err.to_string(), "unbound variable `x`");
    }
}
