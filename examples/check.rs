//! A command-line type checker and runner for mini-BSML.
//!
//! ```sh
//! # Typecheck (and run) an expression:
//! cargo run --example check -- 'mkpar (fun i -> i * i)'
//!
//! # Show the typing derivation (add --latex for a mathpartir tree):
//! cargo run --example check -- --derivation 'fst (mkpar (fun i -> i), 1)'
//!
//! # Choose the machine: --p 8 --g 20 --l 5000
//! cargo run --example check -- --p 8 'put (mkpar (fun j -> fun i -> j))'
//! ```

use bsml_bsp::{trace::render_report, BspParams};
use bsml_core::Bsml;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut p = 4usize;
    let mut g = 10u64;
    let mut l = 1000u64;
    let mut derivation = false;
    let mut latex = false;
    let mut bytecode = false;

    let mut source = None;
    while let Some(arg) = args.first().cloned() {
        match arg.as_str() {
            "--file" => {
                args.remove(0);
                if args.is_empty() {
                    eprintln!("--file needs a path");
                    std::process::exit(2);
                }
                let path = args.remove(0);
                match std::fs::read_to_string(&path) {
                    Ok(text) => source = Some(text),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        std::process::exit(2);
                    }
                }
                break;
            }
            "--p" => {
                args.remove(0);
                p = take_number(&mut args, "--p") as usize;
            }
            "--g" => {
                args.remove(0);
                g = take_number(&mut args, "--g");
            }
            "--l" => {
                args.remove(0);
                l = take_number(&mut args, "--l");
            }
            "--derivation" => {
                args.remove(0);
                derivation = true;
            }
            "--latex" => {
                args.remove(0);
                derivation = true;
                latex = true;
            }
            "--bytecode" => {
                args.remove(0);
                bytecode = true;
            }
            _ => {
                source = Some(args.remove(0));
                break;
            }
        }
    }

    let Some(source) = source else {
        eprintln!(
            "usage: check [--p N] [--g N] [--l N] [--derivation] \
             ('<program>' | --file prog.bsml)"
        );
        std::process::exit(2);
    };

    let bsml = Bsml::new(BspParams::new(p, g, l));

    if bytecode {
        let result = bsml.check(&source).and_then(|check| {
            bsml_vm::compile(&check.ast).map_err(|e| {
                bsml_core::BsmlError::Eval(bsml_core::eval::EvalError::NotAFunction(e.to_string()))
            })
        });
        match result {
            Ok(program) => {
                println!(
                    "{} instructions in {} blocks\n",
                    program.instruction_count(),
                    program.blocks.len()
                );
                print!("{program}");
            }
            Err(err) => {
                eprintln!("{}", err.render(&source));
                std::process::exit(1);
            }
        }
        return;
    }

    if derivation {
        let result = (|| {
            let ast = bsml_core::syntax::parse(&source)?;
            let inf = bsml_core::infer::Inferencer::new()
                .with_derivation(true)
                .run(&bsml_core::infer::initial_env(), &ast)
                .map_err(bsml_core::BsmlError::from)?;
            let tree = inf.derivation.expect("recording enabled");
            Ok::<_, bsml_core::BsmlError>(if latex {
                tree.to_latex()
            } else {
                tree.render()
            })
        })();
        match result {
            Ok(d) => print!("{d}"),
            Err(err) => {
                eprintln!("{}", err.render(&source));
                std::process::exit(1);
            }
        }
        return;
    }

    // Toplevel modules (with `;;` declarations) go through a session;
    // plain expressions through the one-shot pipeline (with a full
    // superstep trace).
    if bsml_syntax::parse(&source).is_ok() {
        match bsml.run(&source) {
            Ok(out) => {
                println!("type   : {}", out.check.scheme());
                println!("value  : {}", out.report.value);
                println!();
                print!("{}", render_report(&out.report));
            }
            Err(err) => {
                eprintln!("{}", err.render(&source));
                std::process::exit(1);
            }
        }
        return;
    }
    let mut session = bsml.session();
    match session.load(&source) {
        Ok(events) => {
            for ev in events {
                match ev.cost() {
                    Some(cost) => println!("{ev}   (cost {cost})"),
                    None => println!("{ev}"),
                }
            }
            println!("total: {}", session.total_cost());
        }
        Err(err) => {
            eprintln!("{}", err.render(&source));
            std::process::exit(1);
        }
    }
}

fn take_number(args: &mut Vec<String>, flag: &str) -> u64 {
    if args.is_empty() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let raw = args.remove(0);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: `{raw}` is not a number");
        std::process::exit(2);
    })
}
