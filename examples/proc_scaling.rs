//! The EXPERIMENTS.md A6 measurement: one workload, three execution
//! substrates (lockstep simulator, thread-per-rank shared memory,
//! process-per-rank over a Unix socket), swept over p — so the cost
//! of real process isolation is a number, not a vibe.
//!
//! ```console
//! $ cargo build --release --bin bsml-rank   # the worker the launcher spawns
//! $ cargo run --release --example proc_scaling
//! ```
//!
//! The worker lands in `target/release/`, one directory above the
//! example binary, where the launcher's sibling search finds it
//! (`BSML_RANK_BIN` overrides).

use std::time::{Duration, Instant};

use bsml_bsp::{BspMachine, BspParams, DistMachine, Execution, ProcessConfig};
use bsml_syntax::parse;

/// Five chained total exchanges — the checkpoint grid's workload
/// (`tests/process_chaos.rs`), heavy enough on communication that the
/// transport is what's being measured.
const EXCHANGE_5: &str = "
    let sum = mkpar (fun i -> fun t ->
        let acc = ref 0 in
        (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
        !acc) in
    let next = fun v -> put (apply (mkpar (fun j -> fun v -> fun i -> v + j + 1), v)) in
    let v1 = apply (sum, put (mkpar (fun j -> fun i -> j + i + 1))) in
    let v2 = apply (sum, next v1) in
    let v3 = apply (sum, next v2) in
    let v4 = apply (sum, next v3) in
    apply (sum, next v4)";

const ITERS: usize = 5;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn time<F: FnMut() -> String>(mut f: F) -> (String, Duration) {
    let mut value = String::new();
    let mut samples = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        value = f();
        samples.push(t0.elapsed());
    }
    (value, median(samples))
}

fn main() {
    let e = parse(EXCHANGE_5).expect("workload parses");
    println!("p   lockstep    threads     processes   (median of {ITERS}, value cross-checked)");
    for p in [2usize, 4, 8, 16] {
        let (lock_v, lockstep) = time(|| {
            BspMachine::new(BspParams::new(p, 1, 1))
                .run(&e)
                .expect("lockstep run")
                .value
                .to_string()
        });
        let (thr_v, threads) = time(|| {
            DistMachine::new(p)
                .run(&e)
                .expect("thread run")
                .value
                .to_string()
        });
        let (proc_v, processes) = time(|| {
            DistMachine::new(p)
                .with_execution(Execution::Processes(ProcessConfig::default()))
                .run(&e)
                .expect("process run")
                .value
                .to_string()
        });
        assert_eq!(lock_v, thr_v, "p={p}: thread backend diverged");
        assert_eq!(lock_v, proc_v, "p={p}: process backend diverged");
        println!("{p:<3} {lockstep:<11?} {threads:<11?} {processes:<11?}");
    }
}
