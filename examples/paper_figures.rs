//! Regenerates the paper's figures mechanically:
//!
//! * Figure 6 — the `TC` table of constant/operator schemes,
//! * Figures 8–10 — the typing judgments of `example2` and the two
//!   mixed projections,
//! * the complete §2.1/§4 example corpus with verdicts.
//!
//! ```sh
//! cargo run --example paper_figures
//! ```

use bsml_ast::Op;
use bsml_bsp::BspParams;
use bsml_core::{Bsml, BsmlError};
use bsml_infer::env::op_scheme;
use bsml_std::{paper_corpus, Verdict};

fn main() {
    let bsml = Bsml::new(BspParams::new(3, 10, 1000));

    println!("=== Figure 6: the initial environment TC ===\n");
    for op in Op::ALL {
        println!("  TC({:<7}) = {}", op.to_string(), op_scheme(op));
    }

    println!("\n=== Figure 9: fst (mkpar (fun i -> i), 1) — accepted ===\n");
    match bsml.derivation("fst (mkpar (fun i -> i), 1)") {
        Ok(d) => print!("{d}"),
        Err(e) => println!("unexpected: {e}"),
    }

    println!("\n=== Figure 10: fst (1, mkpar (fun i -> i)) — rejected ===\n");
    show_rejection(&bsml, "fst (1, mkpar (fun i -> i))");

    println!("\n=== Figure 8: example2 — rejected ===\n");
    show_rejection(
        &bsml,
        "mkpar (fun pid -> let this = mkpar (fun pid -> pid) in pid)",
    );
    println!("\n(the inner let in isolation, with pid at int — the exact Figure 8 judgment)\n");
    show_rejection(&bsml, "(fun pid -> let this = mkpar (fun i -> i) in pid) 7");

    println!("\n=== The full paper corpus ===\n");
    for entry in paper_corpus() {
        let verdict = match (entry.verdict, bsml.check(&entry.source)) {
            (Verdict::Accept, Ok(check)) => {
                format!("accepted : {}", check.scheme())
            }
            (Verdict::Reject, Err(BsmlError::Type(err))) => {
                format!("rejected : {err}")
            }
            (expected, got) => format!(
                "MISMATCH: paper says {expected:?}, checker says {}",
                match got {
                    Ok(c) => format!("accept at {}", c.inference.ty),
                    Err(e) => format!("error {e}"),
                }
            ),
        };
        println!(
            "  {:<28} [{}]\n      {verdict}\n",
            entry.name, entry.paper_ref
        );
    }
}

fn show_rejection(bsml: &Bsml, source: &str) {
    match bsml.check(source) {
        Err(err) => println!("{}", err.render(source)),
        Ok(check) => println!("unexpectedly accepted at {}", check.inference.ty),
    }
}
