//! Dumps a Perfetto-loadable Chrome trace of an instrumented session —
//! the README's observability example, runnable.

use bsml_bsp::BspParams;
use bsml_core::obs::Telemetry;
use bsml_core::session::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = Telemetry::enabled();
    let mut s = Session::with_telemetry(BspParams::new(4, 10, 1000), telemetry.clone());
    s.load(
        "let recv = put (mkpar (fun j -> fun i -> j * j)) in
         apply (recv, mkpar (fun i -> 2))",
    )?;

    println!("{}", telemetry.render_tree());
    assert_eq!(telemetry.counter_value("bsp.supersteps"), 1);

    let path = std::env::temp_dir().join("bsml-trace.json");
    std::fs::write(&path, telemetry.to_chrome_trace())?;
    println!(
        "wrote {} — load it in https://ui.perfetto.dev",
        path.display()
    );
    Ok(())
}
