//! Runs the whole standard library of BSP collectives, printing each
//! workload's result, superstep trace and priced time on three
//! machine profiles.
//!
//! ```sh
//! cargo run --release --example collectives
//! ```

use bsml_bsp::trace::{render_report, render_timeline};
use bsml_bsp::{BspMachine, BspParams};
use bsml_std::workloads;

fn main() {
    let p = 4;
    let machines = [
        ("multicore", BspParams::multicore(p)),
        ("tightly-coupled", BspParams::tightly_coupled(p)),
        ("ethernet-cluster", BspParams::ethernet_cluster(p)),
    ];

    for w in workloads::all_basic() {
        println!("── {} ───────────────────────────────", w.name);
        println!("   {}", w.description);
        let report = BspMachine::new(machines[0].1)
            .run(&w.ast())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        println!("   value: {}", report.value);
        println!();
        for line in render_report(&report).lines() {
            println!("   {line}");
        }
        println!();
        for line in render_timeline(&report).lines() {
            println!("   {line}");
        }
        // The abstract cost (W, H, S) is machine-independent; price
        // it on all three profiles.
        print!("   priced:");
        for (name, params) in &machines {
            print!("  {name} = {}", report.cost.time(params));
        }
        println!("\n");
    }
}
