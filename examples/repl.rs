//! An interactive BSML toplevel (REPL) on a simulated BSP machine.
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Enter phrases terminated by `;;` (or a single line ending without
//! one). Commands: `#cost` shows the cumulative BSP cost, `#prelude`
//! loads the standard-library combinators, `#quit` exits.

use std::io::{BufRead, Write};

use bsml_bsp::BspParams;
use bsml_core::session::Session;

fn main() {
    let p = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let mut session = Session::new(BspParams::new(p, 10, 1000));
    println!(
        "BSML toplevel on a simulated BSP machine {} — #prelude, #cost, #quit",
        session.params()
    );

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("bsml> ");
        } else {
            print!("    | ");
        }
        std::io::stdout().flush().ok();

        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();

        if buffer.is_empty() {
            match trimmed {
                "#quit" => break,
                "#cost" => {
                    println!("total: {}", session.total_cost());
                    continue;
                }
                "#prelude" => {
                    for def in bsml_std::combinators::ALL_DEFS {
                        if let Err(e) = session.load(def) {
                            println!("prelude error: {e}");
                        }
                    }
                    println!("standard library loaded");
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }

        buffer.push_str(&line);
        // A phrase ends at `;;` or at a line that parses on its own.
        let complete =
            buffer.trim_end().ends_with(";;") || bsml_syntax::parse_module(&buffer).is_ok();
        if !complete {
            continue;
        }

        let input = std::mem::take(&mut buffer);
        match session.load(&input) {
            Ok(events) => {
                for ev in events {
                    match ev.cost() {
                        Some(cost) => println!("{ev}   (cost {cost})"),
                        None => println!("{ev}"),
                    }
                }
            }
            Err(err) => println!("{}", err.render(&input)),
        }
    }
    println!("\ntotal session cost: {}", session.total_cost());
}
