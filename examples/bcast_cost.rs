//! Experiment E1 — the paper's equation (1):
//! `cost(bcast) = p + (p−1)·s·g + l`.
//!
//! Runs the §2.1 direct broadcast on the simulator across machine
//! sizes and payload sizes, and prints measured `H`/`S` against the
//! closed formula, plus the direct-vs-logarithmic crossover on two
//! machine profiles.
//!
//! ```sh
//! cargo run --release --example bcast_cost
//! ```

use bsml_bsp::{formulas, BspMachine, BspParams, CostSummary};
use bsml_std::workloads;

fn measure(p: usize, program: &bsml_std::Program) -> CostSummary {
    BspMachine::new(BspParams::new(p, 1, 1))
        .run(&program.ast())
        .unwrap_or_else(|e| panic!("{} at p={p}: {e}", program.name))
        .cost
}

fn main() {
    println!(
        "equation (1), symbolically: cost(bcast) = {}\n",
        bsml_bsp::symbolic::equation_1()
    );
    println!("=== Equation (1): bcast, one-word payload, sweep over p ===\n");
    println!("    p | measured H | predicted (p-1)·s | measured S | predicted S | measured W");
    println!("  --- + ---------- + ----------------- + ---------- + ----------- + ----------");
    for p in [2, 4, 8, 16, 32, 64] {
        let cost = measure(p, &workloads::bcast_direct(0));
        let predicted = formulas::bcast_direct(p, 1);
        println!(
            "  {p:>3} | {:>10} | {:>17} | {:>10} | {:>11} | {:>10}",
            cost.h_relation, predicted.h_relation, cost.supersteps, predicted.supersteps, cost.work
        );
    }

    println!("\n=== Equation (1): bcast, p = 8, sweep over payload s ===\n");
    println!("  s (list) | payload words | measured H | predicted (p-1)·words");
    println!("  -------- + ------------- + ---------- + ---------------------");
    for s in [1, 4, 16, 64, 256] {
        let cost = measure(8, &workloads::bcast_direct_payload(0, s));
        let words = s as u64 + 1; // s ints + nil
        let predicted = formulas::bcast_direct(8, words);
        println!(
            "  {s:>8} | {words:>13} | {:>10} | {:>21}",
            cost.h_relation, predicted.h_relation
        );
    }

    println!("\n=== Direct vs logarithmic broadcast: priced on two machines ===\n");
    let p = 16;
    let direct = measure(p, &workloads::bcast_direct(0)).as_cost();
    let log = measure(p, &workloads::bcast_log_payload(1)).as_cost();
    for (name, params) in [
        ("ethernet-cluster (big l)", BspParams::ethernet_cluster(p)),
        ("tightly-coupled  (small l)", BspParams::tightly_coupled(p)),
        ("word-bound       (big g)", BspParams::new(p, 5_000, 10)),
    ] {
        let td = direct.time(&params);
        let tl = log.time(&params);
        let winner = if td <= tl { "direct" } else { "log" };
        println!("  {name:<27} direct = {td:>9}  log = {tl:>9}  → {winner} wins");
    }

    println!("\n=== Measured: direct vs two-phase broadcast, p = 8 ===\n");
    println!("  (priced on a communication-bound machine g = 1000, l = 50000)\n");
    println!("  s (list) | direct H | 2-phase H | direct S | 2-phase S |   direct t |  2-phase t | winner");
    println!("  -------- + -------- + --------- + -------- + --------- + ---------- + ---------- + ------");
    let price = BspParams::new(8, 1_000, 50_000);
    for s in [4usize, 16, 64, 256, 512] {
        let direct = measure(8, &workloads::bcast_direct_payload(0, s));
        let two = measure(8, &workloads::bcast_two_phase_payload(0, s));
        let td = direct.as_cost().time(&price);
        let tt = two.as_cost().time(&price);
        println!(
            "  {s:>8} | {:>8} | {:>9} | {:>8} | {:>9} | {td:>10} | {tt:>10} | {}",
            direct.h_relation,
            two.h_relation,
            direct.supersteps,
            two.supersteps,
            if td <= tt { "direct" } else { "2-phase" }
        );
    }

    println!("\n=== Predicted crossover (two-phase vs direct), p = 16 ===\n");
    for (g, l) in [(10u64, 10_000u64), (100, 10_000), (10, 1_000_000)] {
        match formulas::bcast_crossover(16, g, l, 10_000_000) {
            Some(s) => println!("  g = {g:>4}, l = {l:>8}: two-phase wins from s = {s} words"),
            None => println!("  g = {g:>4}, l = {l:>8}: direct always wins (within cap)"),
        }
    }
}
