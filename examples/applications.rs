//! Full BSP applications: parallel sample sort (PSRS), distributed
//! matrix–vector product, and the §6 imperative extension — including
//! a demonstration of the replica-incoherence error the dynamic
//! reference discipline catches.
//!
//! ```sh
//! cargo run --release --example applications
//! ```

use bsml_bsp::{trace::render_report, BspMachine, BspParams};
use bsml_core::Bsml;
use bsml_std::algorithms;

fn main() {
    let p = 4;
    let machine = BspMachine::new(BspParams::new(p, 10, 1000));

    println!("=== PSRS parallel sample sort (p = {p}) ===\n");
    let sort = algorithms::psrs_sort(8);
    println!("   {}\n", sort.description);
    let report = machine.run(&sort.ast()).expect("psrs runs");
    println!("   sorted blocks: {}", report.value);
    println!();
    for line in render_report(&report).lines() {
        println!("   {line}");
    }

    println!("\n=== Distributed matrix–vector product (p = {p}) ===\n");
    let mv = algorithms::matvec(2, 2);
    println!("   {}\n", mv.description);
    let report = machine.run(&mv.ast()).expect("matvec runs");
    println!("   result blocks: {}", report.value);
    println!();
    for line in render_report(&report).lines() {
        println!("   {line}");
    }

    println!("\n=== References (§6 imperative extension) ===\n");
    let bsml = Bsml::new(BspParams::new(p, 10, 1000));

    let counter = "let c = ref 0 in
                   let step = c := !c + 1 in
                   mkpar (fun i -> !c * 10 + i)";
    let out = bsml.run(counter).expect("counter runs");
    println!(
        "   replicated counter, read in components: {}",
        out.report.value
    );

    let per_proc = "mkpar (fun i ->
                      let acc = ref 0 in
                      let upd = acc := i * i in
                      !acc)";
    let out = bsml.run(per_proc).expect("per-proc cells run");
    println!(
        "   per-processor cells:                     {}",
        out.report.value
    );

    // Assigning a replicated cell inside one component: the *type
    // system* already rejects the composition (a local-typed binding
    // hiding a global evaluation)…
    let incoherent = "let c = ref 0 in
                      let bad = mkpar (fun i -> c := i) in
                      !c";
    match bsml.run(incoherent) {
        Err(err) => {
            println!("   assigning a replicated cell locally:     rejected statically — {err}")
        }
        Ok(_) => unreachable!("the coherence discipline must fire"),
    }
    // …and even bypassing the checker, the dynamic coherence
    // discipline of §6 catches it at run time.
    match bsml.run_unchecked(incoherent) {
        Err(err) => {
            println!("   (unchecked)                              rejected dynamically — {err}")
        }
        Ok(_) => unreachable!("the dynamic discipline must fire"),
    }

    let vector_in_ref = "ref (mkpar (fun i -> i))";
    match bsml.run(vector_in_ref) {
        Err(err) => {
            println!("   a cell holding a parallel vector:        rejected statically — {err}")
        }
        Ok(_) => unreachable!("L(α) on ref must fire"),
    }
}
