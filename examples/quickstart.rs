//! Quickstart: parse, typecheck and run a BSML program on a
//! simulated BSP machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bsml_bsp::{trace::render_report, BspParams};
use bsml_core::Bsml;

fn main() {
    // A 4-processor machine: g = 10 flop-times per word,
    // l = 1000 flop-times per barrier.
    let bsml = Bsml::new(BspParams::new(4, 10, 1000));

    // Every processor computes its square, then a total exchange
    // lets everyone add up all the squares.
    let source = "
        let squares = mkpar (fun i -> i * i) in
        let msgs = put (apply (mkpar (fun i -> fun v -> fun dst -> v),
                               squares)) in
        apply (mkpar (fun i -> fun f ->
                 let rec sum j = if j >= bsp_p () then 0 else f j + sum (j + 1) in
                 sum 0),
               msgs)";

    println!("program:\n{source}\n");

    // 1. Static checks: the inferred type and constraint.
    let check = match bsml.check(source) {
        Ok(check) => check,
        Err(err) => {
            eprintln!("{}", err.render(source));
            std::process::exit(1);
        }
    };
    println!("type   : {}", check.inference.ty);
    println!("scheme : {}", check.scheme());

    // 2. Execution with BSP cost accounting.
    let outcome = bsml.run(source).expect("checked programs run");
    println!("value  : {}", outcome.report.value);
    println!();
    println!("{}", render_report(&outcome.report));

    // 3. The safety net: nested parallelism never reaches the
    //    machine.
    let nested = "mkpar (fun pid -> let v = mkpar (fun i -> i) in pid)";
    match bsml.run(nested) {
        Err(err) => println!("rejected as expected:\n{}", err.render(nested)),
        Ok(_) => unreachable!("the type system must reject example2"),
    }
}
