//! Load generator: drive the multi-tenant session server with seeded
//! mixed traffic — well-typed, ill-typed, dynamically failing,
//! divergent, and heavy phrases — under deliberate overload, and
//! print the overload-behavior table rows recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example load_gen
//! ```

use std::time::Duration;

use bsml_bsp::BspParams;
use bsml_obs::Telemetry;
use bsml_repro::loadgen::{self, LoadMix, LoadPlan};
use bsml_serve::{Server, ServerConfig};

fn run_scenario(label: &str, workers: usize, queue_depth: usize, tenants: usize, mix: LoadMix) {
    let telemetry = Telemetry::enabled();
    let config = ServerConfig::new(BspParams::new(4, 2, 10))
        .with_workers(workers)
        .with_queue_depth(queue_depth)
        .with_tenant_quota(8)
        .with_deadline(Some(Duration::from_millis(1_500)));
    let server = Server::start(config, telemetry);
    let plan = LoadPlan {
        tenants,
        per_tenant: 6,
        seed: 42,
        mix,
    };
    let report = loadgen::run(&server, &plan);
    println!("{}", report.markdown_row(label));
    let stats = server.shutdown();
    assert_eq!(
        stats.offered,
        stats.admitted + stats.rejected(),
        "accounting must be exact"
    );
    assert_eq!(stats.admitted, stats.completed, "every admission completes");
}

fn main() {
    println!("| scenario | offered | admitted | rejected | done | p50 (ms) | p99 (ms) | shed |");
    println!("|---|---|---|---|---|---|---|---|");
    // Uncontended: plenty of workers and queue for clean traffic.
    run_scenario("clean, uncontended", 4, 256, 8, LoadMix::clean());
    // Stress mix at the same capacity: divergent and heavy tenants
    // burn deadline budget but neighbors still complete.
    run_scenario("stress, uncontended", 4, 256, 8, LoadMix::stress());
    // Deliberate overload: a tiny queue forces admission control to
    // shed at the door instead of buffering without bound.
    run_scenario("stress, overloaded", 2, 8, 24, LoadMix::stress());
}
